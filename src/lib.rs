//! # SiEVE — Semantically Encoded Video Analytics on Edge and Cloud
//!
//! A full Rust reproduction of the SiEVE system (Elgamal et al., ICDCS
//! 2020): a 3-tier video-analytics pipeline built around **semantic video
//! encoding** — tuning a video encoder's GOP size and scenecut threshold per
//! camera so that I-frames land exactly on semantic events (objects entering
//! or leaving the scene), letting the downstream pipeline analyse ~3% of
//! frames while labelling ~100% of them correctly.
//!
//! This umbrella crate re-exports the workspace's subsystems:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`video`] | `sieve-video` | from-scratch block codec: semantic encoder, I-frame-seekable container, full decoder |
//! | [`datasets`] | `sieve-datasets` | deterministic synthetic analogues of the paper's five surveillance datasets |
//! | [`nn`] | `sieve-nn` | CNN inference/training engine + Neurosurgeon-style edge/cloud partitioning |
//! | [`filters`] | `sieve-filters` | MSE / SIFT / uniform-sampling baselines |
//! | [`stats`] | `sieve-stats` | lock-free observability plane: counters, histograms, registry, time-series collector |
//! | [`simnet`] | `sieve-simnet` | dataflow engine, 3-tier topology, DES + live threaded runtime |
//! | [`core`] | `sieve-core` | SiEVE itself: offline tuner, I-frame seeker, metrics, end-to-end pipelines |
//! | [`fleet`] | `sieve-fleet` | multi-stream edge runtime: admission, sharded scheduling with load shedding, on-line adaptive selection |
//! | [`net`] | `sieve-net` | edge→cloud WAN transport: FEC packetizer, hostile channel model, feedback-driven rate control |
//!
//! ## Quickstart
//!
//! ```
//! use sieve::prelude::*;
//!
//! // Generate a tiny labelled surveillance feed.
//! let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
//! // Encode it semantically and analyse only I-frames.
//! let encoded = EncodedVideo::encode(video.resolution(), video.fps(),
//!                                    EncoderConfig::new(300, 200), video.frames());
//! let mut nn = OracleDetector::for_video(&video);
//! let result = analyze_sieve(&encoded, &mut nn).unwrap();
//! assert!(result.sampling_rate() < 0.2);
//! ```

pub use sieve_core as core;
pub use sieve_datasets as datasets;
pub use sieve_filters as filters;
pub use sieve_fleet as fleet;
pub use sieve_net as net;
pub use sieve_nn as nn;
pub use sieve_simnet as simnet;
pub use sieve_stats as stats;
pub use sieve_video as video;

/// The most commonly used items across all subsystems.
pub mod prelude {
    pub use sieve_core::{
        analyze, analyze_selected, analyze_sieve, f1_score, run_live_analysis, score_encoding,
        score_selection, simulate_all, simulate_baseline, tune, AnalysisResult, Baseline,
        BaselineSpec, CalibrationCurve, ConfigGrid, Decision, Deployment, DetectionQuality,
        EncodedFrameMeta, FrameSelector, IFrameSeeker, IFrameSelector, LiveAnalysis, LiveConfig,
        LookupTable, SelectorCost, SelectorKind, SelectorSession, SieveError, TuningOutcome,
    };
    pub use sieve_datasets::{
        segment_events, stream_seed, DatasetId, DatasetScale, DatasetSpec, Event, LabelSet,
        ObjectClass, SyntheticVideo,
    };
    pub use sieve_filters::{
        calibrate_threshold, score_sequence, select_frames, selector_for, Budget, ChangeDetector,
        MseDetector, MseSelector, SiftDetector, SiftSelector, UniformSampler, UniformSelector,
    };
    pub use sieve_fleet::{Fleet, FleetConfig, FleetReport, FramePacket, StreamConfig, StreamId};
    pub use sieve_nn::{
        best_split, reference_model, CnnDetector, ObjectDetector, OracleDetector, TierSpec,
        TrainConfig,
    };
    pub use sieve_simnet::{run_live, CostProfile, LiveItem, LiveStage, ThreeTier};
    pub use sieve_stats::{Collector, Counter, Gauge, Histogram, Registry};
    pub use sieve_video::{
        BitstreamStats, EncodedVideo, Encoder, EncoderConfig, Frame, FrameType, Resolution,
        VideoIndex,
    };
}
