//! Edge re-encoding for cameras with fixed hardware encoders.
//!
//! Section IV of the paper: "several cameras have hardware encoders built
//! into them with limited control over their parameters. In these cases, we
//! re-encode the video with the semantic parameters on the edge device."
//!
//! The re-encoder consumes a default-encoded stream, fully decodes it (this
//! is the price of a non-tunable camera), and re-encodes with the tuned
//! semantic parameters, producing a stream whose I-frames land on events.

use sieve_video::{DecodeError, Decoder, EncodedVideo, Encoder, EncoderConfig};

/// Statistics of one re-encode pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReencodeStats {
    /// Frames processed.
    pub frames: usize,
    /// I-frames in the incoming (default) stream.
    pub input_i_frames: usize,
    /// I-frames in the semantic output stream.
    pub output_i_frames: usize,
    /// Bytes in vs bytes out.
    pub input_bytes: u64,
    /// Output payload bytes.
    pub output_bytes: u64,
}

/// Re-encodes a default-encoded stream with semantic parameters at the
/// edge.
///
/// # Errors
///
/// Propagates the first decode failure of the input stream.
///
/// ```
/// use sieve_core::reencode::reencode_semantic;
/// use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
///
/// let res = Resolution::new(32, 32);
/// let camera_stream = EncodedVideo::encode(
///     res, 30, EncoderConfig::x264_default(), (0..10).map(|_| Frame::grey(res)));
/// let (semantic, stats) = reencode_semantic(&camera_stream, EncoderConfig::new(5, 0)).unwrap();
/// assert_eq!(semantic.frame_count(), 10);
/// assert_eq!(stats.output_i_frames, 2);
/// ```
pub fn reencode_semantic(
    input: &EncodedVideo,
    config: EncoderConfig,
) -> Result<(EncodedVideo, ReencodeStats), DecodeError> {
    let mut decoder = Decoder::new(input.resolution(), input.quality());
    let mut encoder = Encoder::new(input.resolution(), config);
    let mut output = EncodedVideo::new(input.resolution(), input.fps(), config.quality);
    for ef in input.frames() {
        // Steady-state loop: the decoder recycles its frame buffers, so the
        // decoded view is borrowed (not cloned) into the encoder.
        let frame = decoder.decode_next(ef)?;
        output.push(encoder.encode_frame(frame));
    }
    let stats = ReencodeStats {
        frames: input.frame_count(),
        input_i_frames: input.i_frame_indices().len(),
        output_i_frames: output.i_frame_indices().len(),
        input_bytes: input.total_bytes(),
        output_bytes: output.total_bytes(),
    };
    Ok((output, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};

    #[test]
    fn reencode_moves_iframes_onto_events() {
        let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
        // Camera stream: default parameters (blind GOP-250 keyframes).
        let camera = sieve_video::EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::x264_default(),
            video.frames(),
        );
        let (semantic, stats) =
            reencode_semantic(&camera, EncoderConfig::new(600, 150)).expect("reencode");
        assert_eq!(stats.frames, video.frame_count());
        assert_eq!(semantic.frame_count(), camera.frame_count());
        // Event accuracy of the re-encoded stream beats the camera stream.
        let q_cam = crate::tuner::score_encoding(&camera, video.labels());
        let q_sem = crate::tuner::score_encoding(&semantic, video.labels());
        assert!(
            q_sem.accuracy > q_cam.accuracy,
            "re-encode must recover semantic I-frame placement: {:.3} vs {:.3}",
            q_sem.accuracy,
            q_cam.accuracy
        );
    }

    #[test]
    fn reencode_preserves_content() {
        let video = DatasetSpec::of(DatasetId::Venice).generate(DatasetScale::Tiny);
        let camera = sieve_video::EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::x264_default().with_quality(85),
            video.frames().take(30),
        );
        let (semantic, _) =
            reencode_semantic(&camera, EncoderConfig::new(300, 150).with_quality(85))
                .expect("reencode");
        // Generation loss is bounded: decoded output stays close to the
        // decoded input.
        let in_frames = camera.decode_all().expect("decode in");
        let out_frames = semantic.decode_all().expect("decode out");
        for (a, b) in in_frames.iter().zip(&out_frames) {
            assert!(a.psnr_luma(b) > 28.0, "generation loss too high");
        }
    }

    #[test]
    fn stats_byte_accounting() {
        let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
        let camera = sieve_video::EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::x264_default(),
            video.frames().take(20),
        );
        let (out, stats) = reencode_semantic(&camera, EncoderConfig::new(10, 0)).expect("ok");
        assert_eq!(stats.input_bytes, camera.total_bytes());
        assert_eq!(stats.output_bytes, out.total_bytes());
        assert_eq!(stats.output_i_frames, 2);
    }
}
