//! The per-camera parameter lookup table.
//!
//! After offline tuning, the best encoder parameters for each camera are
//! stored in a lookup table; the surveillance operator loads them into the
//! camera's encoder for real-time use (Section IV, "Online Usage of Tuned
//! Parameters"). The table serializes to JSON so it can live in the edge
//! deployment's configuration store.

use std::collections::BTreeMap;
use std::io::{Read, Write};

use serde::{Deserialize, Serialize};
use sieve_video::EncoderConfig;

/// Per-camera tuned encoder parameters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LookupTable {
    cameras: BTreeMap<String, EncoderConfig>,
}

impl LookupTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores the tuned config for `camera`, returning any previous value.
    pub fn insert(
        &mut self,
        camera: impl Into<String>,
        config: EncoderConfig,
    ) -> Option<EncoderConfig> {
        self.cameras.insert(camera.into(), config)
    }

    /// Looks up a camera's tuned config.
    pub fn get(&self, camera: &str) -> Option<&EncoderConfig> {
        self.cameras.get(camera)
    }

    /// The tuned config for `camera`, or the x264 defaults when the camera
    /// was never tuned — mirroring a deployment where un-tuned cameras keep
    /// factory settings.
    pub fn get_or_default(&self, camera: &str) -> EncoderConfig {
        self.get(camera).copied().unwrap_or_default()
    }

    /// Number of cameras in the table.
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// True when no camera has been tuned.
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// Iterates `(camera, config)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &EncoderConfig)> {
        self.cameras.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Writes the table as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the writer fails.
    pub fn save<W: Write>(&self, writer: W) -> std::io::Result<()> {
        serde_json::to_writer_pretty(writer, self).map_err(std::io::Error::other)
    }

    /// Reads a table from JSON.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the reader fails or the JSON is malformed.
    pub fn load<R: Read>(reader: R) -> std::io::Result<Self> {
        serde_json::from_reader(reader).map_err(std::io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = LookupTable::new();
        assert!(t.is_empty());
        let cfg = EncoderConfig::new(500, 100);
        assert_eq!(t.insert("jackson", cfg), None);
        assert_eq!(t.get("jackson"), Some(&cfg));
        assert_eq!(t.len(), 1);
        let cfg2 = EncoderConfig::new(100, 250);
        assert_eq!(t.insert("jackson", cfg2), Some(cfg));
        assert_eq!(t.get("jackson"), Some(&cfg2));
    }

    #[test]
    fn untuned_camera_gets_defaults() {
        let t = LookupTable::new();
        let d = t.get_or_default("unknown");
        assert_eq!((d.gop_size, d.scenecut), (250, 40));
    }

    #[test]
    fn json_roundtrip() {
        let mut t = LookupTable::new();
        t.insert("a", EncoderConfig::new(100, 20));
        t.insert("b", EncoderConfig::new(5000, 250));
        let mut buf = Vec::new();
        t.save(&mut buf).expect("save");
        let back = LookupTable::load(buf.as_slice()).expect("load");
        assert_eq!(t, back);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(LookupTable::load(&b"not json"[..]).is_err());
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut t = LookupTable::new();
        t.insert("zebra", EncoderConfig::new(100, 20));
        t.insert("alpha", EncoderConfig::new(200, 40));
        let names: Vec<&str> = t.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zebra"]);
    }
}
