//! The workspace-wide error type.
//!
//! Library paths across the workspace surface failures as [`SieveError`]
//! instead of panicking or leaking per-crate error enums: codec errors
//! ([`DecodeError`], [`ContainerError`], [`ReadBitsError`]) and I/O errors
//! all convert into it, so cross-crate drivers (the analysis path, the live
//! pipeline, persistence) can use `?` throughout and callers match on one
//! type.

use sieve_video::bitio::ReadBitsError;
use sieve_video::{ContainerError, DecodeError};

/// Any failure a SiEVE pipeline can surface.
#[derive(Debug)]
pub enum SieveError {
    /// A frame payload failed to decode.
    Decode(DecodeError),
    /// A serialized container failed to parse.
    Container(ContainerError),
    /// A raw bitstream read ran out of input.
    Bits(ReadBitsError),
    /// An I/O failure (persistence, network transport).
    Io(std::io::Error),
    /// A frame selection referenced an index outside the video.
    InvalidSelection {
        /// The offending frame index.
        index: usize,
        /// The video's frame count.
        frame_count: usize,
    },
    /// A selector-specific failure (calibration, empty input, ...).
    Selector(String),
}

impl SieveError {
    /// Builds a selector error from any message.
    pub fn selector(msg: impl Into<String>) -> Self {
        SieveError::Selector(msg.into())
    }
}

impl std::fmt::Display for SieveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SieveError::Decode(e) => write!(f, "decode error: {e}"),
            SieveError::Container(e) => write!(f, "container error: {e}"),
            SieveError::Bits(e) => write!(f, "bitstream error: {e}"),
            SieveError::Io(e) => write!(f, "i/o error: {e}"),
            SieveError::InvalidSelection { index, frame_count } => write!(
                f,
                "selected frame {index} out of range for a {frame_count}-frame video"
            ),
            SieveError::Selector(msg) => write!(f, "selector error: {msg}"),
        }
    }
}

impl std::error::Error for SieveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SieveError::Decode(e) => Some(e),
            SieveError::Container(e) => Some(e),
            SieveError::Bits(e) => Some(e),
            SieveError::Io(e) => Some(e),
            SieveError::InvalidSelection { .. } | SieveError::Selector(_) => None,
        }
    }
}

impl From<DecodeError> for SieveError {
    fn from(e: DecodeError) -> Self {
        SieveError::Decode(e)
    }
}

impl From<ContainerError> for SieveError {
    fn from(e: ContainerError) -> Self {
        SieveError::Container(e)
    }
}

impl From<ReadBitsError> for SieveError {
    fn from(e: ReadBitsError) -> Self {
        SieveError::Bits(e)
    }
}

impl From<std::io::Error> for SieveError {
    fn from(e: std::io::Error) -> Self {
        SieveError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_sources() {
        let e: SieveError = DecodeError::Bitstream.into();
        assert!(matches!(e, SieveError::Decode(DecodeError::Bitstream)));
        assert!(std::error::Error::source(&e).is_some());
        let e: SieveError = ContainerError::Truncated.into();
        assert!(e.to_string().contains("container"));
        let e: SieveError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn selection_error_message() {
        let e = SieveError::InvalidSelection {
            index: 10,
            frame_count: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
