//! End-to-end deployment simulation: the five baselines of Fig 4 / Fig 5.
//!
//! Each baseline is a linear pipeline over the 3-tier topology:
//!
//! ```text
//! camera --(camera->edge link)--> edge --(edge->cloud link)--> cloud
//! ```
//!
//! Per-frame work on each stage is described with costs measured on the real
//! machine ([`WorkloadCosts`], see `sieve-simnet::calibrate`), then replayed
//! through the exact tandem-queue simulator. This makes the 2.16M-frame
//! experiment tractable while keeping every relative magnitude (seek vs
//! decode vs NN) grounded in real measurements.

use serde::{Deserialize, Serialize};
use sieve_simnet::{Pipeline, StageSpec, StepWork, ThreeTier};

use crate::select::{FrameSelector, IFrameSelector, SelectorCost};

/// The selection policy side of a baseline: which frames get analysed.
/// Mirrors the [`crate::FrameSelector`] implementations (`sieve-filters`
/// provides the uniform/MSE adapters); per-frame costs come from the
/// selector's own [`SelectorCost`] via [`SelectorKind::cost_model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SelectorKind {
    /// I-frame seeking over the semantically encoded stream (metadata scan;
    /// only analysed frames are decoded).
    IFrame,
    /// Uniform sampling over the default-encoded stream (P-frames chain, so
    /// reaching a sampled frame still means full-decoding up to it).
    Uniform,
    /// MSE differencing over the default-encoded stream (full decode plus a
    /// per-pair comparison).
    Mse,
}

impl SelectorKind {
    /// True when the policy consumes the semantically encoded stream.
    pub fn uses_semantic_encoding(&self) -> bool {
        matches!(self, SelectorKind::IFrame)
    }

    /// Frames this policy analyses for `video`.
    pub fn analysed_frames(&self, video: &VideoWorkload) -> usize {
        match self {
            // Uniform sampling is budget-matched to SiEVE's I-frame count,
            // the paper's fair-comparison methodology.
            SelectorKind::IFrame | SelectorKind::Uniform => video.semantic_i_frames,
            SelectorKind::Mse => video.mse_selected,
        }
    }

    /// The per-frame cost model of this policy's [`FrameSelector`]
    /// implementation — the one cost source the simulator and the live path
    /// share. The I-frame row delegates to the real core selector; the
    /// uniform/MSE rows name the same canonical [`SelectorCost`] shapes the
    /// `sieve-filters` adapters return (cross-checked by a test there,
    /// since this crate cannot depend on its own dependents).
    pub fn cost_model(&self) -> SelectorCost {
        match self {
            SelectorKind::IFrame => IFrameSelector::new().cost_model(),
            SelectorKind::Uniform => SelectorCost::full_stream_decode(),
            SelectorKind::Mse => SelectorCost::full_stream_decode().with_pairwise_compare(),
        }
    }
}

/// The placement side of a baseline: which tier selects and which runs the
/// NN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Deployment {
    /// Selection at the edge, NN inference in the cloud (3-tier).
    EdgeSelectCloudNn,
    /// The edge only relays; selection and NN both in the cloud (2-tier,
    /// cloud-only).
    CloudOnly,
    /// Selection and NN both at the edge; only result tuples cross the WAN
    /// (2-tier, edge-only).
    EdgeOnly,
}

/// A baseline's full specification: selection policy plus deployment. The
/// registry row the generic simulator consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BaselineSpec {
    /// Which frames get analysed, and at what per-frame cost.
    pub selector: SelectorKind,
    /// Where selection and inference run.
    pub deployment: Deployment,
}

/// The five end-to-end configurations the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// I-frame seeking at the edge, NN inference in the cloud (SiEVE's
    /// 3-tier deployment).
    IFrameEdgeCloudNn,
    /// Full video shipped to the cloud; seeking and NN both there (2-tier,
    /// cloud-only).
    IFrameCloudCloudNn,
    /// Seeking and NN both at the edge (2-tier, edge-only).
    IFrameEdgeEdgeNn,
    /// Uniform sampling at the edge over the *default*-encoded video, NN in
    /// the cloud.
    UniformEdgeCloudNn,
    /// MSE differencing at the edge over the default-encoded video, NN in
    /// the cloud.
    MseEdgeCloudNn,
}

impl Baseline {
    /// All five baselines in the paper's legend order.
    pub const ALL: [Baseline; 5] = [
        Baseline::IFrameEdgeCloudNn,
        Baseline::IFrameCloudCloudNn,
        Baseline::IFrameEdgeEdgeNn,
        Baseline::UniformEdgeCloudNn,
        Baseline::MseEdgeCloudNn,
    ];

    /// The registry: each named baseline is one `(selector, deployment)`
    /// row. Adding a baseline is adding a variant plus its row here — the
    /// simulator itself is generic over the spec.
    pub fn spec(&self) -> BaselineSpec {
        let (selector, deployment) = match self {
            Baseline::IFrameEdgeCloudNn => (SelectorKind::IFrame, Deployment::EdgeSelectCloudNn),
            Baseline::IFrameCloudCloudNn => (SelectorKind::IFrame, Deployment::CloudOnly),
            Baseline::IFrameEdgeEdgeNn => (SelectorKind::IFrame, Deployment::EdgeOnly),
            Baseline::UniformEdgeCloudNn => (SelectorKind::Uniform, Deployment::EdgeSelectCloudNn),
            Baseline::MseEdgeCloudNn => (SelectorKind::Mse, Deployment::EdgeSelectCloudNn),
        };
        BaselineSpec {
            selector,
            deployment,
        }
    }

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            Baseline::IFrameEdgeCloudNn => "I-frame edge + Cloud NN",
            Baseline::IFrameCloudCloudNn => "I-frame Cloud + Cloud NN",
            Baseline::IFrameEdgeEdgeNn => "I-frame edge + edge NN",
            Baseline::UniformEdgeCloudNn => "Uniform Sampling edge + Cloud NN",
            Baseline::MseEdgeCloudNn => "MSE Edge + Cloud NN",
        }
    }

    /// True for the baselines that consume semantically encoded video.
    pub fn uses_semantic_encoding(&self) -> bool {
        self.spec().selector.uses_semantic_encoding()
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Reference-machine per-operation costs in seconds (measured, not assumed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadCosts {
    /// Scanning one frame's metadata in the I-frame seeker.
    pub seek_per_frame: f64,
    /// Independently decoding one I-frame.
    pub iframe_decode: f64,
    /// Fully decoding one frame in the classical pipeline (stream average).
    pub full_decode_per_frame: f64,
    /// One MSE comparison between consecutive decoded frames.
    pub mse_per_pair: f64,
    /// Resizing a decoded frame to the NN input resolution.
    pub resize_to_nn: f64,
    /// One NN inference at the reference machine's speed.
    pub nn_inference: f64,
}

/// One video's contribution to the end-to-end experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoWorkload {
    /// Dataset name (reporting only).
    pub name: String,
    /// Total frames (I + P).
    pub frame_count: usize,
    /// I-frames in the semantically encoded stream.
    pub semantic_i_frames: usize,
    /// Frames selected by the MSE filter on the default-encoded stream.
    pub mse_selected: usize,
    /// Total bytes of the semantically encoded stream.
    pub semantic_stream_bytes: u64,
    /// Total bytes of the default-encoded stream.
    pub default_stream_bytes: u64,
    /// Bytes of one frame resized to the NN input (what crosses the WAN per
    /// analysed frame).
    pub nn_input_bytes: u64,
    /// Bytes of one `(frame id, labels)` result tuple.
    pub label_bytes: u64,
    /// Measured per-operation costs for this video's resolution.
    pub costs: WorkloadCosts,
}

/// Outcome of simulating one baseline over a set of videos.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineOutcome {
    /// Which baseline.
    pub baseline: Baseline,
    /// Frames processed per second of simulated time (Fig 4's y-axis).
    pub throughput_fps: f64,
    /// Bytes that crossed camera→edge (Fig 5, first group).
    pub camera_edge_bytes: u64,
    /// Bytes that crossed edge→cloud (Fig 5, second group).
    pub edge_cloud_bytes: u64,
    /// Simulated completion time of the last frame.
    pub makespan_secs: f64,
    /// Total frames pushed through.
    pub frames: u64,
}

/// Simulates `baseline` processing `videos` back to back on `topology`.
///
/// # Panics
///
/// Panics if `videos` is empty.
pub fn simulate_baseline(
    baseline: Baseline,
    videos: &[VideoWorkload],
    topology: &ThreeTier,
) -> BaselineOutcome {
    assert!(!videos.is_empty(), "need at least one video");
    let mut pipeline = Pipeline::new(vec![
        StageSpec::Transfer {
            name: "camera->edge".into(),
            bandwidth_bps: topology.camera_edge.bandwidth_bps,
            // Per-frame latency is amortized away for a continuous stream.
            latency_secs: 0.0,
        },
        StageSpec::Compute {
            name: "edge".into(),
        },
        StageSpec::Transfer {
            name: "edge->cloud".into(),
            bandwidth_bps: topology.edge_cloud.bandwidth_bps,
            latency_secs: 0.0,
        },
        StageSpec::Compute {
            name: "cloud".into(),
        },
    ]);
    let mut total_frames = 0u64;
    for v in videos {
        submit_video(baseline, v, topology, &mut pipeline);
        total_frames += v.frame_count as u64;
    }
    let report = pipeline.report();
    BaselineOutcome {
        baseline,
        throughput_fps: report.throughput(total_frames),
        camera_edge_bytes: report.stage_bytes[0],
        edge_cloud_bytes: report.stage_bytes[2],
        makespan_secs: report.makespan_secs,
        frames: total_frames,
    }
}

/// Simulates all five baselines.
pub fn simulate_all(videos: &[VideoWorkload], topology: &ThreeTier) -> Vec<BaselineOutcome> {
    Baseline::ALL
        .iter()
        .map(|&b| simulate_baseline(b, videos, topology))
        .collect()
}

/// Submits every frame of one video as the 4-stage work its baseline spec
/// implies. Fully generic: the selector kind decides which stream is
/// shipped and which frames are analysed, its [`SelectorCost`] model prices
/// each stream frame, and the deployment decides which tier pays it and
/// what crosses each link.
fn submit_video(baseline: Baseline, v: &VideoWorkload, topo: &ThreeTier, pipeline: &mut Pipeline) {
    let BaselineSpec {
        selector,
        deployment,
    } = baseline.spec();
    let cost = selector.cost_model();
    let n = v.frame_count.max(1);
    let c = &v.costs;
    let edge = &topo.edge;
    let cloud = &topo.cloud;
    // Per-frame share of the stream bytes on the camera->edge link.
    let stream_bytes = if selector.uses_semantic_encoding() {
        v.semantic_stream_bytes
    } else {
        v.default_stream_bytes
    };
    let cam_share = stream_bytes / n as u64;
    let analysed = selector.analysed_frames(v);
    // Spread analysed frames evenly across the stream (their exact position
    // does not affect aggregate throughput or bytes in a FIFO pipeline).
    let stride = (n / analysed.max(1)).max(1);
    for i in 0..n {
        let is_analysed = i % stride == 0 && i / stride < analysed;
        let select_secs = cost.per_frame_secs(c, is_analysed);
        let nn_secs = if is_analysed { c.nn_inference } else { 0.0 };
        let analysed_transfer = |bytes: u64| {
            if is_analysed {
                StepWork::Transfer { bytes }
            } else {
                StepWork::Skip
            }
        };
        let work = match deployment {
            // camera->edge stream, edge selects, WAN carries NN inputs,
            // cloud infers.
            Deployment::EdgeSelectCloudNn => [
                StepWork::Transfer { bytes: cam_share },
                StepWork::Compute {
                    secs: edge.service_secs(select_secs),
                },
                analysed_transfer(v.nn_input_bytes),
                if is_analysed {
                    StepWork::Compute {
                        secs: cloud.service_secs(nn_secs),
                    }
                } else {
                    StepWork::Skip
                },
            ],
            // The edge only relays bytes (relay CPU treated as free); the
            // whole stream crosses the WAN and the cloud does everything.
            Deployment::CloudOnly => [
                StepWork::Transfer { bytes: cam_share },
                StepWork::Compute { secs: 0.0 },
                StepWork::Transfer { bytes: cam_share },
                StepWork::Compute {
                    secs: cloud.service_secs(select_secs + nn_secs),
                },
            ],
            // The edge selects and infers; only result tuples cross the WAN.
            Deployment::EdgeOnly => [
                StepWork::Transfer { bytes: cam_share },
                StepWork::Compute {
                    secs: edge.service_secs(select_secs + nn_secs),
                },
                analysed_transfer(v.label_bytes),
                StepWork::Compute { secs: 0.0 },
            ],
        };
        pipeline.submit(0.0, &work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> WorkloadCosts {
        WorkloadCosts {
            seek_per_frame: 0.5e-6,
            iframe_decode: 2.0e-3,
            full_decode_per_frame: 8.0e-3,
            mse_per_pair: 4.0e-3,
            resize_to_nn: 0.5e-3,
            nn_inference: 10.0e-3,
        }
    }

    fn workload() -> VideoWorkload {
        VideoWorkload {
            name: "test".into(),
            frame_count: 10_000,
            semantic_i_frames: 200,             // 2%
            mse_selected: 500,                  // 2.5x the I-frames, as the paper saw
            semantic_stream_bytes: 112_000_000, // 12% larger than default
            default_stream_bytes: 100_000_000,
            nn_input_bytes: 1536, // 32x32 YUV420
            label_bytes: 16,
            costs: costs(),
        }
    }

    #[test]
    fn sieve_3tier_beats_all_others() {
        let outcomes = simulate_all(&[workload()], &ThreeTier::paper_default());
        let sieve = outcomes
            .iter()
            .find(|o| o.baseline == Baseline::IFrameEdgeCloudNn)
            .unwrap();
        for o in &outcomes {
            if o.baseline != Baseline::IFrameEdgeCloudNn {
                assert!(
                    sieve.throughput_fps >= o.throughput_fps,
                    "SiEVE ({:.0} fps) must beat {} ({:.0} fps)",
                    sieve.throughput_fps,
                    o.baseline,
                    o.throughput_fps
                );
            }
        }
    }

    #[test]
    fn semantic_baselines_beat_decode_baselines() {
        let outcomes = simulate_all(&[workload()], &ThreeTier::paper_default());
        let min_semantic = outcomes
            .iter()
            .filter(|o| o.baseline.uses_semantic_encoding())
            .map(|o| o.throughput_fps)
            .fold(f64::MAX, f64::min);
        let max_decode = outcomes
            .iter()
            .filter(|o| !o.baseline.uses_semantic_encoding())
            .map(|o| o.throughput_fps)
            .fold(f64::MIN, f64::max);
        assert!(
            min_semantic > max_decode,
            "every I-frame baseline ({min_semantic:.0} fps) must beat every \
             full-decode baseline ({max_decode:.0} fps)"
        );
    }

    #[test]
    fn camera_edge_bytes_larger_for_semantic() {
        let outcomes = simulate_all(&[workload()], &ThreeTier::paper_default());
        let sieve = &outcomes[0];
        let mse = outcomes
            .iter()
            .find(|o| o.baseline == Baseline::MseEdgeCloudNn)
            .unwrap();
        assert!(
            sieve.camera_edge_bytes > mse.camera_edge_bytes,
            "semantic re-encoding inflates the camera->edge stream"
        );
    }

    #[test]
    fn edge_cloud_bytes_mse_larger_than_sieve() {
        let outcomes = simulate_all(&[workload()], &ThreeTier::paper_default());
        let sieve = &outcomes[0];
        let mse = outcomes
            .iter()
            .find(|o| o.baseline == Baseline::MseEdgeCloudNn)
            .unwrap();
        // MSE selects 2.5x more frames, so it ships ~2.5x more bytes.
        let ratio = mse.edge_cloud_bytes as f64 / sieve.edge_cloud_bytes as f64;
        assert!(
            (2.0..3.0).contains(&ratio),
            "MSE/SiEVE byte ratio {ratio} should be ~2.5"
        );
    }

    #[test]
    fn cloud_only_ships_whole_stream() {
        let w = workload();
        let o = simulate_baseline(
            Baseline::IFrameCloudCloudNn,
            std::slice::from_ref(&w),
            &ThreeTier::paper_default(),
        );
        // Whole semantic stream crosses the WAN (modulo per-frame rounding).
        let expected = (w.semantic_stream_bytes / w.frame_count as u64) * w.frame_count as u64;
        assert_eq!(o.edge_cloud_bytes, expected);
    }

    #[test]
    fn edge_only_ships_labels_only() {
        let w = workload();
        let o = simulate_baseline(
            Baseline::IFrameEdgeEdgeNn,
            std::slice::from_ref(&w),
            &ThreeTier::paper_default(),
        );
        assert_eq!(
            o.edge_cloud_bytes,
            w.label_bytes * w.semantic_i_frames as u64
        );
    }

    #[test]
    fn multiple_videos_accumulate() {
        let one = simulate_baseline(
            Baseline::IFrameEdgeCloudNn,
            &[workload()],
            &ThreeTier::paper_default(),
        );
        let three = simulate_baseline(
            Baseline::IFrameEdgeCloudNn,
            &[workload(), workload(), workload()],
            &ThreeTier::paper_default(),
        );
        assert_eq!(three.frames, 3 * one.frames);
        assert!(three.edge_cloud_bytes == 3 * one.edge_cloud_bytes);
    }
}
