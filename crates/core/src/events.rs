//! Event detection and label assignment over encoded videos.
//!
//! Glues together the seeker (or a baseline's frame selection), an object
//! detector, and label propagation into the result the cloud stores: a list
//! of `(frame id, object labels)` tuples plus the derived per-frame labels.

use sieve_datasets::{segment_events, Event, LabelSet};
use sieve_nn::ObjectDetector;
use sieve_video::{DecodeError, EncodedVideo, Frame};

use crate::metrics::propagate_labels;
use crate::seeker::IFrameSeeker;

/// The output of analysing one video.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// The frames that were decoded and run through the NN, with the labels
    /// the NN produced.
    pub selected: Vec<(usize, LabelSet)>,
    /// Per-frame labels after propagation.
    pub predicted: Vec<LabelSet>,
}

impl AnalysisResult {
    /// The predicted events (maximal runs of equal labels).
    pub fn events(&self) -> Vec<Event> {
        segment_events(&self.predicted)
    }

    /// Fraction of frames that were analysed by the NN.
    pub fn sampling_rate(&self) -> f64 {
        if self.predicted.is_empty() {
            0.0
        } else {
            self.selected.len() as f64 / self.predicted.len() as f64
        }
    }
}

/// SiEVE's analysis path: seek I-frames, decode each independently, run the
/// detector on them only, propagate labels to all other frames.
///
/// # Errors
///
/// Propagates the first I-frame decode failure.
pub fn analyze_sieve(
    video: &EncodedVideo,
    detector: &mut dyn ObjectDetector,
) -> Result<AnalysisResult, DecodeError> {
    let seeker = IFrameSeeker::new(video);
    let mut selected = Vec::with_capacity(seeker.i_frame_count());
    for item in seeker.decode_i_frames() {
        let (idx, frame) = item?;
        selected.push((idx, detector.detect(idx, &frame)));
    }
    let predicted = propagate_labels(video.frame_count(), &selected);
    Ok(AnalysisResult {
        selected,
        predicted,
    })
}

/// A baseline's analysis path: the caller supplies decoded frames and the
/// indices its filter selected; the detector runs on those frames only.
///
/// # Panics
///
/// Panics if an index is out of range or indices are unsorted.
pub fn analyze_selected(
    frames: &[Frame],
    selected_indices: &[usize],
    detector: &mut dyn ObjectDetector,
) -> AnalysisResult {
    let selected: Vec<(usize, LabelSet)> = selected_indices
        .iter()
        .map(|&i| (i, detector.detect(i, &frames[i])))
        .collect();
    let predicted = propagate_labels(frames.len(), &selected);
    AnalysisResult {
        selected,
        predicted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
    use sieve_nn::OracleDetector;
    use sieve_video::EncoderConfig;

    fn setup() -> (sieve_datasets::SyntheticVideo, EncodedVideo) {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(200, 200),
            video.frames(),
        );
        (video, encoded)
    }

    #[test]
    fn sieve_analysis_reaches_high_accuracy_with_few_frames() {
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_sieve(&encoded, &mut oracle).expect("analysis");
        let acc = crate::metrics::label_accuracy(video.labels(), &result.predicted);
        assert!(
            acc > 0.85,
            "semantic encoding should label most frames correctly: {acc}"
        );
        assert!(
            result.sampling_rate() < 0.2,
            "should decode few frames: {}",
            result.sampling_rate()
        );
    }

    #[test]
    fn events_derivable_from_analysis() {
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_sieve(&encoded, &mut oracle).expect("analysis");
        let events = result.events();
        let total: usize = events.iter().map(|e| e.len).sum();
        assert_eq!(total, video.frame_count());
    }

    #[test]
    fn analyze_selected_matches_oracle_on_all_frames() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().collect();
        let all: Vec<usize> = (0..frames.len()).collect();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_selected(&frames, &all, &mut oracle);
        assert_eq!(result.predicted, video.labels());
        assert!((result.sampling_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fewer_selections_lower_or_equal_accuracy() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().collect();
        let mut oracle = OracleDetector::for_video(&video);
        let sparse: Vec<usize> = (0..frames.len()).step_by(100).collect();
        let dense: Vec<usize> = (0..frames.len()).step_by(10).collect();
        let acc = |sel: &[usize], det: &mut OracleDetector| {
            let r = analyze_selected(&frames, sel, det);
            crate::metrics::label_accuracy(video.labels(), &r.predicted)
        };
        assert!(acc(&sparse, &mut oracle) <= acc(&dense, &mut oracle));
    }
}
