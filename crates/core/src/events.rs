//! Event detection and label assignment over encoded videos.
//!
//! One generic driver glues a [`FrameSelector`] (which frames get decoded),
//! an [`ObjectDetector`] (what the NN says about them), and label
//! propagation into the result the cloud stores: a list of `(frame id,
//! object labels)` tuples plus the derived per-frame labels. Every baseline
//! — SiEVE's I-frame seeking and the image-filter baselines adapted in
//! `sieve-filters` — runs through [`analyze`]; there is no per-baseline
//! analysis glue.

use sieve_datasets::{segment_events, Event, LabelSet};
use sieve_nn::ObjectDetector;
use sieve_video::{EncodedVideo, Frame};

use crate::error::SieveError;
use crate::metrics::propagate_labels;
use crate::select::{FrameSelector, IFrameSelector};

/// The output of analysing one video.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisResult {
    /// The frames that were decoded and run through the NN, with the labels
    /// the NN produced.
    pub selected: Vec<(usize, LabelSet)>,
    /// Per-frame labels after propagation.
    pub predicted: Vec<LabelSet>,
}

impl AnalysisResult {
    /// Runs `detector` over decoded `(index, frame)` pairs and propagates
    /// labels across `frame_count` frames — the one place detection output
    /// becomes an analysis result.
    pub fn from_detections<'a, I>(
        frame_count: usize,
        detector: &mut (impl ObjectDetector + ?Sized),
        picked: I,
    ) -> Self
    where
        I: IntoIterator<Item = (usize, &'a Frame)>,
    {
        let selected: Vec<(usize, LabelSet)> = picked
            .into_iter()
            .map(|(i, frame)| (i, detector.detect(i, frame)))
            .collect();
        let predicted = propagate_labels(frame_count, &selected);
        Self {
            selected,
            predicted,
        }
    }

    /// The predicted events (maximal runs of equal labels).
    pub fn events(&self) -> Vec<Event> {
        segment_events(&self.predicted)
    }

    /// Fraction of frames that were analysed by the NN.
    pub fn sampling_rate(&self) -> f64 {
        if self.predicted.is_empty() {
            0.0
        } else {
            self.selected.len() as f64 / self.predicted.len() as f64
        }
    }
}

/// The generic analysis path: `selector` chooses and decodes frames,
/// `detector` labels them, propagation fills in the rest.
///
/// Selection is streamed: policies that decode incrementally (I-frame
/// seeking) never hold more than one decoded frame in memory, so the path
/// stays constant-memory on arbitrarily long videos.
///
/// # Errors
///
/// Propagates selection/decode failures as [`SieveError`]; a selector that
/// yields out-of-range or non-ascending indices surfaces an error rather
/// than corrupting propagation.
pub fn analyze(
    video: &EncodedVideo,
    selector: &mut (impl FrameSelector + ?Sized),
    detector: &mut (impl ObjectDetector + ?Sized),
) -> Result<AnalysisResult, SieveError> {
    let frame_count = video.frame_count();
    let mut selected: Vec<(usize, LabelSet)> = Vec::new();
    selector.select_with(video, &mut |i, frame| {
        check_selection(selected.last().map(|&(prev, _)| prev), i, frame_count)?;
        selected.push((i, detector.detect(i, frame)));
        Ok(())
    })?;
    let predicted = propagate_labels(frame_count, &selected);
    Ok(AnalysisResult {
        selected,
        predicted,
    })
}

/// SiEVE's analysis path: [`analyze`] with the [`IFrameSelector`] policy —
/// seek I-frames by metadata, decode each independently, run the detector
/// on them only, propagate labels to all other frames.
///
/// # Errors
///
/// Propagates the first I-frame decode failure.
pub fn analyze_sieve(
    video: &EncodedVideo,
    detector: &mut dyn ObjectDetector,
) -> Result<AnalysisResult, SieveError> {
    analyze(video, &mut IFrameSelector::new(), detector)
}

/// Analysis over pre-decoded frames and a precomputed selection; the
/// detector runs on the selected frames only. Used when the decoded stream
/// already exists (filter calibration, stored footage).
///
/// # Errors
///
/// Returns [`SieveError::InvalidSelection`] if an index is out of range,
/// or [`SieveError::Selector`] if indices are not strictly increasing.
pub fn analyze_selected(
    frames: &[Frame],
    selected_indices: &[usize],
    detector: &mut dyn ObjectDetector,
) -> Result<AnalysisResult, SieveError> {
    let mut prev = None;
    for &i in selected_indices {
        check_selection(prev, i, frames.len())?;
        prev = Some(i);
    }
    Ok(AnalysisResult::from_detections(
        frames.len(),
        detector,
        selected_indices.iter().map(|&i| (i, &frames[i])),
    ))
}

/// Validates one selection step: in range, and strictly after `prev`. The
/// single source of the invariants `propagate_labels` asserts, shared by
/// both public entry points so a hostile or buggy selection surfaces as an
/// error instead of a panic.
fn check_selection(
    prev: Option<usize>,
    index: usize,
    frame_count: usize,
) -> Result<(), SieveError> {
    if index >= frame_count {
        return Err(SieveError::InvalidSelection { index, frame_count });
    }
    if let Some(prev) = prev {
        if index <= prev {
            return Err(SieveError::selector(format!(
                "selection must be strictly increasing: {index} after {prev}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
    use sieve_nn::OracleDetector;
    use sieve_video::EncoderConfig;

    fn setup() -> (sieve_datasets::SyntheticVideo, EncodedVideo) {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(200, 200),
            video.frames(),
        );
        (video, encoded)
    }

    #[test]
    fn sieve_analysis_reaches_high_accuracy_with_few_frames() {
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_sieve(&encoded, &mut oracle).expect("analysis");
        let acc = crate::metrics::label_accuracy(video.labels(), &result.predicted);
        assert!(
            acc > 0.85,
            "semantic encoding should label most frames correctly: {acc}"
        );
        assert!(
            result.sampling_rate() < 0.2,
            "should decode few frames: {}",
            result.sampling_rate()
        );
    }

    #[test]
    fn events_derivable_from_analysis() {
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_sieve(&encoded, &mut oracle).expect("analysis");
        let events = result.events();
        let total: usize = events.iter().map(|e| e.len).sum();
        assert_eq!(total, video.frame_count());
    }

    #[test]
    fn generic_driver_equals_sieve_wrapper() {
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        let direct = analyze_sieve(&encoded, &mut oracle).expect("analysis");
        let via_generic =
            analyze(&encoded, &mut IFrameSelector::new(), &mut oracle).expect("generic analysis");
        assert_eq!(direct, via_generic);
    }

    #[test]
    fn analyze_selected_matches_oracle_on_all_frames() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().collect();
        let all: Vec<usize> = (0..frames.len()).collect();
        let mut oracle = OracleDetector::for_video(&video);
        let result = analyze_selected(&frames, &all, &mut oracle).expect("in range");
        assert_eq!(result.predicted, video.labels());
        assert!((result.sampling_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn analyze_selected_rejects_out_of_range() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().take(10).collect();
        let mut oracle = OracleDetector::for_video(&video);
        assert!(matches!(
            analyze_selected(&frames, &[0, 10], &mut oracle),
            Err(SieveError::InvalidSelection { index: 10, .. })
        ));
    }

    #[test]
    fn analyze_selected_rejects_unsorted_indices() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().take(10).collect();
        let mut oracle = OracleDetector::for_video(&video);
        assert!(matches!(
            analyze_selected(&frames, &[3, 1], &mut oracle),
            Err(SieveError::Selector(_))
        ));
        assert!(matches!(
            analyze_selected(&frames, &[2, 2], &mut oracle),
            Err(SieveError::Selector(_))
        ));
    }

    #[test]
    fn analyze_rejects_misbehaving_selector() {
        use crate::select::{Decision, EncodedFrameMeta, SelectorSession};

        // A session that keeps demanding pixels even after the driver
        // supplied them violates the observe contract; the driver must
        // surface an error rather than loop or panic.
        struct Greedy;
        struct GreedySession;
        impl SelectorSession for GreedySession {
            fn observe(
                &mut self,
                _index: usize,
                _meta: &EncodedFrameMeta,
                _frame: Option<&Frame>,
            ) -> Decision {
                Decision::NeedsDecode
            }
        }
        impl FrameSelector for Greedy {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn session(&self) -> Box<dyn SelectorSession> {
                Box::new(GreedySession)
            }
        }
        let (video, encoded) = setup();
        let mut oracle = OracleDetector::for_video(&video);
        assert!(matches!(
            analyze(&encoded, &mut Greedy, &mut oracle),
            Err(SieveError::Selector(_))
        ));
    }

    #[test]
    fn fewer_selections_lower_or_equal_accuracy() {
        let (video, _) = setup();
        let frames: Vec<Frame> = video.frames().collect();
        let mut oracle = OracleDetector::for_video(&video);
        let sparse: Vec<usize> = (0..frames.len()).step_by(100).collect();
        let dense: Vec<usize> = (0..frames.len()).step_by(10).collect();
        let acc = |sel: &[usize], det: &mut OracleDetector| {
            let r = analyze_selected(&frames, sel, det).expect("in range");
            crate::metrics::label_accuracy(video.labels(), &r.predicted)
        };
        assert!(acc(&sparse, &mut oracle) <= acc(&dense, &mut oracle));
    }
}
