//! The live threaded analysis pipeline, generic over selector and detector.
//!
//! Where [`crate::pipeline`] *simulates* a deployment from calibrated
//! costs, this module actually runs one on OS threads via
//! `sieve-simnet`'s back-pressured [`run_live`] runtime: the camera stage
//! feeds encoded frames, the edge stage drives any [`FrameSelector`]'s
//! streaming [`SelectorSession`] *in
//! place* — observing each frame's metadata as it arrives, decoding only
//! when the policy asks, keeping or dropping on the spot — a
//! bandwidth-throttled WAN stage carries the survivors, and the cloud stage
//! runs any [`ObjectDetector`] and stores `(frame id, labels)` tuples.
//!
//! No whole-video pre-pass: the edge never materialises the full index
//! vector or a full decode buffer. Lookahead is bounded by the session's
//! own state (at most one previous decoded frame for the pixel-differencing
//! policies, none for metadata policies) plus the back-pressured channel
//! capacity. Decode failures at the edge surface as typed
//! [`LiveReport::failed`] counts, distinct from policy drops.

use std::sync::Arc;

use sieve_nn::ObjectDetector;
use sieve_simnet::sync::Mutex;
use sieve_simnet::{run_live, LiveItem, LiveReport, LiveStage, StageResult};
use sieve_video::{Decoder, EncodedVideo, FrameType, Resolution};

use crate::error::SieveError;
use crate::events::AnalysisResult;
use crate::metrics::propagate_labels;
use crate::select::{Decision, EncodedFrameMeta, FrameSelector, SelectorSession};

/// Configuration of the live 3-tier run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Edge→cloud WAN bandwidth in bits per second.
    pub wan_bps: f64,
    /// Bounded channel capacity between stages (back-pressure depth; also
    /// the only frame lookahead the pipeline ever holds).
    pub capacity: usize,
    /// Square side of the frames shipped to the NN.
    pub nn_input: u32,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            // The paper's traffic-shaped 30 Mbps WAN.
            wan_bps: 30.0e6,
            capacity: 16,
            nn_input: 32,
        }
    }
}

/// Outcome of a live analysis run.
#[derive(Debug)]
pub struct LiveAnalysis {
    /// The runtime's transport/throughput report.
    pub report: LiveReport,
    /// The analysis result assembled from the tuples the cloud stored.
    pub result: AnalysisResult,
}

/// What the edge decided about one arriving encoded frame.
#[derive(Debug)]
pub enum EdgeOutcome {
    /// The policy kept the frame; here are its decoded pixels.
    Kept(sieve_video::Frame),
    /// The policy dropped the frame (filtering — a policy decision).
    Dropped,
    /// The frame failed to decode (a processing failure, not a drop).
    Failed,
}

/// One stream's worth of edge-side state: a streaming selection session
/// plus exactly the decode machinery its policy needs, applied with the
/// live edge-stage semantics. This is the *single* implementation of the
/// per-frame edge decision — [`run_live_analysis`] drives it inside a
/// pipeline stage and the `sieve-fleet` multi-stream runtime drives one per
/// stream, so the two paths cannot diverge.
///
/// State is bounded by construction: one stateful decoder (pixel policies),
/// plus whatever the session itself holds (at most one previous decoded
/// frame) — never a whole-video decode buffer or index vector.
pub struct EdgeSession {
    session: Box<dyn SelectorSession>,
    full_decode: bool,
    stream_decoder: Decoder,
    resolution: Resolution,
    quality: u8,
}

impl std::fmt::Debug for EdgeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeSession")
            .field("full_decode", &self.full_decode)
            .field("resolution", &self.resolution)
            .finish()
    }
}

impl EdgeSession {
    /// Opens a fresh edge session for `selector` on a stream of
    /// `resolution`/`quality` frames. The caller is responsible for any
    /// [`FrameSelector::prepare`] the policy needs — on-line policies
    /// (metadata seeking, absolute thresholds, `Budget::TargetRate`
    /// adaptation) need none, which is what lets a fleet open sessions for
    /// streams it will never see in full.
    pub fn open<S: FrameSelector + ?Sized>(
        selector: &S,
        resolution: Resolution,
        quality: u8,
    ) -> Self {
        Self::from_parts(
            selector.session(),
            selector.requires_full_decode(),
            Decoder::new(resolution, quality),
            resolution,
            quality,
        )
    }

    /// Assembles an edge session from an already-created streaming session
    /// and an externally-owned decoder — the entry point for runtimes that
    /// pool decoders across streams (`sieve-fleet`'s slab pool) or defer
    /// decoder construction until a stream's first frame actually arrives.
    /// The decoder must match the stream's `resolution`/`quality` and
    /// should be [`Decoder::reset`] if it previously served another stream.
    pub fn from_parts(
        session: Box<dyn SelectorSession>,
        full_decode: bool,
        stream_decoder: Decoder,
        resolution: Resolution,
        quality: u8,
    ) -> Self {
        Self {
            session,
            full_decode,
            stream_decoder,
            resolution,
            quality,
        }
    }

    /// Tears the session down and hands its decoder back, so the caller
    /// can return it to a pool instead of dropping the (reference frame +
    /// quant table) allocation. Call [`EdgeSession::finish`] first.
    pub fn into_decoder(self) -> Decoder {
        self.stream_decoder
    }

    /// Observes the next arriving frame (ascending `index` per stream) and
    /// returns the edge decision. Pixel policies advance the stateful
    /// decoder through every frame (P-frames chain); metadata policies
    /// decide first and independently decode survivors only.
    pub fn observe(
        &mut self,
        index: usize,
        frame_type: FrameType,
        payload: Vec<u8>,
    ) -> EdgeOutcome {
        let meta = EncodedFrameMeta {
            frame_type,
            payload_len: payload.len(),
        };
        if self.session.done() {
            return EdgeOutcome::Dropped;
        }
        if self.full_decode {
            // Decode unconditionally: P-frames chain, so the decoder state
            // must advance even through dropped frames. The decoder recycles
            // its frame buffers across the stream; only kept frames are
            // cloned out.
            let ef = sieve_video::EncodedFrame {
                frame_type,
                data: payload,
            };
            let frame = match self.stream_decoder.decode_next(&ef) {
                Ok(f) => f,
                Err(_) => return EdgeOutcome::Failed,
            };
            let decision = match self.session.observe(index, &meta, None) {
                Decision::NeedsDecode => self.session.observe(index, &meta, Some(frame)),
                d => d,
            };
            return if decision == Decision::Keep {
                EdgeOutcome::Kept(frame.clone())
            } else {
                EdgeOutcome::Dropped
            };
        }
        let (decision, frame) = {
            // Metadata path: decide first, decode survivors only.
            let first = self.session.observe(index, &meta, None);
            if first == Decision::Drop {
                return EdgeOutcome::Dropped;
            }
            let frame = match Decoder::decode_iframe(self.resolution, self.quality, &payload) {
                Ok(f) => f,
                Err(_) => return EdgeOutcome::Failed,
            };
            let decision = match first {
                Decision::NeedsDecode => self.session.observe(index, &meta, Some(&frame)),
                d => d,
            };
            (decision, frame)
        };
        if decision == Decision::Keep {
            EdgeOutcome::Kept(frame)
        } else {
            EdgeOutcome::Dropped
        }
    }

    /// End-of-stream hook: flushes the session and surfaces any deferred
    /// policy failure (see [`SelectorSession::finish`]).
    ///
    /// # Errors
    ///
    /// Whatever the underlying session's `finish` reports.
    pub fn finish(&mut self) -> Result<(), SieveError> {
        self.session.finish()
    }
}

/// Runs `video` through a live camera→edge→WAN→cloud pipeline with
/// `selector` deciding *inside the edge stage* what survives and
/// `detector` labelling survivors in the cloud.
///
/// The selector is [`prepare`](FrameSelector::prepare)d once (resolving any
/// whole-video parameters, e.g. fraction-calibrated thresholds — the
/// paper's offline tuning step), then a streaming session moves into the
/// edge thread and makes per-frame keep/drop decisions as items arrive.
/// Frame payloads stream through the threaded stages with real decoding,
/// resizing, transfer throttling and inference.
///
/// # Errors
///
/// Propagates preparation failures (invalid budgets, calibration decode
/// errors); per-frame decode failures inside the edge stage surface as
/// typed [`LiveReport::failed`] counts.
pub fn run_live_analysis<S, D>(
    video: &EncodedVideo,
    selector: &mut S,
    detector: D,
    config: &LiveConfig,
) -> Result<LiveAnalysis, SieveError>
where
    S: FrameSelector + ?Sized,
    D: ObjectDetector + Send + 'static,
{
    selector.prepare(video)?;
    let res = video.resolution();
    let quality = video.quality();
    let nn_res = Resolution::new(config.nn_input, config.nn_input);

    // Edge: drive the shared per-stream edge session (the same
    // implementation the fleet runtime uses). Metadata-driven policies
    // decode only survivors (independent I-frame decode); pixel policies
    // run the stateful full decoder over every frame to reach the
    // survivors.
    let edge = {
        let mut edge_session = EdgeSession::open(&*selector, res, quality);
        LiveStage::compute("edge: select+decode+resize", move |item: LiveItem| {
            let frame_type = if item.tag == 0 {
                FrameType::I
            } else {
                FrameType::P
            };
            let frame = match edge_session.observe(item.id as usize, frame_type, item.payload) {
                EdgeOutcome::Kept(frame) => frame,
                EdgeOutcome::Dropped => return StageResult::Drop,
                EdgeOutcome::Failed => return StageResult::Fail,
            };
            let small = frame.resize(nn_res);
            let mut bytes = Vec::with_capacity(small.raw_bytes());
            bytes.extend_from_slice(small.y().data());
            bytes.extend_from_slice(small.u().data());
            bytes.extend_from_slice(small.v().data());
            StageResult::Emit(LiveItem {
                id: item.id,
                payload: bytes,
                tag: item.tag,
            })
        })
    };

    let wan = LiveStage::link("edge->cloud WAN", config.wan_bps);

    // Cloud: rebuild the shipped frame, run the detector, store the tuple.
    let results: Arc<Mutex<Vec<(u64, sieve_datasets::LabelSet)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let detector = Arc::new(Mutex::new(detector));
    let cloud = {
        let results = results.clone();
        let detector = detector.clone();
        let side = config.nn_input;
        LiveStage::compute("cloud: NN inference", move |item: LiveItem| {
            let small_res = Resolution::new(side, side);
            let (ylen, clen) = (small_res.luma_len(), small_res.chroma_len());
            if item.payload.len() < ylen + 2 * clen {
                return StageResult::Fail;
            }
            let y = sieve_video::Plane::from_data(
                side as usize,
                side as usize,
                item.payload[..ylen].to_vec(),
            );
            let u = sieve_video::Plane::from_data(
                side as usize / 2,
                side as usize / 2,
                item.payload[ylen..ylen + clen].to_vec(),
            );
            let v = sieve_video::Plane::from_data(
                side as usize / 2,
                side as usize / 2,
                item.payload[ylen + clen..ylen + 2 * clen].to_vec(),
            );
            let frame = sieve_video::Frame::from_planes(small_res, y, u, v);
            let labels = detector.lock().detect(item.id as usize, &frame);
            results.lock().push((item.id, labels));
            StageResult::Emit(item)
        })
    };

    // Camera: every encoded frame, tagged with its type from the metadata.
    let items: Vec<LiveItem> = video
        .frames()
        .iter()
        .enumerate()
        .map(|(i, ef)| LiveItem {
            id: i as u64,
            payload: ef.data.clone(),
            tag: match ef.frame_type {
                FrameType::I => 0,
                FrameType::P => 1,
            },
        })
        .collect();

    let report = run_live(vec![edge, wan, cloud], items, config.capacity);

    let mut collected = results.lock().clone();
    collected.sort_by_key(|(id, _)| *id);
    let selected: Vec<(usize, sieve_datasets::LabelSet)> = collected
        .into_iter()
        .map(|(id, l)| (id as usize, l))
        .collect();
    let predicted = propagate_labels(video.frame_count(), &selected);
    Ok(LiveAnalysis {
        report,
        result: AnalysisResult {
            selected,
            predicted,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::IFrameSelector;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
    use sieve_nn::OracleDetector;
    use sieve_video::EncoderConfig;

    #[test]
    fn live_sieve_matches_offline_analysis() {
        let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(300, 150),
            video.frames().take(200),
        );
        let oracle = OracleDetector::for_video(&video);
        let mut selector = IFrameSelector::new();
        let live = run_live_analysis(
            &encoded,
            &mut selector,
            oracle.clone(),
            &LiveConfig::default(),
        )
        .expect("live run");
        let mut oracle = oracle;
        let offline = crate::events::analyze(&encoded, &mut IFrameSelector::new(), &mut oracle)
            .expect("offline analysis");
        assert_eq!(live.result, offline);
        assert_eq!(live.report.delivered as usize, offline.selected.len());
        assert_eq!(
            live.report.dropped as usize,
            encoded.frame_count() - offline.selected.len()
        );
        assert_eq!(live.report.failed, 0);
    }

    #[test]
    fn live_fixed_selection_full_decode_path() {
        let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(50, 0),
            video.frames().take(120),
        );
        let oracle = OracleDetector::for_video(&video);
        let mut selector = crate::select::FixedSelector::new(vec![0, 17, 53, 99]);
        let live = run_live_analysis(
            &encoded,
            &mut selector,
            oracle,
            &LiveConfig {
                capacity: 4,
                ..LiveConfig::default()
            },
        )
        .expect("live run");
        let ids: Vec<usize> = live.result.selected.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 17, 53, 99]);
    }
}
