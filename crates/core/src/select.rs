//! The unifying frame-selection layer: streaming sessions and trait-owned
//! cost models.
//!
//! Every analysis strategy the paper compares — SiEVE's I-frame seeking,
//! uniform sampling, MSE and SIFT differencing — is ultimately a policy for
//! choosing *which frames of an encoded video get decoded and sent to the
//! NN*. The layer has two levels:
//!
//! * [`FrameSelector`] is the **factory plus metadata**: it describes a
//!   policy (its [`name`](FrameSelector::name), whether it
//!   [`requires_full_decode`](FrameSelector::requires_full_decode), its
//!   per-frame [`cost_model`](FrameSelector::cost_model)) and opens
//!   streaming [`session`](FrameSelector::session)s. Policies whose
//!   parameters depend on whole-video statistics (fraction-calibrated
//!   thresholds) resolve them in [`prepare`](FrameSelector::prepare).
//! * [`SelectorSession`] **consumes frames incrementally**: drivers call
//!   [`observe`](SelectorSession::observe) once per stream frame in
//!   ascending order with the container metadata
//!   ([`EncodedFrameMeta`]); the session answers with a [`Decision`] —
//!   `Keep`, `Drop`, or `NeedsDecode` to request the decoded pixels before
//!   deciding. Sessions hold bounded state (the MSE session keeps only the
//!   previous decoded frame), so a live edge can apply any policy without
//!   ever materialising a whole-video index vector or decode buffer.
//!
//! The batch entry points ([`select`](FrameSelector::select),
//! [`select_indices`](FrameSelector::select_indices),
//! [`select_with`](FrameSelector::select_with)) are thin default wrappers
//! that drive one session over the whole video, decoding lazily: frames
//! past the last one a session can possibly keep (see
//! [`SelectorSession::done`]) are never decoded at all.
//!
//! Costs are owned by the trait too: [`SelectorCost`] names which measured
//! per-frame primitives (metadata scan, full stream decode, pairwise
//! compare, independent I-frame decode) a policy pays, and the tandem-queue
//! simulator in [`crate::pipeline`] charges exactly
//! [`SelectorCost::per_frame_secs`] — one cost source for the simulator and
//! the live path. [`FrameSelector::calibrate`] /
//! [`FrameSelector::calibrate_fractions`] batch a whole threshold sweep
//! into one scoring pass (Fig 3's one-decode calibration).
//!
//! ## Migration from the offline API
//!
//! Before this layer, `FrameSelector` implementations overrode
//! `select`/`select_indices` directly and drivers evaluated policies over a
//! whole `&EncodedVideo` up front. Those entry points still exist with the
//! same signatures and behaviour, but they are now *derived from the
//! session*: implementations provide `session()` (plus `cost_model()` and,
//! if needed, `prepare()`) instead of batch bodies, and anything that can
//! see frames one at a time — the live edge, a network receiver — drives
//! the session directly.

use serde::{Deserialize, Serialize};
use sieve_video::{Decoder, EncodedFrame, EncodedVideo, Frame, FrameType};

use crate::error::SieveError;
use crate::pipeline::WorkloadCosts;

/// What a [`SelectorSession`] wants done with one observed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Decode (if not already decoded) and analyse this frame.
    Keep,
    /// Skip this frame.
    Drop,
    /// The policy cannot decide from metadata alone: supply the decoded
    /// pixels via a second [`SelectorSession::observe`] call for the same
    /// index. The second call must return [`Decision::Keep`] or
    /// [`Decision::Drop`].
    NeedsDecode,
}

/// Container metadata for one frame — everything a selection policy can see
/// without decoding the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodedFrameMeta {
    /// Frame type (I or P) from the container index.
    pub frame_type: FrameType,
    /// Encoded payload size in bytes.
    pub payload_len: usize,
}

impl EncodedFrameMeta {
    /// The metadata of an in-memory encoded frame.
    pub fn of(frame: &EncodedFrame) -> Self {
        Self {
            frame_type: frame.frame_type,
            payload_len: frame.data.len(),
        }
    }
}

/// The per-frame cost shape of a selection policy: which measured
/// primitives (see [`WorkloadCosts`]) the selecting tier pays for one
/// stream frame. Owned by [`FrameSelector::cost_model`], consumed by the
/// deployment simulator — the single source both share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectorCost {
    /// Scans the container metadata of every stream frame (the I-frame
    /// seeker's per-frame work).
    pub metadata_scan: bool,
    /// Runs the full stateful decoder over every stream frame (P-frames
    /// chain, so pixel policies pay this even for frames they drop).
    pub full_decode: bool,
    /// Computes one pairwise change score per stream frame (MSE/SIFT
    /// differencing).
    pub pairwise_compare: bool,
    /// Analysed frames are decoded independently (JPEG-style I-frame
    /// decode) instead of falling out of the full stream decode.
    pub independent_decode: bool,
}

impl SelectorCost {
    /// Metadata-driven seeking: scan every frame's metadata, independently
    /// decode only the analysed ones — the cost asymmetry at the heart of
    /// the paper.
    pub const fn metadata_seek() -> Self {
        Self {
            metadata_scan: true,
            full_decode: false,
            pairwise_compare: false,
            independent_decode: true,
        }
    }

    /// Classical pipeline: full-decode every stream frame.
    pub const fn full_stream_decode() -> Self {
        Self {
            metadata_scan: false,
            full_decode: true,
            pairwise_compare: false,
            independent_decode: false,
        }
    }

    /// Adds a per-frame pairwise comparison (change-detector baselines).
    pub const fn with_pairwise_compare(mut self) -> Self {
        self.pairwise_compare = true;
        self
    }

    /// Seconds of selection work one stream frame costs on the reference
    /// machine described by `costs`; `analysed` frames additionally pay the
    /// independent decode (if any) and the resize to the NN input.
    pub fn per_frame_secs(&self, costs: &WorkloadCosts, analysed: bool) -> f64 {
        let mut secs = 0.0;
        if self.metadata_scan {
            secs += costs.seek_per_frame;
        }
        if self.full_decode {
            secs += costs.full_decode_per_frame;
        }
        if self.pairwise_compare {
            secs += costs.mse_per_pair;
        }
        if analysed {
            if self.independent_decode {
                secs += costs.iframe_decode;
            }
            secs += costs.resize_to_nn;
        }
        secs
    }
}

/// One streaming pass of a selection policy over a frame sequence.
///
/// Drivers observe every frame of the stream exactly once, in ascending
/// index order, stopping early only once [`SelectorSession::done`] returns
/// true. Sessions own their state ([`FrameSelector::session`] returns a
/// `'static` box), so they can move into pipeline stage threads.
pub trait SelectorSession: Send {
    /// Observes frame `index`. `frame` is `None` on the first, metadata-only
    /// call; if the session answers [`Decision::NeedsDecode`], the driver
    /// decodes the frame and calls `observe` again for the same index with
    /// `Some(pixels)`, and that second call must decide `Keep` or `Drop`.
    ///
    /// Policies that never inspect pixels (metadata seeking, fixed and
    /// uniform sampling) decide on the first call and hold no decoded
    /// frames at all.
    fn observe(&mut self, index: usize, meta: &EncodedFrameMeta, frame: Option<&Frame>)
        -> Decision;

    /// True once no future frame can be kept; drivers may stop observing
    /// (and decoding) early. Defaults to `false` (policies that can keep
    /// any frame until the end of the stream).
    fn done(&self) -> bool {
        false
    }

    /// End-of-stream hook: flush trailing state and surface deferred
    /// failures (e.g. a fixed selection that referenced frames past the end
    /// of the stream, or a fraction budget streamed without
    /// [`FrameSelector::prepare`]).
    ///
    /// # Errors
    ///
    /// Implementation-specific; the default succeeds.
    fn finish(&mut self) -> Result<(), SieveError> {
        Ok(())
    }
}

/// One operating point of a batched threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationPoint {
    /// The requested operating point, exactly as passed in (an absolute
    /// threshold for [`FrameSelector::calibrate`], a target sampling
    /// fraction for [`FrameSelector::calibrate_fractions`]).
    pub target: f64,
    /// The absolute change-score threshold this point resolved to.
    /// Threshold-free policies echo `target` here.
    pub threshold: f64,
    /// Frame indices selected at this operating point.
    pub selected: Vec<usize>,
}

/// The result of a batched calibration sweep: one scoring pass over the
/// video, one [`CalibrationPoint`] per requested operating point.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCurve {
    /// Points in the order the operating points were requested.
    pub points: Vec<CalibrationPoint>,
}

/// A policy choosing which frames of an encoded video to analyse.
///
/// Implementations provide the factory and metadata methods
/// ([`session`](Self::session), [`cost_model`](Self::cost_model),
/// [`requires_full_decode`](Self::requires_full_decode), optionally
/// [`prepare`](Self::prepare)); the batch entry points are default
/// wrappers that drive one session over the whole video.
pub trait FrameSelector {
    /// Short name used in tables and reports ("sieve", "uniform", "mse").
    fn name(&self) -> &'static str;

    /// Whether the policy must run the full (expensive) stateful decoder
    /// over every frame to reach the ones it keeps. `false` only for
    /// policies that operate on container metadata and decode survivors
    /// independently, like I-frame seeking — the cost asymmetry at the
    /// heart of the paper. Sessions of metadata-only policies may only
    /// `Keep` or `NeedsDecode` frames that decode independently
    /// (I-frames).
    fn requires_full_decode(&self) -> bool {
        true
    }

    /// The per-frame cost shape the selecting tier pays for this policy.
    /// The deployment simulator charges exactly this model. Defaults to the
    /// classical full-stream-decode shape, matching the
    /// [`requires_full_decode`](Self::requires_full_decode) default.
    fn cost_model(&self) -> SelectorCost {
        SelectorCost::full_stream_decode()
    }

    /// The sampling rate this policy targets *on-line*, if it has one
    /// (an adaptive rate budget). Serving runtimes report achieved vs.
    /// target rate from this. Defaults to `None` (no on-line target).
    fn target_rate(&self) -> Option<f64> {
        None
    }

    /// Resolves whole-video parameters before streaming — e.g. a
    /// fraction-calibrated threshold that needs the video's score
    /// distribution. On-line policies do nothing. The batch wrappers and
    /// the live driver call this once per video before opening sessions;
    /// anyone driving sessions by hand must do the same.
    ///
    /// # Errors
    ///
    /// Policy-specific: invalid budgets, failed calibration decodes.
    fn prepare(&mut self, video: &EncodedVideo) -> Result<(), SieveError> {
        let _ = video;
        Ok(())
    }

    /// Opens a fresh streaming session applying this policy from the next
    /// frame it observes.
    fn session(&self) -> Box<dyn SelectorSession>;

    /// Chooses frames from `video`, returning `(frame index, decoded
    /// frame)` pairs in ascending index order. Default: drives one session,
    /// decoding lazily up to the last kept frame.
    ///
    /// # Errors
    ///
    /// Returns a [`SieveError`] if decoding fails or the policy cannot be
    /// applied to this video.
    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        let mut out = Vec::new();
        self.select_with(video, &mut |i, frame| {
            out.push((i, frame.clone()));
            Ok(())
        })?;
        Ok(out)
    }

    /// Chooses frame indices only. Default: drives one session without
    /// materialising pixels for kept frames — for metadata-driven policies
    /// this is a pure metadata scan with no decoding at all, and pixel
    /// policies decode only the frames their sessions ask for.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`].
    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        self.prepare(video)?;
        let mut session = self.session();
        let mut out = Vec::new();
        drive_session(
            video,
            session.as_mut(),
            self.requires_full_decode(),
            false,
            &mut |i, _| {
                out.push(i);
                Ok(())
            },
        )?;
        Ok(out)
    }

    /// Streams the selection through `visit` one decoded frame at a time,
    /// in ascending index order, holding at most one decoded frame of
    /// driver state at once.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`], plus whatever
    /// `visit` returns.
    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        self.prepare(video)?;
        let mut session = self.session();
        drive_session(
            video,
            session.as_mut(),
            self.requires_full_decode(),
            true,
            &mut |i, frame| visit(i, frame.expect("driver supplies pixels for kept frames")),
        )
    }

    /// Sweeps a batch of absolute thresholds in one pass: threshold
    /// policies score the video once and apply every threshold in memory.
    /// The default covers threshold-free policies, which select the same
    /// frames at every operating point (one selection pass, replicated).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`].
    fn calibrate(
        &mut self,
        video: &EncodedVideo,
        thresholds: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        let selected = self.select_indices(video)?;
        Ok(CalibrationCurve {
            points: thresholds
                .iter()
                .map(|&t| CalibrationPoint {
                    target: t,
                    threshold: t,
                    selected: selected.clone(),
                })
                .collect(),
        })
    }

    /// Sweeps a batch of target sampling fractions in one pass: threshold
    /// policies score once, resolve each fraction to an absolute threshold
    /// and apply it in memory — Fig 3's one-decode calibration. The default
    /// covers threshold-free policies (same selection at every point).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`], plus invalid
    /// fractions for policies that resolve them.
    fn calibrate_fractions(
        &mut self,
        video: &EncodedVideo,
        fractions: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        self.calibrate(video, fractions)
    }
}

/// The sink a session drive feeds: kept index plus pixels when requested.
type EmitFn<'a> = dyn FnMut(usize, Option<&Frame>) -> Result<(), SieveError> + 'a;

/// Drives `session` over every frame of `video` in order, decoding lazily.
///
/// `full_decode` selects the pixel source (stateful stream decoder vs
/// independent I-frame decode); `want_pixels` controls whether kept frames
/// are decoded when the session did not already request pixels. Frames past
/// [`SelectorSession::done`] are neither observed nor decoded.
fn drive_session(
    video: &EncodedVideo,
    session: &mut dyn SelectorSession,
    full_decode: bool,
    want_pixels: bool,
    emit: &mut EmitFn,
) -> Result<(), SieveError> {
    let mut decoder = LazyDecoder::new(video);
    for (i, ef) in video.frames().iter().enumerate() {
        if session.done() {
            break;
        }
        let meta = EncodedFrameMeta::of(ef);
        match session.observe(i, &meta, None) {
            Decision::Drop => {}
            Decision::Keep => {
                if want_pixels {
                    let frame = decoder.decode(i, full_decode)?;
                    emit(i, Some(&frame))?;
                } else {
                    emit(i, None)?;
                }
            }
            Decision::NeedsDecode => {
                let frame = decoder.decode(i, full_decode)?;
                match session.observe(i, &meta, Some(&frame)) {
                    Decision::Keep => emit(i, want_pixels.then_some(&frame))?,
                    Decision::Drop => {}
                    Decision::NeedsDecode => {
                        return Err(SieveError::selector(format!(
                            "session demanded pixels for frame {i} twice"
                        )))
                    }
                }
            }
        }
    }
    session.finish()
}

/// Sequential decoder that only runs forward to the frames actually
/// requested: the tail of a stream past the last kept frame is never
/// decoded, and metadata-only passes decode nothing.
struct LazyDecoder<'v> {
    video: &'v EncodedVideo,
    decoder: Decoder,
    next: usize,
}

impl<'v> LazyDecoder<'v> {
    fn new(video: &'v EncodedVideo) -> Self {
        Self {
            video,
            decoder: Decoder::new(video.resolution(), video.quality()),
            next: 0,
        }
    }

    /// The decoded frame at `index`: independently for the metadata path,
    /// via the stateful stream decoder (advancing through any undecoded
    /// predecessors) otherwise.
    fn decode(&mut self, index: usize, full_decode: bool) -> Result<Frame, SieveError> {
        if !full_decode {
            return Ok(self.video.decode_iframe_at(index)?);
        }
        if self.next > index {
            return Err(SieveError::selector(format!(
                "frame {index} requested out of stream order"
            )));
        }
        // Advance through undecoded predecessors without materialising them;
        // only the requested frame is cloned out of the decoder's buffers.
        while self.next < index {
            self.decoder.decode_next(&self.video.frames()[self.next])?;
            self.next += 1;
        }
        let frame = self.decoder.decode_next(&self.video.frames()[index])?;
        self.next = index + 1;
        Ok(frame.clone())
    }
}

impl<S: FrameSelector + ?Sized> FrameSelector for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn requires_full_decode(&self) -> bool {
        (**self).requires_full_decode()
    }

    fn cost_model(&self) -> SelectorCost {
        (**self).cost_model()
    }

    fn target_rate(&self) -> Option<f64> {
        (**self).target_rate()
    }

    fn prepare(&mut self, video: &EncodedVideo) -> Result<(), SieveError> {
        (**self).prepare(video)
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        (**self).session()
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        (**self).select(video)
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        (**self).select_indices(video)
    }

    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        (**self).select_with(video, visit)
    }

    fn calibrate(
        &mut self,
        video: &EncodedVideo,
        thresholds: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        (**self).calibrate(video, thresholds)
    }

    fn calibrate_fractions(
        &mut self,
        video: &EncodedVideo,
        fractions: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        (**self).calibrate_fractions(video, fractions)
    }
}

impl FrameSelector for Box<dyn FrameSelector + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn requires_full_decode(&self) -> bool {
        (**self).requires_full_decode()
    }

    fn cost_model(&self) -> SelectorCost {
        (**self).cost_model()
    }

    fn target_rate(&self) -> Option<f64> {
        (**self).target_rate()
    }

    fn prepare(&mut self, video: &EncodedVideo) -> Result<(), SieveError> {
        (**self).prepare(video)
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        (**self).session()
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        (**self).select(video)
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        (**self).select_indices(video)
    }

    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        (**self).select_with(video, visit)
    }

    fn calibrate(
        &mut self,
        video: &EncodedVideo,
        thresholds: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        (**self).calibrate(video, thresholds)
    }

    fn calibrate_fractions(
        &mut self,
        video: &EncodedVideo,
        fractions: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        (**self).calibrate_fractions(video, fractions)
    }
}

/// SiEVE's selection policy: keep exactly the I-frames, deciding from the
/// container metadata alone and decoding survivors independently.
///
/// ```
/// use sieve_core::{FrameSelector, IFrameSelector};
/// use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
///
/// let res = Resolution::new(32, 32);
/// let video = EncodedVideo::encode(res, 30, EncoderConfig::new(3, 0),
///                                  (0..7).map(|_| Frame::grey(res)));
/// let mut sel = IFrameSelector::new();
/// assert!(!sel.requires_full_decode());
/// assert_eq!(sel.select_indices(&video).unwrap(), vec![0, 3, 6]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct IFrameSelector;

impl IFrameSelector {
    /// Creates the selector (stateless).
    pub fn new() -> Self {
        Self
    }
}

impl FrameSelector for IFrameSelector {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn requires_full_decode(&self) -> bool {
        false
    }

    fn cost_model(&self) -> SelectorCost {
        SelectorCost::metadata_seek()
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        Box::new(IFrameSession)
    }
}

/// The streaming side of [`IFrameSelector`]: keep I-frames, drop P-frames,
/// never touch pixels.
struct IFrameSession;

impl SelectorSession for IFrameSession {
    fn observe(
        &mut self,
        _index: usize,
        meta: &EncodedFrameMeta,
        _frame: Option<&Frame>,
    ) -> Decision {
        if meta.frame_type == FrameType::I {
            Decision::Keep
        } else {
            Decision::Drop
        }
    }
}

/// A fixed, precomputed selection adapted to the generic driver (stored
/// results, hand-picked frames). Streams the stateful decoder only up to
/// the largest requested index — an empty selection decodes nothing.
#[derive(Debug, Clone)]
pub struct FixedSelector {
    indices: Vec<usize>,
}

impl FixedSelector {
    /// Selects exactly `indices` (sorted and deduplicated; indices must be
    /// in range at selection time or selection errors).
    pub fn new(mut indices: Vec<usize>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        Self { indices }
    }
}

impl FrameSelector for FixedSelector {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        Box::new(FixedSession {
            indices: self.indices.clone(),
            cursor: 0,
            observed: 0,
        })
    }
}

/// The streaming side of [`FixedSelector`]: walk the sorted index list in
/// lockstep with the stream, report `done` once it is exhausted (so drivers
/// stop decoding), and surface out-of-range indices in `finish`.
struct FixedSession {
    indices: Vec<usize>,
    cursor: usize,
    observed: usize,
}

impl SelectorSession for FixedSession {
    fn observe(
        &mut self,
        index: usize,
        _meta: &EncodedFrameMeta,
        _frame: Option<&Frame>,
    ) -> Decision {
        self.observed = self.observed.max(index + 1);
        if self.indices.get(self.cursor) == Some(&index) {
            self.cursor += 1;
            Decision::Keep
        } else {
            Decision::Drop
        }
    }

    fn done(&self) -> bool {
        self.cursor == self.indices.len()
    }

    fn finish(&mut self) -> Result<(), SieveError> {
        match self.indices.get(self.cursor) {
            Some(&unreached) => Err(SieveError::InvalidSelection {
                index: unreached,
                frame_count: self.observed,
            }),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_video::{EncoderConfig, Resolution};

    fn video(gop: usize, frames: usize) -> EncodedVideo {
        let res = Resolution::new(48, 32);
        EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(gop, 0),
            (0..frames).map(move |i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 7 + i) % 230) as u8);
                    }
                }
                f
            }),
        )
    }

    #[test]
    fn iframe_selector_matches_seeker() {
        let v = video(4, 12);
        let mut sel = IFrameSelector::new();
        assert_eq!(sel.select_indices(&v).unwrap(), v.i_frame_indices());
        let picked = sel.select(&v).unwrap();
        assert_eq!(picked.len(), 3);
        for (i, f) in &picked {
            assert_eq!(*f, v.decode_iframe_at(*i).unwrap());
        }
    }

    #[test]
    fn iframe_session_is_metadata_only() {
        let v = video(3, 9);
        let mut session = IFrameSelector::new().session();
        let mut kept = Vec::new();
        for (i, ef) in v.frames().iter().enumerate() {
            match session.observe(i, &EncodedFrameMeta::of(ef), None) {
                Decision::Keep => kept.push(i),
                Decision::Drop => {}
                Decision::NeedsDecode => panic!("metadata policy requested pixels"),
            }
        }
        session.finish().unwrap();
        assert_eq!(kept, v.i_frame_indices());
    }

    #[test]
    fn fixed_selector_range_checked() {
        let v = video(4, 8);
        let mut sel = FixedSelector::new(vec![0, 3, 99]);
        assert!(matches!(
            sel.select_indices(&v),
            Err(SieveError::InvalidSelection { index: 99, .. })
        ));
        assert!(sel.select(&v).is_err());
        let mut ok = FixedSelector::new(vec![0, 5]);
        assert_eq!(ok.select(&v).unwrap().len(), 2);
    }

    #[test]
    fn fixed_selector_decodes_only_the_needed_prefix() {
        // A corrupt tail frame: any path that decodes the whole stream
        // errors, but a fixed selection that stops earlier must succeed.
        let good = video(4, 8);
        let mut v = EncodedVideo::new(good.resolution(), good.fps(), good.quality());
        for ef in good.frames() {
            v.push(sieve_video::EncodedFrame {
                frame_type: ef.frame_type,
                data: ef.data.clone(),
            });
        }
        v.push(sieve_video::EncodedFrame {
            frame_type: FrameType::P,
            data: Vec::new(),
        });
        assert!(
            v.decode_all().is_err(),
            "corrupt tail must break full decode"
        );
        let mut sel = FixedSelector::new(vec![0, 5]);
        let picked = sel
            .select(&v)
            .expect("selection stops before the corrupt tail");
        assert_eq!(picked.len(), 2);
        let mut empty = FixedSelector::new(Vec::new());
        assert_eq!(empty.select(&v).unwrap(), Vec::new());
        assert!(
            FixedSelector::new(vec![8]).select(&v).is_err(),
            "reaching past the corruption still fails"
        );
    }

    #[test]
    fn cost_models_reproduce_paper_asymmetry() {
        let costs = WorkloadCosts {
            seek_per_frame: 0.5e-6,
            iframe_decode: 2.0e-3,
            full_decode_per_frame: 8.0e-3,
            mse_per_pair: 4.0e-3,
            resize_to_nn: 0.5e-3,
            nn_inference: 10.0e-3,
        };
        let seek = SelectorCost::metadata_seek();
        let full = SelectorCost::full_stream_decode();
        let compare = SelectorCost::full_stream_decode().with_pairwise_compare();
        // Unanalysed frames: seeking pays only the metadata scan.
        assert!(seek.per_frame_secs(&costs, false) < 1e-5);
        assert!((full.per_frame_secs(&costs, false) - 8.0e-3).abs() < 1e-12);
        assert!((compare.per_frame_secs(&costs, false) - 12.0e-3).abs() < 1e-12);
        // Analysed frames: seeking adds the independent decode + resize.
        assert!((seek.per_frame_secs(&costs, true) - (0.5e-6 + 2.0e-3 + 0.5e-3)).abs() < 1e-12);
        assert!(seek.per_frame_secs(&costs, true) < full.per_frame_secs(&costs, true));
    }

    #[test]
    fn default_calibrate_replicates_threshold_free_selection() {
        let v = video(3, 9);
        let mut sel = IFrameSelector::new();
        let curve = sel.calibrate(&v, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(curve.points.len(), 3);
        for p in &curve.points {
            assert_eq!(p.selected, v.i_frame_indices());
        }
    }

    #[test]
    fn dyn_box_dispatch_works() {
        let v = video(3, 9);
        let mut boxed: Box<dyn FrameSelector> = Box::new(IFrameSelector::new());
        assert_eq!(boxed.name(), "sieve");
        assert_eq!(boxed.select_indices(&v).unwrap(), vec![0, 3, 6]);
        assert_eq!(boxed.cost_model(), SelectorCost::metadata_seek());
    }
}
