//! The unifying frame-selection layer.
//!
//! Every analysis strategy the paper compares — SiEVE's I-frame seeking,
//! uniform sampling, MSE and SIFT differencing — is ultimately a policy for
//! choosing *which frames of an encoded video get decoded and sent to the
//! NN*. [`FrameSelector`] captures exactly that policy, so the analysis
//! path ([`crate::events::analyze`]), the live threaded pipeline
//! ([`crate::live`]), and the deployment simulator all run one generic
//! driver; adding a baseline means writing one `FrameSelector` impl (the
//! image-filter adapters live in `sieve-filters`) plus a
//! [`crate::pipeline::Baseline`] registry entry for its cost model.

use sieve_video::{EncodedVideo, Frame};

use crate::error::SieveError;
use crate::seeker::IFrameSeeker;

/// A policy choosing which frames of an encoded video to analyse.
pub trait FrameSelector {
    /// Short name used in tables and reports ("sieve", "uniform", "mse").
    fn name(&self) -> &'static str;

    /// Whether the policy must run the full (expensive) decoder over every
    /// frame before it can choose. `false` only for policies that operate
    /// on container metadata, like I-frame seeking — the cost asymmetry at
    /// the heart of the paper.
    fn requires_full_decode(&self) -> bool {
        true
    }

    /// Chooses frames from `video`, returning `(frame index, decoded
    /// frame)` pairs in ascending index order.
    ///
    /// # Errors
    ///
    /// Returns a [`SieveError`] if decoding fails or the policy cannot be
    /// applied to this video.
    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError>;

    /// Chooses frame indices only. The default decodes and discards;
    /// metadata-driven implementations override this with a cheap scan.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`].
    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        Ok(self.select(video)?.into_iter().map(|(i, _)| i).collect())
    }

    /// Streams the selection through `visit` one decoded frame at a time,
    /// in ascending index order. The default buffers via
    /// [`FrameSelector::select`]; policies that can decode incrementally
    /// (I-frame seeking) override this so a long video never holds more
    /// than one decoded frame at once.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`FrameSelector::select`], plus whatever
    /// `visit` returns.
    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        for (i, frame) in self.select(video)? {
            visit(i, &frame)?;
        }
        Ok(())
    }
}

impl<S: FrameSelector + ?Sized> FrameSelector for &mut S {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn requires_full_decode(&self) -> bool {
        (**self).requires_full_decode()
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        (**self).select(video)
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        (**self).select_indices(video)
    }

    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        (**self).select_with(video, visit)
    }
}

impl FrameSelector for Box<dyn FrameSelector + '_> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn requires_full_decode(&self) -> bool {
        (**self).requires_full_decode()
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        (**self).select(video)
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        (**self).select_indices(video)
    }

    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        (**self).select_with(video, visit)
    }
}

/// SiEVE's selection policy: scan the container metadata for I-frames and
/// decode exactly those, independently. The [`FrameSelector`] adapter over
/// [`IFrameSeeker`].
///
/// ```
/// use sieve_core::{FrameSelector, IFrameSelector};
/// use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
///
/// let res = Resolution::new(32, 32);
/// let video = EncodedVideo::encode(res, 30, EncoderConfig::new(3, 0),
///                                  (0..7).map(|_| Frame::grey(res)));
/// let mut sel = IFrameSelector::new();
/// assert!(!sel.requires_full_decode());
/// assert_eq!(sel.select_indices(&video).unwrap(), vec![0, 3, 6]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct IFrameSelector;

impl IFrameSelector {
    /// Creates the selector (stateless).
    pub fn new() -> Self {
        Self
    }
}

impl FrameSelector for IFrameSelector {
    fn name(&self) -> &'static str {
        "sieve"
    }

    fn requires_full_decode(&self) -> bool {
        false
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        let seeker = IFrameSeeker::new(video);
        let mut out = Vec::with_capacity(seeker.i_frame_count());
        for item in seeker.decode_i_frames() {
            out.push(item?);
        }
        Ok(out)
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        Ok(video.i_frame_indices())
    }

    fn select_with(
        &mut self,
        video: &EncodedVideo,
        visit: &mut dyn FnMut(usize, &Frame) -> Result<(), SieveError>,
    ) -> Result<(), SieveError> {
        // Stream: one independently decoded I-frame in memory at a time.
        for item in IFrameSeeker::new(video).decode_i_frames() {
            let (i, frame) = item?;
            visit(i, &frame)?;
        }
        Ok(())
    }
}

/// A fixed, precomputed selection: fully decodes the stream and keeps the
/// given indices. Adapts externally computed selections (stored results,
/// hand-picked frames) to the generic driver.
#[derive(Debug, Clone)]
pub struct FixedSelector {
    indices: Vec<usize>,
}

impl FixedSelector {
    /// Selects exactly `indices` (must be ascending and in range at
    /// selection time).
    pub fn new(indices: Vec<usize>) -> Self {
        Self { indices }
    }
}

impl FrameSelector for FixedSelector {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        let frames = video.decode_all()?;
        self.indices
            .iter()
            .map(|&i| {
                frames
                    .get(i)
                    .cloned()
                    .map(|f| (i, f))
                    .ok_or(SieveError::InvalidSelection {
                        index: i,
                        frame_count: frames.len(),
                    })
            })
            .collect()
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        if let Some(&bad) = self.indices.iter().find(|&&i| i >= video.frame_count()) {
            return Err(SieveError::InvalidSelection {
                index: bad,
                frame_count: video.frame_count(),
            });
        }
        Ok(self.indices.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_video::{EncoderConfig, Resolution};

    fn video(gop: usize, frames: usize) -> EncodedVideo {
        let res = Resolution::new(48, 32);
        EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(gop, 0),
            (0..frames).map(move |i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 7 + i) % 230) as u8);
                    }
                }
                f
            }),
        )
    }

    #[test]
    fn iframe_selector_matches_seeker() {
        let v = video(4, 12);
        let mut sel = IFrameSelector::new();
        assert_eq!(sel.select_indices(&v).unwrap(), v.i_frame_indices());
        let picked = sel.select(&v).unwrap();
        assert_eq!(picked.len(), 3);
        for (i, f) in &picked {
            assert_eq!(*f, v.decode_iframe_at(*i).unwrap());
        }
    }

    #[test]
    fn fixed_selector_range_checked() {
        let v = video(4, 8);
        let mut sel = FixedSelector::new(vec![0, 3, 99]);
        assert!(matches!(
            sel.select_indices(&v),
            Err(SieveError::InvalidSelection { index: 99, .. })
        ));
        assert!(sel.select(&v).is_err());
        let mut ok = FixedSelector::new(vec![0, 5]);
        assert_eq!(ok.select(&v).unwrap().len(), 2);
    }

    #[test]
    fn dyn_box_dispatch_works() {
        let v = video(3, 9);
        let mut boxed: Box<dyn FrameSelector> = Box::new(IFrameSelector::new());
        assert_eq!(boxed.name(), "sieve");
        assert_eq!(boxed.select_indices(&v).unwrap(), vec![0, 3, 6]);
    }
}
