//! Offline tuning of the semantic encoder (the paper's Fig 2 procedure).
//!
//! For every `(GOP size, scenecut)` pair in a grid, re-encode the training
//! video, locate the resulting I-frames, score the placement against the
//! ground-truth events (accuracy + filtering rate + F1), and keep the
//! configuration with the highest F1. The tuned parameters go into a
//! per-camera [`crate::lookup::LookupTable`] for online use.

use serde::{Deserialize, Serialize};
use sieve_datasets::LabelSet;
use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};

use crate::metrics::{score_selection, DetectionQuality};
use crate::seeker::IFrameSeeker;

/// The grid of configurations to explore.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigGrid {
    /// Candidate GOP sizes (the paper tries e.g. 100, 250, 1000, 5000).
    pub gop_sizes: Vec<usize>,
    /// Candidate scenecut thresholds (the paper tries 20..250).
    pub scenecuts: Vec<u16>,
}

impl ConfigGrid {
    /// The paper's grid: five values per parameter (`k = l = 5`).
    pub fn paper_default() -> Self {
        Self {
            gop_sizes: vec![100, 250, 500, 1000, 5000],
            scenecuts: vec![20, 40, 100, 200, 250],
        }
    }

    /// A small grid for quick runs and tests.
    pub fn small() -> Self {
        Self {
            gop_sizes: vec![100, 500],
            scenecuts: vec![40, 150, 300],
        }
    }

    /// All `(gop, scenecut)` combinations as encoder configs.
    pub fn configs(&self) -> Vec<EncoderConfig> {
        let mut out = Vec::with_capacity(self.gop_sizes.len() * self.scenecuts.len());
        for &g in &self.gop_sizes {
            for &s in &self.scenecuts {
                out.push(EncoderConfig::new(g, s));
            }
        }
        out
    }

    /// Number of configurations (`k * l`).
    pub fn len(&self) -> usize {
        self.gop_sizes.len() * self.scenecuts.len()
    }

    /// True when the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.gop_sizes.is_empty() || self.scenecuts.is_empty()
    }
}

impl Default for ConfigGrid {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Score of one explored configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigScore {
    /// The configuration.
    pub config: EncoderConfig,
    /// Its event-detection quality on the training video.
    pub quality: DetectionQuality,
}

/// Outcome of the offline tuning stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningOutcome {
    /// The F1-maximizing configuration.
    pub best: ConfigScore,
    /// Every explored configuration, in grid order.
    pub explored: Vec<ConfigScore>,
}

/// Scores the I-frame placement of an already-encoded video against ground
/// truth, assuming an oracle NN on decoded I-frames (the paper's model).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the frame count or is zero.
pub fn score_encoding(video: &EncodedVideo, labels: &[LabelSet]) -> DetectionQuality {
    assert_eq!(
        labels.len(),
        video.frame_count(),
        "labels must cover every frame"
    );
    let selected = IFrameSeeker::new(video).i_frame_indices();
    score_selection(labels, &selected)
}

/// Runs the Fig 2 procedure: encodes the training frames under every grid
/// configuration and returns all scores plus the F1-argmax.
///
/// `render` is called once per configuration to obtain a fresh frame
/// iterator (frames are regenerated rather than held in memory — training
/// videos can be long).
///
/// # Panics
///
/// Panics if the grid is empty or `labels` is empty.
pub fn tune<F, I>(
    resolution: Resolution,
    fps: u32,
    grid: &ConfigGrid,
    labels: &[LabelSet],
    mut render: F,
) -> TuningOutcome
where
    F: FnMut() -> I,
    I: Iterator<Item = Frame>,
{
    assert!(!grid.is_empty(), "config grid must be non-empty");
    assert!(!labels.is_empty(), "training labels must be non-empty");
    let mut explored = Vec::with_capacity(grid.len());
    for config in grid.configs() {
        let video = EncodedVideo::encode(resolution, fps, config, render());
        let quality = score_encoding(&video, labels);
        explored.push(ConfigScore { config, quality });
    }
    // `>=` keeps the last of tied configs, matching `Iterator::max_by`
    // semantics so tie-breaking is stable across refactors.
    let mut best = explored[0];
    for score in &explored[1..] {
        if score.quality.f1 >= best.quality.f1 {
            best = *score;
        }
    }
    TuningOutcome { best, explored }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};

    #[test]
    fn grid_combinatorics() {
        let g = ConfigGrid::paper_default();
        assert_eq!(g.len(), 25);
        assert_eq!(g.configs().len(), 25);
        assert!(!g.is_empty());
    }

    #[test]
    fn tune_picks_f1_argmax() {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let grid = ConfigGrid {
            gop_sizes: vec![50, 600],
            scenecuts: vec![0, 200],
        };
        let outcome = tune(
            video.resolution(),
            video.fps(),
            &grid,
            video.labels(),
            || video.frames(),
        );
        assert_eq!(outcome.explored.len(), 4);
        let max_f1 = outcome
            .explored
            .iter()
            .map(|s| s.quality.f1)
            .fold(f64::MIN, f64::max);
        assert_eq!(outcome.best.quality.f1, max_f1);
    }

    #[test]
    fn scenecut_beats_blind_gop_on_event_accuracy() {
        // The semantic point of the paper: scenecut-placed I-frames catch
        // event starts that fixed GOP boundaries miss.
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let blind = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(300, 0),
            video.frames(),
        );
        let semantic = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(300, 200),
            video.frames(),
        );
        let q_blind = score_encoding(&blind, video.labels());
        let q_sem = score_encoding(&semantic, video.labels());
        assert!(
            q_sem.accuracy > q_blind.accuracy,
            "semantic {q_sem:?} must beat blind {q_blind:?} on accuracy"
        );
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn score_encoding_validates_lengths() {
        let res = Resolution::new(32, 32);
        let v = EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(5, 0),
            (0..4).map(|_| Frame::grey(res)),
        );
        let _ = score_encoding(&v, &[LabelSet::empty(); 3]);
    }
}
