//! The results database and GOP-level event seeking.
//!
//! The paper's cloud engine "stores the result in a database ... a list of
//! tuples where each tuple consists of frame ID and the object names", and
//! the semantically encoded video kept at the edge "helps to quickly seek
//! the exact event/GOP that can be further analyzed". This module provides
//! both: a queryable result store and an event seeker that maps a label
//! query to the GOPs (byte ranges) holding the matching footage.

use serde::{Deserialize, Serialize};
use sieve_datasets::{segment_events, Event, LabelSet, ObjectClass};
use sieve_video::{DecodeError, EncodedVideo, Frame};

use crate::events::AnalysisResult;

/// One stored detection result: the tuple the paper's cloud database keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResultTuple {
    /// Frame index within the video.
    pub frame_id: usize,
    /// Object labels detected in that frame.
    pub labels: LabelSet,
}

/// The per-video result store.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultStore {
    tuples: Vec<ResultTuple>,
    frame_count: usize,
}

impl ResultStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a store from an analysis result.
    pub fn from_analysis(result: &AnalysisResult) -> Self {
        Self {
            tuples: result
                .selected
                .iter()
                .map(|&(frame_id, labels)| ResultTuple { frame_id, labels })
                .collect(),
            frame_count: result.predicted.len(),
        }
    }

    /// Number of stored tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples in frame order.
    pub fn tuples(&self) -> &[ResultTuple] {
        &self.tuples
    }

    /// Per-frame labels reconstructed by propagation (frame `i` inherits the
    /// most recent stored tuple at or before `i`).
    pub fn frame_labels(&self) -> Vec<LabelSet> {
        let pairs: Vec<(usize, LabelSet)> =
            self.tuples.iter().map(|t| (t.frame_id, t.labels)).collect();
        crate::metrics::propagate_labels(self.frame_count, &pairs)
    }

    /// The events implied by the stored tuples.
    pub fn events(&self) -> Vec<Event> {
        segment_events(&self.frame_labels())
    }

    /// Events whose label set contains `class` — "show me every car".
    pub fn events_with(&self, class: ObjectClass) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.labels.contains(class))
            .collect()
    }

    /// The frame ranges (start, end) where `class` was visible, merged.
    pub fn presence_ranges(&self, class: ObjectClass) -> Vec<(usize, usize)> {
        self.events_with(class)
            .into_iter()
            .map(|e| (e.start, e.end()))
            .collect()
    }
}

/// Seeks the stored semantic video for the footage behind a query: for each
/// matching event, decode its anchor I-frame (and optionally the rest of
/// its GOP through the normal decoder) without touching unrelated GOPs.
#[derive(Debug)]
pub struct EventSeeker<'a> {
    video: &'a EncodedVideo,
    store: &'a ResultStore,
}

impl<'a> EventSeeker<'a> {
    /// Creates a seeker over the archived semantic stream and its results.
    pub fn new(video: &'a EncodedVideo, store: &'a ResultStore) -> Self {
        Self { video, store }
    }

    /// The anchor I-frame index for an event: the latest stored tuple at or
    /// before the event start (by construction of the analysis, event
    /// boundaries coincide with analysed I-frames).
    pub fn anchor_for(&self, event: &Event) -> Option<usize> {
        self.store
            .tuples()
            .iter()
            .rev()
            .map(|t| t.frame_id)
            .find(|&id| id <= event.start)
    }

    /// Decodes the anchor frame of every event containing `class`.
    ///
    /// # Errors
    ///
    /// Propagates the first I-frame decode failure.
    pub fn footage_of(&self, class: ObjectClass) -> Result<Vec<(Event, Frame)>, DecodeError> {
        let mut out = Vec::new();
        for event in self.store.events_with(class) {
            let Some(anchor) = self.anchor_for(&event) else {
                continue;
            };
            let frame = self.video.decode_iframe_at(anchor)?;
            out.push((event, frame));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::analyze_sieve;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
    use sieve_nn::OracleDetector;
    use sieve_video::EncoderConfig;

    fn setup() -> (sieve_datasets::SyntheticVideo, EncodedVideo, ResultStore) {
        let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
        let encoded = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::new(300, 150),
            video.frames(),
        );
        let mut nn = OracleDetector::for_video(&video);
        let result = analyze_sieve(&encoded, &mut nn).expect("analysis");
        let store = ResultStore::from_analysis(&result);
        (video, encoded, store)
    }

    #[test]
    fn store_round_trips_labels() {
        let (video, _, store) = setup();
        assert!(!store.is_empty());
        let labels = store.frame_labels();
        assert_eq!(labels.len(), video.frame_count());
        // Stored tuples are exact at their own frames.
        for t in store.tuples() {
            assert_eq!(labels[t.frame_id], t.labels);
        }
    }

    #[test]
    fn events_with_class_filters() {
        let (_, _, store) = setup();
        let all = store.events();
        let cars = store.events_with(ObjectClass::Car);
        assert!(cars.len() <= all.len());
        for e in &cars {
            assert!(e.labels.contains(ObjectClass::Car));
        }
        // Boats never appear in Jackson square.
        assert!(store.events_with(ObjectClass::Boat).is_empty());
    }

    #[test]
    fn seeker_returns_decodable_footage() {
        let (_, encoded, store) = setup();
        let seeker = EventSeeker::new(&encoded, &store);
        // Whatever vehicle classes occurred must be seekable.
        let mut found_any = false;
        for class in [ObjectClass::Car, ObjectClass::Bus, ObjectClass::Truck] {
            for (event, frame) in seeker.footage_of(class).expect("footage") {
                assert!(event.labels.contains(class));
                assert_eq!(frame.resolution(), encoded.resolution());
                found_any = true;
            }
        }
        assert!(found_any, "tiny Jackson square must contain vehicle events");
    }

    #[test]
    fn presence_ranges_are_disjoint_and_ordered() {
        let (_, _, store) = setup();
        for class in [ObjectClass::Car, ObjectClass::Bus, ObjectClass::Truck] {
            let ranges = store.presence_ranges(class);
            for w in ranges.windows(2) {
                assert!(w[0].1 <= w[1].0, "ranges must not overlap");
            }
            for (s, e) in ranges {
                assert!(s < e);
            }
        }
    }

    #[test]
    fn store_serde_roundtrip() {
        let (_, _, store) = setup();
        let json = serde_json::to_string(&store).expect("serialize");
        let back: ResultStore = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(store, back);
    }
}
