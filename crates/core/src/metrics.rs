//! The paper's evaluation metrics.
//!
//! * **accuracy** — fraction of frames whose *propagated* label equals the
//!   ground truth. Selected frames (I-frames / sampled frames) are labelled
//!   by the reference NN, assumed correct; every other frame inherits the
//!   most recent selected frame's label. This matches Section IV's
//!   definition: an event whose first I-frame arrives late contributes its
//!   pre-I-frame prefix as errors, and an event with no I-frame at all is
//!   entirely mislabelled.
//! * **filtering rate** (`fr`) — fraction of frames that are *not* analysed.
//! * **F1 score** — harmonic mean of accuracy and filtering rate, the
//!   tuner's objective.

use serde::{Deserialize, Serialize};
use sieve_datasets::LabelSet;

/// Quality of one configuration's event detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionQuality {
    /// Per-frame label accuracy in `[0, 1]`.
    pub accuracy: f64,
    /// Fraction of frames selected for NN analysis, in `[0, 1]`.
    pub sampling_rate: f64,
    /// `1 - sampling_rate`.
    pub filtering_rate: f64,
    /// Harmonic mean of accuracy and filtering rate.
    pub f1: f64,
}

/// Harmonic mean of accuracy and filtering rate (the paper's F1).
pub fn f1_score(accuracy: f64, filtering_rate: f64) -> f64 {
    if accuracy + filtering_rate <= 0.0 {
        0.0
    } else {
        2.0 * accuracy * filtering_rate / (accuracy + filtering_rate)
    }
}

/// Propagates labels from selected frames: each frame takes the label of the
/// most recent selected frame at or before it. Frames before the first
/// selection default to the empty label set.
///
/// `selected` pairs frame indices with the label the NN produced there and
/// must be sorted by index (the natural order of any seeker/sampler).
///
/// # Panics
///
/// Panics if `selected` is not sorted or contains an index `>= total_frames`.
pub fn propagate_labels(total_frames: usize, selected: &[(usize, LabelSet)]) -> Vec<LabelSet> {
    let mut out = vec![LabelSet::empty(); total_frames];
    let mut prev_idx = None::<usize>;
    for &(idx, labels) in selected {
        assert!(idx < total_frames, "selected index {idx} out of range");
        if let Some(p) = prev_idx {
            assert!(idx > p, "selected indices must be strictly increasing");
        }
        for l in out.iter_mut().skip(idx) {
            *l = labels;
        }
        prev_idx = Some(idx);
    }
    out
}

/// Fraction of frames where `predicted` matches `truth`.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
pub fn label_accuracy(truth: &[LabelSet], predicted: &[LabelSet]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "label length mismatch");
    assert!(!truth.is_empty(), "accuracy of an empty video is undefined");
    let correct = truth.iter().zip(predicted).filter(|(t, p)| t == p).count();
    correct as f64 / truth.len() as f64
}

/// Scores a frame selection against ground truth assuming an oracle NN on
/// the selected frames (the paper's accuracy model).
///
/// # Panics
///
/// Panics if `truth` is empty or `selected` is unsorted/out of range.
pub fn score_selection(truth: &[LabelSet], selected: &[usize]) -> DetectionQuality {
    let labelled: Vec<(usize, LabelSet)> = selected.iter().map(|&i| (i, truth[i])).collect();
    let predicted = propagate_labels(truth.len(), &labelled);
    let accuracy = label_accuracy(truth, &predicted);
    let sampling_rate = selected.len() as f64 / truth.len() as f64;
    let filtering_rate = 1.0 - sampling_rate;
    DetectionQuality {
        accuracy,
        sampling_rate,
        filtering_rate,
        f1: f1_score(accuracy, filtering_rate),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::ObjectClass;

    fn car() -> LabelSet {
        LabelSet::single(ObjectClass::Car)
    }
    fn none() -> LabelSet {
        LabelSet::empty()
    }

    #[test]
    fn f1_harmonic_mean_properties() {
        assert_eq!(f1_score(0.0, 0.0), 0.0);
        assert!((f1_score(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((f1_score(0.5, 0.5) - 0.5).abs() < 1e-12);
        // Harmonic mean is dominated by the smaller value.
        assert!(f1_score(1.0, 0.1) < 0.2);
        // Symmetry.
        assert_eq!(f1_score(0.3, 0.9), f1_score(0.9, 0.3));
    }

    #[test]
    fn propagate_fills_forward() {
        let sel = vec![(0, none()), (3, car()), (6, none())];
        let out = propagate_labels(8, &sel);
        assert_eq!(out[0], none());
        assert_eq!(out[2], none());
        assert_eq!(out[3], car());
        assert_eq!(out[5], car());
        assert_eq!(out[6], none());
        assert_eq!(out[7], none());
    }

    #[test]
    fn propagate_before_first_selection_is_empty() {
        let out = propagate_labels(4, &[(2, car())]);
        assert_eq!(out[0], none());
        assert_eq!(out[1], none());
        assert_eq!(out[2], car());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn propagate_rejects_unsorted() {
        let _ = propagate_labels(5, &[(3, car()), (1, none())]);
    }

    #[test]
    fn perfect_selection_scores_full_accuracy() {
        // Events: [none x3][car x3][none x2], selections at event starts.
        let truth = vec![none(), none(), none(), car(), car(), car(), none(), none()];
        let q = score_selection(&truth, &[0, 3, 6]);
        assert!((q.accuracy - 1.0).abs() < 1e-12);
        assert!((q.sampling_rate - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn late_iframe_loses_event_prefix() {
        // The car event starts at 3 but the first selection inside it is 5:
        // frames 3 and 4 are mislabelled.
        let truth = vec![none(), none(), none(), car(), car(), car(), car(), none()];
        let q = score_selection(&truth, &[0, 5, 7]);
        assert!((q.accuracy - 6.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn missed_event_entirely_wrong() {
        let truth = vec![none(), car(), car(), car(), none(), none()];
        // Only frame 0 selected: the car event is never seen; frames 1-3
        // wrong, frames 4-5 happen to match "none".
        let q = score_selection(&truth, &[0]);
        assert!((q.accuracy - 3.0 / 6.0).abs() < 1e-12);
        assert!((q.filtering_rate - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn more_selections_never_reduce_accuracy() {
        let truth = vec![none(), car(), none(), car(), car(), none()];
        let sparse = score_selection(&truth, &[0, 3]);
        let dense = score_selection(&truth, &[0, 1, 2, 3, 4, 5]);
        assert!(dense.accuracy >= sparse.accuracy);
        assert!((dense.accuracy - 1.0).abs() < 1e-12);
        assert_eq!(dense.filtering_rate, 0.0);
    }

    #[test]
    fn quality_fields_consistent() {
        let truth = vec![none(); 10];
        let q = score_selection(&truth, &[0, 4]);
        assert!((q.sampling_rate + q.filtering_rate - 1.0).abs() < 1e-12);
        assert!((q.f1 - f1_score(q.accuracy, q.filtering_rate)).abs() < 1e-12);
    }
}
