//! The I-frame seeker: SiEVE's cheap event-detection path.
//!
//! The seeker scans an encoded video's *metadata* — never the payloads — to
//! find I-frames, then decodes exactly those, JPEG-style. Combined with a
//! semantically tuned encoder, the decoded I-frames are the event frames;
//! everything else inherits labels (see [`crate::metrics`]).

use sieve_video::{DecodeError, EncodedVideo, Frame, FrameType, VideoIndex};

/// Seeks I-frames in an in-memory encoded video.
///
/// ```
/// use sieve_core::IFrameSeeker;
/// use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
///
/// let res = Resolution::new(32, 32);
/// let video = EncodedVideo::encode(res, 30, EncoderConfig::new(3, 0),
///                                  (0..7).map(|_| Frame::grey(res)));
/// let seeker = IFrameSeeker::new(&video);
/// assert_eq!(seeker.i_frame_indices(), vec![0, 3, 6]);
/// let decoded: Vec<_> = seeker.decode_i_frames().collect::<Result<_, _>>().unwrap();
/// assert_eq!(decoded.len(), 3);
/// ```
#[derive(Debug)]
pub struct IFrameSeeker<'a> {
    video: &'a EncodedVideo,
}

impl<'a> IFrameSeeker<'a> {
    /// Creates a seeker over `video`.
    pub fn new(video: &'a EncodedVideo) -> Self {
        Self { video }
    }

    /// Indices of all I-frames, found by scanning frame types only.
    pub fn i_frame_indices(&self) -> Vec<usize> {
        self.video.i_frame_indices()
    }

    /// Number of I-frames (the number of NN invocations SiEVE will pay).
    pub fn i_frame_count(&self) -> usize {
        self.video
            .frames()
            .iter()
            .filter(|f| f.frame_type == FrameType::I)
            .count()
    }

    /// Fraction of frames that are I-frames (the paper's "percentage of
    /// sampled frames").
    pub fn sampling_rate(&self) -> f64 {
        if self.video.frame_count() == 0 {
            0.0
        } else {
            self.i_frame_count() as f64 / self.video.frame_count() as f64
        }
    }

    /// Lazily decodes each I-frame independently, in display order.
    ///
    /// Each item is `(frame_index, decoded frame)`; decoding failures are
    /// surfaced per frame.
    pub fn decode_i_frames(
        &self,
    ) -> impl Iterator<Item = Result<(usize, Frame), DecodeError>> + 'a {
        let video = self.video;
        video
            .i_frame_indices()
            .into_iter()
            .map(move |i| video.decode_iframe_at(i).map(|f| (i, f)))
    }
}

/// Seeks I-frames in a *serialized* container without parsing payloads —
/// the byte-level equivalent of [`IFrameSeeker`], used when the video
/// arrives over the network as a byte stream.
#[derive(Debug)]
pub struct ByteStreamSeeker {
    index: VideoIndex,
}

impl ByteStreamSeeker {
    /// Parses only the container header and frame table.
    ///
    /// # Errors
    ///
    /// Returns a container error if `bytes` is not a valid `SEV1` stream.
    pub fn parse(bytes: &[u8]) -> Result<Self, sieve_video::ContainerError> {
        Ok(Self {
            index: VideoIndex::parse(bytes)?,
        })
    }

    /// The parsed index.
    pub fn index(&self) -> &VideoIndex {
        &self.index
    }

    /// I-frame indices.
    pub fn i_frame_indices(&self) -> Vec<usize> {
        self.index.i_frames().map(|(i, _)| i).collect()
    }

    /// Decodes the I-frame at stream position `frame_index` from `bytes`.
    ///
    /// # Errors
    ///
    /// Returns a decode error if the frame is not an I-frame or is corrupt.
    pub fn decode_at(&self, bytes: &[u8], frame_index: usize) -> Result<Frame, DecodeError> {
        let meta = self
            .index
            .entries
            .get(frame_index)
            .ok_or(DecodeError::FrameOutOfRange)?;
        self.index.decode_iframe(bytes, meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_video::{EncoderConfig, Resolution};

    fn video(gop: usize, frames: usize) -> EncodedVideo {
        let res = Resolution::new(48, 32);
        EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(gop, 0),
            (0..frames).map(move |i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 7 + i) % 230) as u8);
                    }
                }
                f
            }),
        )
    }

    #[test]
    fn seeker_counts_match_gop() {
        let v = video(4, 12);
        let s = IFrameSeeker::new(&v);
        assert_eq!(s.i_frame_count(), 3);
        assert_eq!(s.i_frame_indices(), vec![0, 4, 8]);
        assert!((s.sampling_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decoded_iframes_match_full_decode() {
        let v = video(3, 9);
        let s = IFrameSeeker::new(&v);
        let full = v.decode_all().expect("full decode");
        for item in s.decode_i_frames() {
            let (i, f) = item.expect("iframe decode");
            assert_eq!(f, full[i], "frame {i} differs from streaming decode");
        }
    }

    #[test]
    fn byte_stream_seeker_agrees_with_memory_seeker() {
        let v = video(5, 15);
        let bytes = v.to_bytes();
        let bs = ByteStreamSeeker::parse(&bytes).expect("parse");
        let mem = IFrameSeeker::new(&v);
        assert_eq!(bs.i_frame_indices(), mem.i_frame_indices());
        for i in bs.i_frame_indices() {
            let a = bs.decode_at(&bytes, i).expect("decode");
            let b = v.decode_iframe_at(i).expect("decode");
            assert_eq!(a, b);
        }
    }

    #[test]
    fn byte_stream_seeker_rejects_p_frames() {
        let v = video(5, 10);
        let bytes = v.to_bytes();
        let bs = ByteStreamSeeker::parse(&bytes).expect("parse");
        assert!(bs.decode_at(&bytes, 1).is_err());
    }

    #[test]
    fn empty_video_sampling_rate_zero() {
        let v = EncodedVideo::new(Resolution::new(16, 16), 30, 75);
        assert_eq!(IFrameSeeker::new(&v).sampling_rate(), 0.0);
    }
}
