//! On-line threshold adaptation: streaming score statistics that retarget a
//! change threshold to hit a requested sampling rate.
//!
//! The paper's fraction budgets are resolved *offline*: score the whole
//! video, sort, pick the threshold that keeps the requested fraction
//! ([`crate::FrameSelector::prepare`]). A live edge never sees the whole
//! video, so this module provides the on-line counterpart used by
//! `sieve_filters::AdaptiveChangeSession` and the `sieve-fleet` runtime:
//!
//! * [`Ewma`] — an exponentially weighted moving average, used both for the
//!   achieved-rate estimate and for the score-spread scale;
//! * [`P2Quantile`] — the P² streaming quantile estimator (Jain &
//!   Chlamtac, CACM 1985): five markers track any quantile of an unbounded
//!   stream in O(1) memory, no samples stored;
//! * [`RateController`] — the controller itself. It thresholds each score
//!   at the running `(1 - target)`-quantile (the operating point whose keep
//!   probability is `target` on a stationary stream) plus a small
//!   stochastic-approximation bias that nudges the achieved rate toward the
//!   target, correcting estimator bias and slow drift.
//!
//! The controller is fully deterministic: the same score stream always
//! yields the same decisions. Every controller also mirrors its activity
//! into the process-wide [`sieve_stats::global`] registry under the
//! `"adapt"` stage (`adapt.observed`, `adapt.kept`, `adapt.forced_keeps`)
//! — observation only, never an input to a decision, so determinism is
//! unaffected.
//!
//! # WAN feedback
//!
//! A hostile uplink changes what "the right sampling rate" is: when the
//! WAN drops more than its FEC can repair, shipping fewer frames beats
//! shipping corrupt gaps. [`WanFeedback`] is one receiver-side quantum of
//! loss/recovery counts (produced by `sieve-net` from the same `wan.*`
//! registry series the operator watches), and [`WanSignal`] folds those
//! quanta into a multiplicative-decrease / additive-increase *target
//! factor* in `[MIN_WAN_FACTOR, 1]`. Every controller scales its requested
//! rate by its signal's factor ([`RateController::effective_target`]);
//! controllers share the process-wide [`wan_signal`] by default, so one
//! congested uplink tightens every stream it carries.

use std::sync::{Arc, OnceLock};

use sieve_simnet::sync::atomic::{AtomicU64, Ordering};
use sieve_stats::Counter;

use crate::error::SieveError;

/// An exponentially weighted moving average with a fixed smoothing factor.
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// A new average; `alpha` in `(0, 1]` is the weight of each new sample.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0, 1], got {alpha}"
        );
        Self { alpha, value: None }
    }

    /// Folds in one sample and returns the updated average. The first
    /// sample initialises the average directly.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        };
        self.value = Some(v);
        v
    }

    /// The current average, or `default` before any sample arrived.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// The current average, if any sample has arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// The P² streaming quantile estimator: tracks the `p`-quantile of an
/// unbounded stream with five markers and no stored samples.
///
/// Until five observations have arrived the estimate is the empirical
/// quantile of the buffered prefix; from the sixth observation on, marker
/// heights move by the piecewise-parabolic (P²) update.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    increments: [f64; 5],
    /// Initialisation buffer holding the first < 5 observations, sorted.
    init: Vec<f64>,
    count: u64,
}

impl P2Quantile {
    /// An estimator for the `p`-quantile, `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "quantile must be in [0, 1]");
        Self {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            init: Vec::with_capacity(5),
            count: 0,
        }
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current quantile estimate; `None` before the first observation.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            // Empirical quantile of the sorted prefix.
            let idx = (self.p * (self.init.len() - 1) as f64).round() as usize;
            return Some(self.init[idx.min(self.init.len() - 1)]);
        }
        Some(self.heights[2])
    }

    /// Folds in one observation.
    pub fn insert(&mut self, x: f64) {
        self.count += 1;
        if self.count <= 5 {
            let at = self.init.partition_point(|&v| v <= x);
            self.init.insert(at, x);
            if self.count == 5 {
                self.heights.copy_from_slice(&self.init);
            }
            return;
        }
        // 1. Find the cell k containing x, clamping the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[k] <= x < heights[k+1]; the guards above bound x in
            // [heights[0], heights[4]), so the scan cannot miss — but fold
            // the impossible case into the last interior cell instead of
            // panicking on a hot path.
            (0..4).find(|&i| x < self.heights[i + 1]).unwrap_or(3)
        };
        // 2. Shift actual positions above the cell; advance desired ones.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }
        // 3. Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                self.heights[i] =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.positions[i] += d;
            }
        }
    }

    /// The piecewise-parabolic (P²) height prediction for marker `i` moved
    /// by `d` (±1).
    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    /// Linear fallback when the parabolic prediction is not monotone.
    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }
}

/// One feedback quantum from a WAN receiver: what happened to the packets
/// and FEC blocks sent during the quantum, counted edge-ward after the
/// feedback delay. All plain counts — the control law never needs a
/// denominator, so a quantum is meaningful at any send rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WanFeedback {
    /// Packets the channel's loss model erased — corruption-style loss,
    /// *not* congestion; see [`WanFeedback::congestion_dropped`].
    pub lost: u64,
    /// Packets tail-dropped by the bottleneck queue. Kept apart from
    /// [`WanFeedback::lost`] because the control response differs: random
    /// erasure is FEC's job and sending slower does not reduce it, while
    /// congestion drops mean the offered load exceeds the link and the
    /// sender must back off *before* whole blocks start dying.
    pub congestion_dropped: u64,
    /// Packets delivered but ECN-marked: they arrived to a standing
    /// bottleneck queue. The earliest congestion signal — it fires while
    /// the queue still has headroom, before anything is dropped, so the
    /// sender can back off without paying for the lesson in lost blocks.
    pub marked: u64,
    /// Packets that arrived out of order.
    pub reordered: u64,
    /// Blocks delivered only thanks to FEC recovery.
    pub recovered: u64,
    /// Blocks lost beyond FEC's repair capability.
    pub unrecoverable: u64,
    /// Payload bytes of delivered (or recovered) blocks.
    pub delivered_bytes: u64,
}

/// The floor of the WAN target factor: a collapsed channel still samples
/// at one fifth of the requested rate rather than going dark.
pub const MIN_WAN_FACTOR: f64 = 0.2;

/// Multiplicative decrease applied per quantum with unrecoverable blocks.
const WAN_DECREASE: f64 = 0.7;
/// Feedback quanta to hold after a multiplicative decrease before another
/// one may fire. The edge controllers need several quanta of observations
/// to actually shed load after the factor drops; without this hold-off a
/// single overload episode triggers a decrease *per quantum* while the
/// queue drains, slamming the factor to the floor long before the edge
/// had a chance to react — the WAN analogue of TCP's one window
/// reduction per round trip.
pub const WAN_MD_HOLDOFF_QUANTA: u64 = 10;
/// Additive increase per clean quantum (no loss at all). Deliberately
/// gentle: congestion is detected by an *integral* signal (the standing
/// queue crossing the ECN threshold), so a fast probe overshoots far past
/// the link rate before the queue can say so, and every AIMD cycle peak
/// then rides the backlog into the drop bound. Probing at 0.02/quantum
/// keeps the overshoot inside the queue's headroom.
const WAN_INCREASE: f64 = 0.02;
/// Slow creep per quantum where FEC repaired everything the channel lost
/// — the channel is coping, probe upward gently.
const WAN_CREEP: f64 = 0.005;

/// Fixed-point scale of the shared factor (parts per million).
const WAN_PPM: f64 = 1e6;

/// A shared WAN target factor: the AIMD state one uplink's feedback loop
/// writes and every coupled [`RateController`] reads.
///
/// Quanta with unrecoverable blocks, congestion drops *or* ECN marks
/// multiply the factor by 0.7 (clamped at [`MIN_WAN_FACTOR`]) — marks
/// back the sender off while the queue and FEC are still absorbing the
/// damage, before blocks die. Clean quanta add 0.02 back (clamped at
/// 1.0); quanta whose random losses FEC fully repaired creep up by 0.005
/// — erasure loss is not a back-off signal, since sending slower does
/// not reduce it.
/// Under a congested channel this is classic AIMD: the factor oscillates
/// just under the rate the link can carry. Decreases are rate-limited to
/// one per [`WAN_MD_HOLDOFF_QUANTA`] quanta so a single queue-drain
/// episode cannot cascade into a collapse (see [`WanSignal::apply`]). The
/// factor is stored as parts per million in one atomic, so readers on the
/// per-frame decision path pay a single relaxed load.
pub struct WanSignal {
    factor_ppm: AtomicU64,
    /// Quanta left before the next multiplicative decrease may fire.
    /// Written only by the (single) feedback loop; plain load/store is
    /// enough.
    md_holdoff: AtomicU64,
}

impl WanSignal {
    /// A signal at factor 1.0 (no WAN pressure).
    pub fn new() -> Self {
        Self {
            factor_ppm: AtomicU64::new(WAN_PPM as u64),
            md_holdoff: AtomicU64::new(0),
        }
    }

    /// The current target factor in `[MIN_WAN_FACTOR, 1]`.
    pub fn factor(&self) -> f64 {
        self.factor_ppm.load(Ordering::Relaxed) as f64 / WAN_PPM
    }

    /// Folds in one feedback quantum; returns the updated factor.
    ///
    /// At most one multiplicative decrease fires per
    /// [`WAN_MD_HOLDOFF_QUANTA`]-quantum window: congested quanta inside
    /// the window hold the factor steady (the previous decrease is still
    /// propagating to the edge), while increases are never held — a clean
    /// quantum means the episode is over.
    pub fn apply(&self, fb: &WanFeedback) -> f64 {
        let f = self.factor();
        let holdoff = self.md_holdoff.load(Ordering::Relaxed);
        if holdoff > 0 {
            self.md_holdoff.store(holdoff - 1, Ordering::Relaxed);
        }
        let congested = fb.unrecoverable > 0 || fb.congestion_dropped > 0 || fb.marked > 0;
        let next = if congested && holdoff == 0 {
            self.md_holdoff
                .store(WAN_MD_HOLDOFF_QUANTA, Ordering::Relaxed);
            (f * WAN_DECREASE).max(MIN_WAN_FACTOR)
        } else if congested {
            f
        } else if fb.lost > 0 || fb.recovered > 0 {
            (f + WAN_CREEP).min(1.0)
        } else {
            (f + WAN_INCREASE).min(1.0)
        };
        self.factor_ppm
            .store((next * WAN_PPM).round() as u64, Ordering::Relaxed);
        next
    }

    /// Resets the factor to 1.0 (e.g. between experiment configurations).
    pub fn reset(&self) {
        self.factor_ppm.store(WAN_PPM as u64, Ordering::Relaxed);
        self.md_holdoff.store(0, Ordering::Relaxed);
    }
}

impl Default for WanSignal {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for WanSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WanSignal")
            .field("factor", &self.factor())
            .finish()
    }
}

/// The process-wide WAN signal every [`RateController::new`] couples to.
/// Stays at factor 1.0 (no effect) until a WAN feedback loop writes it.
pub fn wan_signal() -> &'static Arc<WanSignal> {
    static SIGNAL: OnceLock<Arc<WanSignal>> = OnceLock::new();
    SIGNAL.get_or_init(|| Arc::new(WanSignal::new()))
}

/// Retargets a change-score threshold on-line so that the keep rate tracks
/// a requested sampling rate, with no offline calibration pass.
///
/// Per score the controller (1) thresholds at the running
/// `(1 - target)`-quantile plus a bias term, (2) folds the score into the
/// [`P2Quantile`] and the keep decision into an achieved-rate [`Ewma`], and
/// (3) nudges the bias by a stochastic-approximation step proportional to
/// `(kept - target)` and the score spread — so persistent over-sampling
/// raises the threshold and under-sampling lowers it even when the quantile
/// estimate is biased or the stream drifts.
///
/// ```
/// use sieve_core::adapt::RateController;
///
/// let mut rc = RateController::new(0.2).unwrap();
/// // A deterministic stationary stream with distinct scores.
/// let mut kept = 0;
/// for i in 0..2000u64 {
///     let score = ((i.wrapping_mul(2654435761)) % 1000) as f64;
///     if rc.observe(score) {
///         kept += 1;
///     }
/// }
/// let rate = kept as f64 / 2000.0;
/// assert!((rate - 0.2).abs() < 0.05, "achieved {rate}");
/// ```
#[derive(Debug, Clone)]
pub struct RateController {
    target: f64,
    quantile: P2Quantile,
    rate: Ewma,
    spread: Ewma,
    bias: f64,
    gain: f64,
    observed: u64,
    kept: u64,
    /// Running integral of the *effective* target over observations: the
    /// keep-debt baseline, so WAN tightening retargets the cumulative rate
    /// too, not just the per-frame indicator.
    target_integral: f64,
    /// The WAN factor as of the last observation, for the feed-forward
    /// threshold jump when the factor moves.
    last_factor: f64,
    wan: Arc<WanSignal>,
    stats: AdaptStats,
}

/// Pre-resolved handles into the global `"adapt"` stage, shared by every
/// controller in the process (the registry aggregates across streams).
#[derive(Debug, Clone)]
struct AdaptStats {
    observed: Arc<Counter>,
    kept: Arc<Counter>,
    forced_keeps: Arc<Counter>,
}

impl AdaptStats {
    fn resolve() -> Self {
        let stage = sieve_stats::global().stage("adapt");
        Self {
            observed: stage.contended_counter("observed"),
            kept: stage.contended_counter("kept"),
            forced_keeps: stage.contended_counter("forced_keeps"),
        }
    }
}

impl RateController {
    /// A controller targeting `target` (fraction of frames kept) in
    /// `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::Selector`] for a target outside `(0, 1]`.
    pub fn new(target: f64) -> Result<Self, SieveError> {
        Self::with_wan_signal(target, wan_signal().clone())
    }

    /// [`RateController::new`], coupled to `signal` instead of the
    /// process-wide [`wan_signal`] — for tests and side-by-side A/B runs
    /// that must not share WAN state.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::Selector`] for a target outside `(0, 1]`.
    pub fn with_wan_signal(target: f64, signal: Arc<WanSignal>) -> Result<Self, SieveError> {
        if !(target > 0.0 && target <= 1.0) {
            return Err(SieveError::selector(format!(
                "target sampling rate {target} outside (0, 1]"
            )));
        }
        let last_factor = signal.factor();
        Ok(Self {
            target,
            quantile: P2Quantile::new(1.0 - target),
            rate: Ewma::new(0.02),
            spread: Ewma::new(0.05),
            bias: 0.0,
            gain: 0.04,
            observed: 0,
            kept: 0,
            target_integral: 0.0,
            last_factor,
            wan: signal,
            stats: AdaptStats::resolve(),
        })
    }

    /// The requested sampling rate.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The rate the controller is steering toward right now: the requested
    /// target scaled by the coupled [`WanSignal`]'s factor. Equal to
    /// [`RateController::target`] while the WAN is healthy.
    pub fn effective_target(&self) -> f64 {
        self.target * self.wan.factor()
    }

    /// Folds one WAN feedback quantum into the coupled signal — the
    /// edge-ward half of the `sieve-net` feedback loop. Sustained
    /// unrecoverable loss tightens [`RateController::effective_target`];
    /// clean quanta ease it back toward the requested target.
    pub fn apply_wan_feedback(&mut self, fb: &WanFeedback) {
        self.wan.apply(fb);
    }

    /// The threshold the next score will be compared against. Before any
    /// score arrives it is `-inf`-like (everything is kept while the
    /// distribution is unknown — shipping an extra frame is recoverable,
    /// losing an early event is not).
    pub fn threshold(&self) -> f64 {
        match self.quantile.estimate() {
            None => f64::NEG_INFINITY,
            Some(q) => q + self.bias,
        }
    }

    /// Feed-forward for WAN factor moves: when the effective target jumps,
    /// shift the threshold immediately by the exponential-tail estimate of
    /// the quantile displacement — moving the keep rate from `r` to `r'`
    /// takes a threshold shift of `spread × ln(r / r')` under an
    /// exponential upper tail — instead of waiting for the
    /// stochastic-approximation loop to walk there one small step per
    /// frame. The SA loop then corrects whatever the tail model got wrong.
    /// Without this the edge lags the WAN signal by seconds of
    /// observations, and a congestion back-off only reaches the wire after
    /// the queue has already paid for the delay in dropped packets.
    fn feed_forward(&mut self) {
        let factor = self.wan.factor();
        if (factor - self.last_factor).abs() < 1e-12 {
            return;
        }
        let scale = self.spread.value_or(0.0);
        if scale > 0.0 && factor > 0.0 && self.last_factor > 0.0 {
            self.bias += scale * (self.last_factor / factor).ln();
        }
        self.last_factor = factor;
    }

    /// Observes one change score and decides whether to keep the frame,
    /// updating every running statistic.
    pub fn observe(&mut self, score: f64) -> bool {
        self.feed_forward();
        let keep = score > self.threshold();
        self.observed += 1;
        self.stats.observed.inc();
        if keep {
            self.kept += 1;
            self.stats.kept.inc();
        }
        self.rate.update(if keep { 1.0 } else { 0.0 });
        let base = self.quantile.estimate().unwrap_or(score);
        self.spread.update((score - base).abs());
        self.quantile.insert(score);
        // Stochastic-approximation correction: scale the step by the score
        // spread so the controller is unit-free, with a decaying gain —
        // strong corrections while the quantile estimate is still coarse
        // (shortening the start-up transient), settling to a small
        // steady-state gain that keeps tracking drift.
        let decay = 10.0 / (1.0 + self.observed as f64 / 8.0);
        let gain = self.gain * decay.max(1.0);
        // Scale floor: a constant-score stream has zero spread, and a
        // subnormal step would be absorbed by the `quantile + bias`
        // rounding — freezing the controller. Floor at a ppm of the score
        // scale so even degenerate streams keep a live control loop.
        let scale = self
            .spread
            .value_or(0.0)
            .max(1e-6 * base.abs())
            .max(f64::MIN_POSITIVE);
        let step = gain * scale;
        // Two error terms: the per-frame indicator is the unbiased
        // stochastic gradient, and a bounded integral term on the *keep
        // debt* (frames kept beyond `target × observed`) repays transient
        // overshoot — e.g. a level shift the cumulative quantile absorbs
        // slowly — so the cumulative sampling rate, not just the recent
        // one, converges to the target.
        let target = self.effective_target();
        self.target_integral += target;
        let indicator = if keep { 1.0 } else { 0.0 } - target;
        let debt = self.kept as f64 - self.target_integral;
        self.bias += step * (indicator + (debt / 8.0).clamp(-1.0, 1.0));
        keep
    }

    /// Records a frame kept unconditionally (e.g. the first frame of a
    /// stream): it counts toward the achieved rate but carries no score.
    pub fn note_forced_keep(&mut self) {
        self.observed += 1;
        self.kept += 1;
        self.target_integral += self.effective_target();
        self.stats.observed.inc();
        self.stats.kept.inc();
        self.stats.forced_keeps.inc();
        self.rate.update(1.0);
    }

    /// Frames observed so far (decided or forced).
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Fraction of observed frames kept, over the whole stream so far.
    pub fn achieved_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.kept as f64 / self.observed as f64
        }
    }

    /// Exponentially smoothed recent keep rate (tracks drift faster than
    /// [`RateController::achieved_rate`]).
    pub fn smoothed_rate(&self) -> f64 {
        self.rate.value_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-uniform stream in [0, 1).
    fn uniform(seed: u64, i: u64) -> f64 {
        let mut z = seed
            .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0x1234_5678);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn ewma_tracks_mean() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(0.0);
        assert_eq!(e.value(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn p2_matches_empirical_quantile_on_uniform() {
        for &p in &[0.1, 0.5, 0.9, 0.95] {
            let mut q = P2Quantile::new(p);
            for i in 0..20_000u64 {
                q.insert(uniform(7, i));
            }
            let est = q.estimate().unwrap();
            assert!(
                (est - p).abs() < 0.03,
                "P2({p}) on uniform gave {est}, expected ~{p}"
            );
        }
    }

    #[test]
    fn p2_small_sample_prefix_is_empirical() {
        let mut q = P2Quantile::new(0.5);
        assert_eq!(q.estimate(), None);
        for &x in &[5.0, 1.0, 3.0] {
            q.insert(x);
        }
        assert_eq!(q.estimate(), Some(3.0), "median of {{1, 3, 5}}");
    }

    #[test]
    fn p2_handles_constant_stream() {
        let mut q = P2Quantile::new(0.9);
        for _ in 0..1000 {
            q.insert(42.0);
        }
        assert_eq!(q.estimate(), Some(42.0));
    }

    #[test]
    fn controller_rejects_bad_targets() {
        assert!(RateController::new(0.0).is_err());
        assert!(RateController::new(1.5).is_err());
        assert!(RateController::new(-0.1).is_err());
        assert!(RateController::new(1.0).is_ok());
    }

    #[test]
    fn controller_converges_on_stationary_streams() {
        // Exponential-ish and uniform stationary streams, several targets:
        // the tail keep rate must land within ±20% of the target.
        for &target in &[0.05, 0.1, 0.3] {
            for seed in 0..3u64 {
                let mut rc = RateController::new(target).unwrap();
                let n = 6000u64;
                let tail_from = n / 2;
                let mut tail_kept = 0u64;
                for i in 0..n {
                    let u = uniform(seed, i);
                    // Mixture: mostly small "background" scores, occasional
                    // heavy-tail spikes — the shape of real MSE streams.
                    let score = if u < 0.9 { u } else { 10.0 + 100.0 * (u - 0.9) };
                    let keep = rc.observe(score);
                    if keep && i >= tail_from {
                        tail_kept += 1;
                    }
                }
                let rate = tail_kept as f64 / (n - tail_from) as f64;
                assert!(
                    (rate - target).abs() <= 0.2 * target + 0.005,
                    "target {target} seed {seed}: tail rate {rate}"
                );
            }
        }
    }

    #[test]
    fn controller_adapts_to_drift() {
        // The score scale grows 10x halfway; the controller must re-center.
        let mut rc = RateController::new(0.1).unwrap();
        let n = 8000u64;
        let mut late_kept = 0u64;
        for i in 0..n {
            let scale = if i < n / 2 { 1.0 } else { 10.0 };
            let keep = rc.observe(scale * uniform(3, i));
            if keep && i >= 3 * n / 4 {
                late_kept += 1;
            }
        }
        let rate = late_kept as f64 / (n / 4) as f64;
        assert!(
            (rate - 0.1).abs() <= 0.03,
            "post-drift rate {rate} strayed from 0.1"
        );
    }

    #[test]
    fn controller_does_not_freeze_on_constant_scores() {
        // Zero spread must not zero out the control loop: on a perfectly
        // constant stream the threshold dithers around the tied value and
        // the cumulative rate still tracks the target (bang-bang control).
        for &c in &[42.0, 1e6] {
            let mut rc = RateController::new(0.1).unwrap();
            let n = 6000u64;
            let mut kept = 0u64;
            for _ in 0..n {
                if rc.observe(c) {
                    kept += 1;
                }
            }
            let rate = kept as f64 / n as f64;
            assert!(
                (rate - 0.1).abs() <= 0.05,
                "constant-score ({c}) stream achieved {rate}, want ~0.1"
            );
        }
    }

    #[test]
    fn forced_keeps_count_toward_achieved_rate() {
        let mut rc = RateController::new(0.5).unwrap();
        rc.note_forced_keep();
        assert_eq!(rc.observed(), 1);
        assert!((rc.achieved_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wan_signal_aimd_law() {
        let s = WanSignal::new();
        assert!((s.factor() - 1.0).abs() < 1e-9);
        // Unrecoverable loss: multiplicative decrease down to the floor.
        let bad = WanFeedback {
            unrecoverable: 3,
            lost: 10,
            ..WanFeedback::default()
        };
        s.apply(&bad);
        assert!((s.factor() - 0.7).abs() < 1e-6);
        // A second congested quantum inside the hold-off window must NOT
        // decrease again — the first decrease is still propagating.
        s.apply(&bad);
        assert!((s.factor() - 0.7).abs() < 1e-6, "held during MD hold-off");
        // Persistent congestion still walks the factor to the floor, one
        // decrease per hold-off window.
        for _ in 0..100 {
            s.apply(&bad);
        }
        assert!((s.factor() - MIN_WAN_FACTOR).abs() < 1e-6, "floored");
        // FEC coping (loss but fully recovered): slow upward creep.
        let coping = WanFeedback {
            lost: 5,
            recovered: 2,
            ..WanFeedback::default()
        };
        let before = s.factor();
        s.apply(&coping);
        assert!((s.factor() - before - 0.005).abs() < 1e-6);
        // Clean quanta: additive increase back to 1.0.
        for _ in 0..60 {
            s.apply(&WanFeedback::default());
        }
        assert!((s.factor() - 1.0).abs() < 1e-9, "recovered to 1.0");
        // Congestion drops back off even when FEC kept every block alive:
        // the queue is already overflowing, waiting for dead blocks would
        // react a whole FEC group too late.
        s.apply(&WanFeedback {
            congestion_dropped: 1,
            recovered: 1,
            ..WanFeedback::default()
        });
        assert!(
            (s.factor() - 0.7).abs() < 1e-6,
            "congestion is an MD signal"
        );
        s.apply(&bad);
        s.reset();
        assert!((s.factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn controller_effective_target_follows_its_signal() {
        let signal = Arc::new(WanSignal::new());
        let mut rc = RateController::with_wan_signal(0.3, signal.clone()).unwrap();
        assert!((rc.effective_target() - 0.3).abs() < 1e-12);
        rc.apply_wan_feedback(&WanFeedback {
            unrecoverable: 1,
            ..WanFeedback::default()
        });
        assert!((rc.effective_target() - 0.3 * 0.7).abs() < 1e-6);
        assert!(
            (rc.target() - 0.3).abs() < 1e-12,
            "requested target is unchanged"
        );
        // A second controller on the same signal sees the same pressure.
        let rc2 = RateController::with_wan_signal(0.1, signal).unwrap();
        assert!((rc2.effective_target() - 0.1 * 0.7).abs() < 1e-6);
    }

    mod properties {
        use super::super::P2Quantile;
        use proptest::prelude::*;

        /// Fraction of `sorted` at or below `x`: where the estimate lands
        /// in the *exact* empirical distribution.
        fn empirical_rank(sorted: &[f64], x: f64) -> f64 {
            sorted.partition_point(|&v| v <= x) as f64 / sorted.len() as f64
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// On any random score stream — flat or heavy-tailed, the two
            /// shapes real change-score streams take — the P² estimate of
            /// the p-quantile must sit within a few rank percent of the
            /// exact empirical quantile of the same stream.
            #[test]
            fn p2_tracks_exact_empirical_quantile(
                raw in proptest::collection::vec(0.0f64..1.0, 1500..3000),
                p in 0.05f64..0.9,
                heavy_tail in 0u8..2,
            ) {
                // `heavy_tail` stretches the top decile by ~1000x, the
                // spike shape of MSE scores at scene cuts.
                let scores: Vec<f64> = raw
                    .iter()
                    .map(|&u| {
                        if heavy_tail == 1 && u > 0.9 {
                            10.0 + 1000.0 * (u - 0.9)
                        } else {
                            u
                        }
                    })
                    .collect();
                let mut q = P2Quantile::new(p);
                for &s in &scores {
                    q.insert(s);
                }
                let est = q.estimate().expect("stream was non-empty");
                let mut sorted = scores;
                sorted.sort_by(f64::total_cmp);
                let rank = empirical_rank(&sorted, est);
                prop_assert!(
                    (rank - p).abs() <= 0.08,
                    "P2({p}) over {} samples (heavy_tail={heavy_tail}) \
                     estimated {est}, which sits at empirical rank {rank}",
                    sorted.len()
                );
            }
        }
    }
}
