//! # sieve-core — the SiEVE system
//!
//! The paper's primary contribution, built on the substrates in the sibling
//! crates:
//!
//! * [`tuner`] — offline grid search over (GOP size, scenecut threshold)
//!   maximizing the F1 of event-detection accuracy and filtering rate
//!   (the paper's Fig 2 procedure);
//! * [`lookup`] — the per-camera tuned-parameter table;
//! * [`seeker`] — the I-frame seeker (metadata scan, independent decode);
//! * [`select`] — the streaming selection layer: [`FrameSelector`]
//!   factories, incremental [`SelectorSession`]s, trait-owned
//!   [`SelectorCost`] models and batched calibration;
//! * [`adapt`] — on-line threshold adaptation (EWMA, P² streaming
//!   quantile, the [`RateController`] behind `Budget::TargetRate`);
//! * [`metrics`] — accuracy / filtering rate / F1 with label propagation;
//! * [`events`] — the analysis path producing `(frame, labels)` tuples;
//! * [`pipeline`] — end-to-end simulation of the five Fig 4/5 baselines on
//!   the 3-tier topology.
//!
//! ## Quickstart
//!
//! ```
//! use sieve_core::{analyze_sieve, score_encoding, IFrameSeeker};
//! use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
//! use sieve_nn::OracleDetector;
//! use sieve_video::{EncodedVideo, EncoderConfig};
//!
//! // A tiny synthetic camera feed with ground truth.
//! let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
//! // Semantic encoding: long GOP, sensitive scenecut.
//! let encoded = EncodedVideo::encode(video.resolution(), video.fps(),
//!                                    EncoderConfig::new(300, 200), video.frames());
//! // Analyse by decoding I-frames only.
//! let mut nn = OracleDetector::for_video(&video);
//! let result = analyze_sieve(&encoded, &mut nn).unwrap();
//! assert!(result.sampling_rate() < 0.2);
//! let quality = score_encoding(&encoded, video.labels());
//! assert!(quality.accuracy > 0.8);
//! ```

pub mod adapt;
pub mod error;
pub mod events;
pub mod live;
pub mod lookup;
pub mod metrics;
pub mod pipeline;
pub mod reencode;
pub mod seeker;
pub mod select;
pub mod store;
pub mod tuner;

pub use adapt::{wan_signal, Ewma, P2Quantile, RateController, WanFeedback, WanSignal};
pub use error::SieveError;
pub use events::{analyze, analyze_selected, analyze_sieve, AnalysisResult};
pub use live::{run_live_analysis, EdgeOutcome, EdgeSession, LiveAnalysis, LiveConfig};
pub use lookup::LookupTable;
pub use metrics::{f1_score, label_accuracy, propagate_labels, score_selection, DetectionQuality};
pub use pipeline::{
    simulate_all, simulate_baseline, Baseline, BaselineOutcome, BaselineSpec, Deployment,
    SelectorKind, VideoWorkload, WorkloadCosts,
};
pub use reencode::{reencode_semantic, ReencodeStats};
pub use seeker::{ByteStreamSeeker, IFrameSeeker};
pub use select::{
    CalibrationCurve, CalibrationPoint, Decision, EncodedFrameMeta, FixedSelector, FrameSelector,
    IFrameSelector, SelectorCost, SelectorSession,
};
pub use store::{EventSeeker, ResultStore, ResultTuple};
pub use tuner::{score_encoding, tune, ConfigGrid, ConfigScore, TuningOutcome};
