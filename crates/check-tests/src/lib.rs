//! Model-check invariant suite for the SiEVE runtime. The tests live in
//! `tests/`; run them with:
//!
//! ```text
//! cargo test -p sieve-check-tests --features model-check
//! ```
//!
//! Without `--features model-check` the suite compiles against the
//! uninstrumented facade and the model tests are skipped at compile time.
