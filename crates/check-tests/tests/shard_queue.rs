//! Model-check invariants of `sieve_simnet::ShardQueue` — the real queue,
//! routed through the instrumented `sync` facade, explored across thread
//! interleavings by `sieve-check`.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use sieve_check::{model, Checker};
use sieve_simnet::sync::atomic::{AtomicUsize, Ordering};
use sieve_simnet::sync::thread;
use sieve_simnet::{Popped, PushOutcome, ShardQueue};

/// Two producers racing one worker: every queued frame reaches the worker
/// exactly once (none lost, none double-drained), and the drain loop
/// terminates under every schedule.
#[test]
fn no_frame_lost_or_double_drained() {
    let report = Checker::new().max_dfs_executions(6000).check(|| {
        let q = Arc::new(ShardQueue::<u64>::new(4));
        q.open_lane(1);
        q.open_lane(2);
        let producers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|lane| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..2u64 {
                        assert_eq!(q.try_push(lane, lane * 10 + i), PushOutcome::Queued);
                    }
                    q.close_lane(lane);
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        let mut finished = 0;
        while finished < 2 {
            match q.pop() {
                Some(Popped::Item(_, v)) => seen.push(v),
                Some(Popped::LaneFinished(_)) => finished += 1,
                None => break,
            }
        }
        for h in producers {
            h.join().expect("producer ok");
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11, 20, 21], "lost or duplicated frame");
    });
    assert!(
        report.executions >= 1000,
        "expected >= 1000 interleavings, explored {}",
        report.executions
    );
}

/// A producer opening/closing a fresh lane while the worker drains: the
/// late-joining lane is never orphaned (its items and LaneFinished still
/// arrive) and the loop never deadlocks.
#[test]
fn lane_join_racing_drain_is_never_orphaned() {
    let report = model(|| {
        let q = Arc::new(ShardQueue::<u64>::new(2));
        q.open_lane(1);
        q.try_push(1, 100);
        q.close_lane(1);
        let joiner = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                assert!(q.open_lane(2), "queue not shut down yet");
                assert_eq!(q.try_push(2, 200), PushOutcome::Queued);
                q.close_lane(2);
            })
        };
        let mut items = Vec::new();
        let mut finished = Vec::new();
        while finished.len() < 2 {
            match q.pop() {
                Some(Popped::Item(k, v)) => items.push((k, v)),
                Some(Popped::LaneFinished(k)) => finished.push(k),
                None => break,
            }
        }
        joiner.join().expect("joiner ok");
        items.sort_unstable();
        finished.sort_unstable();
        assert_eq!(items, vec![(1, 100), (2, 200)], "orphaned item");
        assert_eq!(finished, vec![1, 2], "orphaned lane");
    });
    assert!(report.executions > 1);
}

/// `shutdown` racing a blocked worker and an in-flight producer: `pop`
/// always returns `None` eventually — the worker's exit signal can neither
/// be lost nor delivered before queued items drain.
#[test]
fn shutdown_always_terminates_the_worker() {
    let report = model(|| {
        let q = Arc::new(ShardQueue::<u64>::new(2));
        q.open_lane(1);
        let worker = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut drained = 0u64;
                loop {
                    match q.pop() {
                        Some(Popped::Item(_, _)) => drained += 1,
                        Some(Popped::LaneFinished(_)) => {}
                        None => return drained,
                    }
                }
            })
        };
        // Push racing the worker, then shut down; the worker must exit.
        let pushed = u64::from(q.try_push(1, 7) == PushOutcome::Queued);
        q.shutdown();
        let drained = worker.join().expect("worker exits");
        assert_eq!(drained, pushed, "queued item lost across shutdown");
    });
    assert!(report.executions > 1);
}

/// Two workers draining one queue concurrently: items are still delivered
/// exactly once in total (the multi-popper contract of the module docs).
#[test]
fn concurrent_poppers_never_duplicate_items() {
    let report = Checker::new().check(|| {
        let q = Arc::new(ShardQueue::<u64>::new(4));
        q.open_lane(1);
        for i in 0..2u64 {
            assert_eq!(q.try_push(1, i), PushOutcome::Queued);
        }
        q.close_lane(1);
        q.shutdown();
        let total = Arc::new(AtomicUsize::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                let total = Arc::clone(&total);
                thread::spawn(move || {
                    while let Some(p) = q.pop() {
                        if matches!(p, Popped::Item(_, _)) {
                            total.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().expect("worker ok");
        }
        assert_eq!(total.load(Ordering::SeqCst), 2, "item lost or duplicated");
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}
