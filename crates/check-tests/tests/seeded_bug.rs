//! The mutation test that tests the checker itself: building with
//! `RUSTFLAGS="--cfg sieve_check_seeded_bug"` re-introduces a known race in
//! `ShardQueue::pop` (the lock is dropped between observing a drained
//! closed lane and removing it, so two poppers can both deliver
//! `LaneFinished` for the same lane). The checker must find that race
//! within its interleaving budget — otherwise the whole model-check suite
//! is vacuous.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use sieve_check::Checker;
use sieve_simnet::sync::atomic::{AtomicUsize, Ordering};
use sieve_simnet::sync::thread;
use sieve_simnet::{Popped, ShardQueue};

/// Two poppers racing over one drained closed lane; correct code delivers
/// `LaneFinished` exactly once.
fn double_finish_model() {
    let q = Arc::new(ShardQueue::<u8>::new(2));
    q.open_lane(1);
    q.close_lane(1);
    q.shutdown();
    let finishes = Arc::new(AtomicUsize::new(0));
    let poppers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            let finishes = Arc::clone(&finishes);
            thread::spawn(move || {
                while let Some(p) = q.pop() {
                    if matches!(p, Popped::LaneFinished(_)) {
                        finishes.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for h in poppers {
        h.join().expect("popper ok");
    }
    assert_eq!(
        finishes.load(Ordering::SeqCst),
        1,
        "LaneFinished delivered more than once"
    );
}

#[cfg(sieve_check_seeded_bug)]
#[test]
fn checker_catches_the_seeded_double_finish_race() {
    let report = Checker::new().check(double_finish_model);
    let v = report.violation.unwrap_or_else(|| {
        panic!(
            "checker missed the seeded race ({} executions)",
            report.executions
        )
    });
    assert!(
        v.message.contains("LaneFinished"),
        "found a different violation: {v}"
    );
}

#[cfg(not(sieve_check_seeded_bug))]
#[test]
fn unmutated_queue_delivers_lane_finished_exactly_once() {
    let report = Checker::new().check(double_finish_model);
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.complete, "this small space should be exhausted");
}
