//! Model-check invariants of the `sieve-fleet` scheduler — a real `Fleet`
//! (worker threads, registry, global budget, per-stream counters) explored
//! across thread interleavings. Frames are pushed as P-frames so the
//! `IFrameSelector` policy drops them on metadata alone: the decision
//! path, counters and queue discipline are all exercised without decode
//! work inflating the state space.
#![cfg(feature = "model-check")]

use sieve_check::Checker;
use sieve_core::IFrameSelector;
use sieve_fleet::StreamConfig;
use sieve_fleet::{Fleet, FleetConfig, FramePacket, Ingest, ShedCause};
use sieve_video::{FrameType, Resolution};

fn packet(index: usize) -> FramePacket {
    FramePacket {
        index,
        frame_type: FrameType::P,
        payload: vec![0u8; 4],
    }
}

fn stream_config() -> StreamConfig {
    StreamConfig::new("model", Resolution::new(16, 16), 50)
}

/// `join` → pushes racing the shard drain loop → `leave` → `shutdown`:
/// never deadlocks, never orphans the stream (its session is always
/// flushed), and every pushed frame is either processed or shed — exactly
/// once.
#[test]
fn join_leave_racing_drain_never_orphans_a_stream() {
    let report = Checker::new()
        .max_dfs_executions(400)
        .random_executions(100)
        .check(|| {
            let fleet = Fleet::new(FleetConfig {
                shards: 1,
                queue_capacity: 2,
                global_frame_budget: 4,
                max_streams: 2,
                ..FleetConfig::default()
            });
            let selector = IFrameSelector::new();
            let id = fleet.join(&selector, stream_config()).expect("admitted");
            let mut shed = 0u64;
            for i in 0..2 {
                match fleet.push(id, packet(i)).expect("stream open") {
                    Ingest::Queued => {}
                    Ingest::Shed(_) => shed += 1,
                }
            }
            fleet.leave(id).expect("first leave succeeds");
            let report = fleet.shutdown();
            let s = &report.snapshot.streams[0];
            assert!(s.done, "stream orphaned: session never flushed");
            assert_eq!(
                s.processed + s.shed,
                2,
                "frame lost or double-counted (processed={} shed={})",
                s.processed,
                s.shed
            );
            assert_eq!(s.shed, shed, "shed accounting disagrees with ingest");
            assert_eq!(s.processed, s.kept + s.dropped + s.failed);
            assert_eq!(s.queue_depth, 0, "depth counter leaked");
        });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}

/// Overload path: with a global budget of 1, pushes racing the worker's
/// budget release shed — and each shed frame is counted exactly once, on
/// exactly one cause, with the inflight gauge returning to zero.
#[test]
fn shed_accounting_never_double_counts() {
    let report = Checker::new()
        .max_dfs_executions(400)
        .random_executions(100)
        .check(|| {
            let fleet = Fleet::new(FleetConfig {
                shards: 1,
                queue_capacity: 2,
                global_frame_budget: 1,
                max_streams: 2,
                ..FleetConfig::default()
            });
            let selector = IFrameSelector::new();
            let id = fleet.join(&selector, stream_config()).expect("admitted");
            let mut shed = 0u64;
            for i in 0..3 {
                match fleet.push(id, packet(i)).expect("stream open") {
                    Ingest::Queued => {}
                    Ingest::Shed(ShedCause::GlobalBudget | ShedCause::QueueFull) => shed += 1,
                }
            }
            fleet.leave(id).expect("leave");
            let report = fleet.shutdown();
            let s = &report.snapshot.streams[0];
            assert_eq!(s.shed, shed, "shed double- or under-counted");
            assert_eq!(s.processed + s.shed, 3, "frame lost");
            assert_eq!(report.snapshot.aggregate.queue_depth, 0);
        });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}

/// Shutdown with frames still queued and a stream never explicitly left:
/// always terminates (workers join), and the implicit close still flushes
/// the session.
#[test]
fn shutdown_always_terminates_and_flushes() {
    let report = Checker::new()
        .max_dfs_executions(400)
        .random_executions(100)
        .check(|| {
            let fleet = Fleet::new(FleetConfig {
                shards: 1,
                queue_capacity: 2,
                global_frame_budget: 4,
                max_streams: 2,
                ..FleetConfig::default()
            });
            let selector = IFrameSelector::new();
            let id = fleet.join(&selector, stream_config()).expect("admitted");
            let _ = fleet.push(id, packet(0)).expect("stream open");
            // No leave(): shutdown itself must close, drain and flush.
            let report = fleet.shutdown();
            let s = &report.snapshot.streams[0];
            assert!(s.done, "shutdown left the session unflushed");
            assert_eq!(s.processed + s.shed, 1);
        });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}
