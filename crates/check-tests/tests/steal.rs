//! Model-check the work-stealing protocol of `sieve_simnet::ShardQueue` —
//! the guarded-pop / steal-half / lane-busy claim that `sieve-fleet`'s
//! scheduler is built on — across thread interleavings with `sieve-check`.
//!
//! The invariants under test are the ones the fleet's correctness rests
//! on: **no frame lost**, **none double-drained**, **per-lane FIFO
//! processing order survives theft**, and **shutdown always terminates**
//! even with a thief mid-batch. A seeded TOCTOU double-steal bug
//! (`--cfg sieve_check_seeded_steal_bug`, see `ShardQueue::try_steal`)
//! mutates the protocol so two thieves can claim one lane concurrently;
//! the checker must find the resulting order violation — the mutation test
//! that keeps this suite honest.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use sieve_check::{model, Checker};
use sieve_simnet::sync::thread;
use sieve_simnet::sync::Mutex;
use sieve_simnet::{GuardedPop, PushOutcome, ShardQueue, Steal};

/// Drains `q` as its owning worker would: guarded pops, completing each
/// lane after recording, waiting when a thief holds everything busy.
/// Records `(lane, item)` into `log`; returns the LaneFinished count.
fn owner_drain(q: &ShardQueue<u64>, log: &Mutex<Vec<(u64, u64)>>) -> usize {
    let mut finished = 0;
    loop {
        match q.try_pop_guarded() {
            GuardedPop::Item(key, v) => {
                log.lock().push((key, v));
                q.complete(key, None);
            }
            GuardedPop::LaneFinished(_) => finished += 1,
            GuardedPop::Empty => q.wait_for_work(),
            GuardedPop::Shutdown => return finished,
        }
    }
}

/// Steals from `q` until it reports empty: batches are recorded in order
/// and the lane released, exactly like the fleet's steal loop. Contended
/// retries are bounded — an unbounded spin is a livelock under the
/// checker, which may schedule the spinner forever. Leftovers after a
/// give-up are the owner's (or the model epilogue's) to drain.
fn thief_drain(q: &ShardQueue<u64>, log: &Mutex<Vec<(u64, u64)>>, max_items: usize) {
    let mut contended_budget = 3;
    loop {
        match q.try_steal(max_items) {
            Steal::Batch { key, items } => {
                for v in items {
                    log.lock().push((key, v));
                }
                q.complete(key, None);
            }
            Steal::Contended => {
                if contended_budget == 0 {
                    return;
                }
                contended_budget -= 1;
                thread::yield_now();
            }
            Steal::Empty => return,
        }
    }
}

/// Every lane's recorded processing sequence must be its push order.
fn assert_lane_fifo(log: &[(u64, u64)], lanes: &[u64]) {
    for &lane in lanes {
        let seq: Vec<u64> = log
            .iter()
            .filter(|(k, _)| *k == lane)
            .map(|&(_, v)| v)
            .collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        assert_eq!(seq, sorted, "lane {lane} processed out of order");
    }
}

/// A thief racing the owner's drain over two closed lanes: every item is
/// processed exactly once, per-lane FIFO order survives the theft, and
/// both workers terminate. This is the core stealing invariant, explored
/// over ≥1000 interleavings.
#[test]
fn steal_racing_owner_drain_loses_nothing() {
    let report = Checker::new().max_dfs_executions(20000).check(|| {
        let q = Arc::new(ShardQueue::<u64>::new(8));
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..4u64 {
            assert_eq!(q.try_push(1, i), PushOutcome::Queued);
        }
        for i in 10..12u64 {
            assert_eq!(q.try_push(2, i), PushOutcome::Queued);
        }
        q.close_lane(1);
        q.close_lane(2);
        q.shutdown();
        let log = Arc::new(Mutex::new(Vec::new()));
        let thieves: Vec<_> = (0..2)
            .map(|_| {
                let (q, log) = (Arc::clone(&q), Arc::clone(&log));
                thread::spawn(move || thief_drain(&q, &log, 1))
            })
            .collect();
        let finished = owner_drain(&q, &log);
        for h in thieves {
            h.join().expect("thief ok");
        }
        assert_eq!(finished, 2, "every closed lane finishes exactly once");
        let log = log.lock();
        let mut all: Vec<(u64, u64)> = log.clone();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![(1, 0), (1, 1), (1, 2), (1, 3), (2, 10), (2, 11)],
            "item lost or double-drained"
        );
        assert_lane_fifo(&log, &[1, 2]);
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(
        report.executions >= 1000,
        "expected >= 1000 interleavings, explored {}",
        report.executions
    );
}

/// A concurrent `leave()` (lane close) racing the thief and the owner: the
/// closing lane's items still arrive exactly once and its LaneFinished is
/// delivered exactly once — never while a thief holds the lane.
#[test]
fn steal_racing_concurrent_leave_is_exact() {
    let report = model(|| {
        let q = Arc::new(ShardQueue::<u64>::new(8));
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..2u64 {
            assert_eq!(q.try_push(1, i), PushOutcome::Queued);
        }
        assert_eq!(q.try_push(2, 10), PushOutcome::Queued);
        q.close_lane(2);
        let log = Arc::new(Mutex::new(Vec::new()));
        let thief = {
            let (q, log) = (Arc::clone(&q), Arc::clone(&log));
            thread::spawn(move || thief_drain(&q, &log, 2))
        };
        // The racing control plane: lane 1 leaves while both drains run.
        let leaver = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                assert!(q.close_lane(1), "lane 1 still open");
                q.shutdown();
            })
        };
        let finished = owner_drain(&q, &log);
        thief.join().expect("thief ok");
        leaver.join().expect("leaver ok");
        assert_eq!(finished, 2, "each left lane finishes exactly once");
        let log = log.lock();
        let mut all: Vec<(u64, u64)> = log.clone();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![(1, 0), (1, 1), (2, 10)],
            "leave() raced an item away (or duplicated one)"
        );
        assert_lane_fifo(&log, &[1, 2]);
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}

/// `shutdown()` fired while a thief is mid-batch: the owner's drain loop
/// still reaches `Shutdown` (the busy lane's finish is deferred, not
/// lost) and the thief terminates — under every schedule. The model
/// completing at all *is* the termination assertion.
#[test]
fn shutdown_terminates_with_thief_in_flight() {
    let report = model(|| {
        let q = Arc::new(ShardQueue::<u64>::new(8));
        q.open_lane(1);
        for i in 0..2u64 {
            assert_eq!(q.try_push(1, i), PushOutcome::Queued);
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let thief = {
            let (q, log) = (Arc::clone(&q), Arc::clone(&log));
            thread::spawn(move || thief_drain(&q, &log, 1))
        };
        // Shutdown races the theft (it closes every lane).
        q.shutdown();
        let finished = owner_drain(&q, &log);
        thief.join().expect("thief ok");
        assert_eq!(finished, 1, "the lane finishes exactly once");
        let mut all: Vec<(u64, u64)> = log.lock().clone();
        all.sort_unstable();
        assert_eq!(all, vec![(1, 0), (1, 1)], "shutdown lost a queued item");
    });
    assert!(
        report.violation.is_none(),
        "violation: {:?}",
        report.violation
    );
    assert!(report.executions > 1);
}

/// Two thieves over one deep lane. With the real protocol the lane-busy
/// claim serializes them (the second thief finds the lane claimed and
/// leaves); per-lane FIFO order is preserved under every schedule.
fn double_steal_model() {
    let q = Arc::new(ShardQueue::<u64>::new(8));
    q.open_lane(1);
    for i in 0..4u64 {
        assert_eq!(q.try_push(1, i), PushOutcome::Queued);
    }
    q.close_lane(1);
    q.shutdown();
    let log = Arc::new(Mutex::new(Vec::new()));
    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let (q, log) = (Arc::clone(&q), Arc::clone(&log));
            thread::spawn(move || thief_drain(&q, &log, 2))
        })
        .collect();
    for h in thieves {
        h.join().expect("thief ok");
    }
    // Thieves may give up (Contended budget, or the lane busy under the
    // other thief); the owner drains whatever is left, as in the fleet.
    let finished = owner_drain(&q, &log);
    assert_eq!(finished, 1, "the lane finishes exactly once");
    let log = log.lock();
    let mut all: Vec<u64> = log.iter().map(|&(_, v)| v).collect();
    all.sort_unstable();
    assert_eq!(all, vec![0, 1, 2, 3], "item lost or double-drained");
    assert_lane_fifo(&log, &[1]);
}

/// With `--cfg sieve_check_seeded_steal_bug`, `try_steal` re-introduces a
/// TOCTOU: the victim lane is selected under the lock, the lock is
/// dropped, and the drain re-locks without re-checking the busy claim —
/// two thieves can then process one lane concurrently, interleaving its
/// FIFO order. The checker must find that violation, or this whole suite
/// proves nothing.
#[cfg(sieve_check_seeded_steal_bug)]
#[test]
fn checker_catches_the_seeded_double_steal_race() {
    let report = Checker::new().check(double_steal_model);
    let v = report.violation.unwrap_or_else(|| {
        panic!(
            "checker missed the seeded double-steal race ({} executions)",
            report.executions
        )
    });
    assert!(
        v.message.contains("out of order") || v.message.contains("double-drained"),
        "found a different violation: {v}"
    );
}

/// Without the seeded bug the same model explores clean: the busy claim
/// makes a second concurrent thief impossible.
#[cfg(not(sieve_check_seeded_steal_bug))]
#[test]
fn unmutated_double_steal_model_explores_clean() {
    let report = Checker::new().check(double_steal_model);
    assert!(
        report.violation.is_none(),
        "unexpected violation: {:?}",
        report.violation
    );
    assert!(report.complete, "this small space should be exhausted");
}
