//! Instrumented synchronization primitives.
//!
//! Inside a model execution every operation is a scheduler decision point
//! (see `crate::rt`); outside one, each type behaves exactly like its
//! `std::sync` counterpart with `parking_lot`-style non-poisoning guards —
//! so a crate routed through a `sync` facade compiled against this module
//! still runs its ordinary tests and binaries unchanged.
//!
//! Modelled semantics (deliberate simplifications, documented here once):
//! * atomics are sequentially consistent at operation granularity — the
//!   checker explores interleavings, not weak memory orderings;
//! * `Condvar` has no spurious wakeups and `notify_one` wakes waiters in
//!   FIFO order;
//! * `RwLock` is exclusive under the model (readers serialize), which can
//!   only reduce the explored interleavings of reader-only sections, never
//!   miss a writer race.

use std::sync::{self as stdsync, TryLockError};

use crate::rt;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock: `std::sync::Mutex` semantics, non-poisoning
/// API, scheduler-visible inside a model execution.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: stdsync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the model-level lock (and
/// hits a decision point) on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<stdsync::MutexGuard<'a, T>>,
    model: Option<(std::sync::Arc<rt::Execution>, rt::Tid)>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: stdsync::Mutex::new(value),
        }
    }

    fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires the lock (a decision point under the model).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let model = rt::current();
        if let Some((ctx, me)) = &model {
            ctx.mutex_lock(*me, self.id());
        }
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            lock: self,
            inner: Some(inner),
            model,
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let model = rt::current();
        if let Some((ctx, me)) = &model {
            if !ctx.mutex_try_lock(*me, self.id()) {
                return None;
            }
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            return Some(MutexGuard {
                lock: self,
                inner: Some(inner),
                model,
            });
        }
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: Some(g),
                model: None,
            }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                lock: self,
                inner: Some(e.into_inner()),
                model: None,
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model-level release hands the
        // critical section to another thread.
        drop(self.inner.take());
        if let Some((ctx, me)) = &self.model {
            ctx.mutex_unlock(*me, self.lock.id());
        }
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable working with [`Mutex`]/[`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: stdsync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Atomically releases the guard's mutex and waits for a notification;
    /// the mutex is reacquired before returning. No spurious wakeups are
    /// modelled; callers must still use a predicate loop (real condvars do
    /// wake spuriously).
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        let model = guard.model.clone();
        let std_guard = guard.inner.take().expect("guard holds the lock");
        std::mem::forget(guard);
        match model {
            None => {
                let g = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|e| e.into_inner());
                MutexGuard {
                    lock,
                    inner: Some(g),
                    model: None,
                }
            }
            Some((ctx, me)) => {
                // The model owns blocking: release the real lock, run the
                // wait/reacquire protocol, then retake the (model-granted,
                // hence uncontended) real lock.
                drop(std_guard);
                ctx.condvar_wait(me, self.id(), lock.id());
                let g = lock.inner.lock().unwrap_or_else(|e| e.into_inner());
                MutexGuard {
                    lock,
                    inner: Some(g),
                    model: Some((ctx, me)),
                }
            }
        }
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        if let Some((ctx, me)) = rt::current() {
            ctx.condvar_notify(me, self.id(), false);
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((ctx, me)) = rt::current() {
            ctx.condvar_notify(me, self.id(), true);
        }
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock. Under the model both `read` and `write` are
/// exclusive (see the module docs); outside a model execution it is a real
/// `std::sync::RwLock` with non-poisoning guards.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: stdsync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<stdsync::RwLockReadGuard<'a, T>>,
    model: Option<(std::sync::Arc<rt::Execution>, rt::Tid)>,
}

/// Guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<stdsync::RwLockWriteGuard<'a, T>>,
    model: Option<(std::sync::Arc<rt::Execution>, rt::Tid)>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: stdsync::RwLock::new(value),
        }
    }

    fn id(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquires a shared read guard (exclusive under the model).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let model = rt::current();
        if let Some((ctx, me)) = &model {
            ctx.mutex_lock(*me, self.id());
        }
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            lock: self,
            inner: Some(inner),
            model,
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let model = rt::current();
        if let Some((ctx, me)) = &model {
            ctx.mutex_lock(*me, self.id());
        }
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            lock: self,
            inner: Some(inner),
            model,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((ctx, me)) = &self.model {
            ctx.mutex_unlock(*me, self.lock.id());
        }
    }
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((ctx, me)) = &self.model {
            ctx.mutex_unlock(*me, self.lock.id());
        }
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Instrumented atomic integers and flags: each operation is one scheduler
/// decision point, then executes sequentially consistently.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::rt;

    fn yield_point() {
        if let Some((ctx, me)) = rt::current() {
            ctx.yield_op(me);
        }
    }

    macro_rules! instrumented_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Scheduler-visible atomic; API mirrors the `std` type.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic with an initial value.
                pub fn new(v: $prim) -> Self {
                    Self {
                        inner: <$std>::new(v),
                    }
                }

                /// Atomic load (a decision point under the model).
                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.load(order)
                }

                /// Atomic store (a decision point under the model).
                pub fn store(&self, v: $prim, order: Ordering) {
                    yield_point();
                    self.inner.store(v, order);
                }
            }
        };
    }

    instrumented_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    instrumented_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    macro_rules! instrumented_atomic_int_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add, returning the previous value.
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_add(v, order)
                }

                /// Atomic subtract, returning the previous value.
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.inner.fetch_sub(v, order)
                }

                /// Atomic read-modify-write; `f` returning `None` aborts.
                ///
                /// # Errors
                ///
                /// Returns `Err(previous)` when `f` declines to update.
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    f: F,
                ) -> Result<$prim, $prim>
                where
                    F: FnMut($prim) -> Option<$prim>,
                {
                    yield_point();
                    self.inner.fetch_update(set_order, fetch_order, f)
                }

                /// Atomic compare-and-swap.
                ///
                /// # Errors
                ///
                /// Returns `Err(actual)` when the current value differs
                /// from `current`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    instrumented_atomic_int_ops!(AtomicU64, u64);
    instrumented_atomic_int_ops!(AtomicUsize, usize);
}
