//! The schedule explorer: bounded-preemption DFS over scheduling decisions
//! with a seeded random-schedule fallback for state spaces too big to
//! enumerate.
//!
//! Each *execution* runs the model body once under a serialized schedule
//! (see `crate::rt`). The explorer keeps a stack of decision nodes
//! mirroring the recorded choices of the last execution; backtracking picks
//! the deepest decision with an untried runnable alternative that stays
//! within the preemption cap, truncates, and replays that prefix. When the
//! DFS budget runs out before the space is exhausted, a fixed number of
//! seeded random schedules sweep the remaining space probabilistically.

use crate::rt::{self, Choice, Tail, Tid, Violation};

/// One decision point on the DFS stack.
#[derive(Debug)]
struct Node {
    runnable: Vec<Tid>,
    /// Alternatives tried so far; the last entry is the decision the
    /// current prefix replays at this level.
    tried: Vec<Tid>,
    was_running: Tid,
    was_running_runnable: bool,
    preemptions_before: usize,
}

impl Node {
    fn from_choice(c: &Choice) -> Self {
        Self {
            runnable: c.runnable.clone(),
            tried: vec![c.chosen],
            was_running: c.was_running,
            was_running_runnable: c.was_running_runnable,
            preemptions_before: c.preemptions_before,
        }
    }

    /// An untried runnable thread that keeps the path within the
    /// preemption cap.
    fn next_alternative(&self, max_preemptions: usize) -> Option<Tid> {
        self.runnable.iter().copied().find(|t| {
            if self.tried.contains(t) {
                return false;
            }
            let preempts = self.was_running_runnable && *t != self.was_running;
            !preempts || self.preemptions_before < max_preemptions
        })
    }
}

/// Outcome of one [`Checker::check`] run.
#[derive(Debug)]
pub struct Report {
    /// Number of distinct schedules executed (DFS + random fallback).
    pub executions: usize,
    /// Whether the DFS exhausted the bounded-preemption schedule space.
    /// `false` means the execution budget ran out and the random fallback
    /// took over.
    pub complete: bool,
    /// The first violation found, if any; exploration stops at the first.
    pub violation: Option<Violation>,
}

/// Configurable model checker. Defaults: preemption bound 2, up to 4,096
/// DFS executions, 128 random-schedule executions, 50,000 steps per
/// execution.
#[derive(Debug, Clone)]
pub struct Checker {
    max_preemptions: usize,
    max_dfs_executions: usize,
    random_executions: usize,
    max_steps: usize,
    seed: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Self {
            max_preemptions: 2,
            max_dfs_executions: 4096,
            random_executions: 128,
            max_steps: 50_000,
            seed: 0x5EED_CAFE,
        }
    }
}

impl Checker {
    /// A checker with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps context switches away from a still-runnable thread per
    /// schedule. Most real concurrency bugs surface within 2 preemptions
    /// (CHESS); raising this grows the space combinatorially.
    #[must_use]
    pub fn max_preemptions(mut self, n: usize) -> Self {
        self.max_preemptions = n;
        self
    }

    /// Caps the number of DFS executions before falling back to random
    /// schedules.
    #[must_use]
    pub fn max_dfs_executions(mut self, n: usize) -> Self {
        self.max_dfs_executions = n;
        self
    }

    /// Number of seeded random schedules to run when the DFS budget is
    /// exhausted without completing.
    #[must_use]
    pub fn random_executions(mut self, n: usize) -> Self {
        self.random_executions = n;
        self
    }

    /// Per-execution step budget; exceeding it is reported as a livelock.
    #[must_use]
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Seed for the random-schedule fallback.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explores schedules of `f`, stopping at the first violation.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync,
    {
        let mut executions = 0usize;
        let mut stack: Vec<Node> = Vec::new();
        let mut prefix: Vec<Tid> = Vec::new();

        // DFS phase.
        loop {
            if executions >= self.max_dfs_executions {
                break;
            }
            let (choices, violation) = rt::run_once(
                &f,
                prefix.clone(),
                Tail::Default,
                self.max_steps,
                self.max_preemptions,
            );
            executions += 1;
            if let Some(v) = violation {
                return Report {
                    executions,
                    complete: false,
                    violation: Some(v),
                };
            }
            for c in choices.iter().skip(stack.len()) {
                stack.push(Node::from_choice(c));
            }
            // Backtrack to the deepest node with an untried alternative.
            let next = loop {
                let Some(node) = stack.last_mut() else {
                    return Report {
                        executions,
                        complete: true,
                        violation: None,
                    };
                };
                if let Some(alt) = node.next_alternative(self.max_preemptions) {
                    node.tried.push(alt);
                    break alt;
                }
                stack.pop();
            };
            let _ = next;
            prefix = stack
                .iter()
                .map(|n| *n.tried.last().expect("node has at least one tried pick"))
                .collect();
        }

        // Random fallback phase: the DFS budget ran out.
        for k in 0..self.random_executions {
            let (_, violation) = rt::run_once(
                &f,
                Vec::new(),
                Tail::Random(self.seed.wrapping_add(k as u64)),
                self.max_steps,
                self.max_preemptions,
            );
            executions += 1;
            if let Some(v) = violation {
                return Report {
                    executions,
                    complete: false,
                    violation: Some(v),
                };
            }
        }
        Report {
            executions,
            complete: false,
            violation: None,
        }
    }
}

/// Checks `f` with default budgets and panics on the first violation —
/// the drop-in way to write a model test.
///
/// # Panics
///
/// Panics with the violation (message + failing schedule) if one is found.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync,
{
    let report = Checker::new().check(f);
    if let Some(v) = &report.violation {
        panic!(
            "model check failed after {} executions: {v}",
            report.executions
        );
    }
    report
}
