//! The per-execution cooperative scheduler.
//!
//! One model *execution* runs the test body once under a fully serialized
//! schedule: every managed thread parks on a shared condition variable and
//! only the thread the scheduler marked *active* makes progress. Each
//! instrumented operation (lock, unlock, condvar wait/notify, atomic op,
//! spawn, join, yield) is a *decision point* where the scheduler picks the
//! next thread to run — following a replay prefix chosen by the explorer,
//! then a deterministic default (or a seeded random pick). The sequence of
//! decisions is recorded so the explorer can backtrack.
//!
//! The scheduler's own coordination deliberately uses raw `std::sync`
//! primitives: this crate *is* the instrumentation layer.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Thread ids are dense indices assigned in spawn order (root is 0), which
/// makes runnable sets — and therefore replay — deterministic.
pub(crate) type Tid = usize;

/// Why a managed thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Blocked {
    /// Waiting to acquire the mutex with this id.
    Mutex(usize),
    /// Waiting on the condvar with this id.
    Condvar(usize),
    /// Waiting for this thread to finish.
    Join(Tid),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    Runnable,
    Blocked(Blocked),
    Finished,
}

/// One recorded scheduling decision.
#[derive(Debug, Clone)]
pub struct Choice {
    /// Threads that were runnable at this point (ascending ids).
    pub runnable: Vec<Tid>,
    /// The thread the scheduler picked.
    pub chosen: Tid,
    /// The thread that was running when the decision was made.
    pub was_running: Tid,
    /// Whether `was_running` was itself still runnable (picking another
    /// thread then counts as a preemption).
    pub was_running_runnable: bool,
    /// Preemptions consumed on the path *before* this decision.
    pub preemptions_before: usize,
}

/// A schedule violation discovered during one execution: an assertion or
/// panic in the model body, a deadlock, a livelock (step-budget blowout),
/// or a non-deterministic body that broke replay.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Human-readable description (panic payload, deadlock, livelock).
    pub message: String,
    /// The thread-id schedule that led to the violation.
    pub schedule: Vec<Tid>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (schedule: {:?})",
            self.message,
            &self.schedule[..self.schedule.len().min(64)]
        )
    }
}

/// How the scheduler picks beyond the replay prefix.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Tail {
    /// Deterministic default: stay on the current thread when runnable,
    /// else the smallest runnable id. Adds no preemptions.
    Default,
    /// Seeded uniform pick among runnable threads, respecting the
    /// preemption cap.
    Random(u64),
}

#[derive(Debug, Default)]
struct MutexModel {
    held_by: Option<Tid>,
}

#[derive(Debug)]
struct SchedState {
    threads: Vec<ThreadState>,
    active: Tid,
    mutexes: HashMap<usize, MutexModel>,
    /// FIFO waiters per condvar id.
    cv_waiters: HashMap<usize, Vec<Tid>>,
    steps: usize,
    preemptions: usize,
    choices: Vec<Choice>,
    violation: Option<Violation>,
    abort: bool,
}

impl SchedState {
    fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| *t == ThreadState::Finished)
    }
}

/// Sentinel panic payload used to unwind managed threads when an execution
/// aborts (violation found elsewhere); not itself a failure.
pub(crate) struct AbortToken;

/// Shared state of one model execution.
#[derive(Debug)]
pub(crate) struct Execution {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    prefix: Vec<Tid>,
    tail: Tail,
    max_steps: usize,
    max_preemptions: usize,
}

thread_local! {
    static CONTEXT: RefCell<Option<(Arc<Execution>, Tid)>> = const { RefCell::new(None) };
}

/// The execution context and managed thread id of the current thread, if it
/// is a managed model thread. Instrumented primitives fall back to plain
/// `std` behaviour when this is `None`, so code routed through the facade
/// still runs normally outside a model run.
pub(crate) fn current() -> Option<(Arc<Execution>, Tid)> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(ctx: Option<(Arc<Execution>, Tid)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// SplitMix64: the deterministic random tail.
fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed
        .wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Execution {
    pub(crate) fn new(
        prefix: Vec<Tid>,
        tail: Tail,
        max_steps: usize,
        max_preemptions: usize,
    ) -> Self {
        Self {
            state: StdMutex::new(SchedState {
                threads: vec![ThreadState::Runnable],
                active: 0,
                mutexes: HashMap::new(),
                cv_waiters: HashMap::new(),
                steps: 0,
                preemptions: 0,
                choices: Vec::new(),
                violation: None,
                abort: false,
            }),
            cv: StdCondvar::new(),
            prefix,
            tail,
            max_steps,
            max_preemptions,
        }
    }

    fn lock_state(&self) -> StdMutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail(&self, st: &mut SchedState, message: String) {
        if st.violation.is_none() {
            st.violation = Some(Violation {
                message,
                schedule: st.choices.iter().map(|c| c.chosen).collect(),
            });
        }
        st.abort = true;
        self.cv.notify_all();
    }

    fn unwind(&self, st: StdMutexGuard<'_, SchedState>) -> ! {
        drop(st);
        panic::resume_unwind(Box::new(AbortToken));
    }

    /// Picks the next active thread; called with the state locked, by the
    /// thread that is currently active (about to pause, block or finish).
    fn pick_next(&self, st: &mut SchedState) {
        if st.abort {
            return;
        }
        let runnable: Vec<Tid> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == ThreadState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if !st.all_finished() {
                let stuck: Vec<(Tid, ThreadState)> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !matches!(t, ThreadState::Finished))
                    .map(|(i, t)| (i, *t))
                    .collect();
                self.fail(
                    st,
                    format!("deadlock: no runnable thread; stuck: {stuck:?}"),
                );
            }
            self.cv.notify_all();
            return;
        }
        let k = st.choices.len();
        let was_running = st.active;
        let was_running_runnable = runnable.contains(&was_running);
        let chosen = if k < self.prefix.len() {
            let c = self.prefix[k];
            if !runnable.contains(&c) {
                self.fail(
                    st,
                    format!(
                        "non-deterministic replay: prefix step {k} wants thread {c}, \
                         runnable = {runnable:?} — model bodies must be deterministic"
                    ),
                );
                return;
            }
            c
        } else {
            match self.tail {
                Tail::Default => {
                    if was_running_runnable {
                        was_running
                    } else {
                        runnable[0]
                    }
                }
                Tail::Random(seed) => {
                    let cap_reached = st.preemptions >= self.max_preemptions;
                    if cap_reached && was_running_runnable {
                        was_running
                    } else {
                        runnable[(splitmix(seed, k as u64) % runnable.len() as u64) as usize]
                    }
                }
            }
        };
        let preempts = was_running_runnable && chosen != was_running;
        if preempts {
            st.preemptions += 1;
        }
        st.choices.push(Choice {
            runnable,
            chosen,
            was_running,
            was_running_runnable,
            preemptions_before: st.preemptions - usize::from(preempts),
        });
        st.active = chosen;
        self.cv.notify_all();
    }

    /// Parks until this thread is active again; unwinds on abort.
    fn wait_active<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, SchedState>,
        me: Tid,
    ) -> StdMutexGuard<'a, SchedState> {
        loop {
            if st.abort {
                self.unwind(st);
            }
            if st.active == me && st.threads[me] == ThreadState::Runnable {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn step(&self, st: &mut SchedState) {
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail(
                st,
                format!(
                    "step budget ({}) exceeded — livelock or an unbounded loop in the model body",
                    self.max_steps
                ),
            );
        }
    }

    /// A plain decision point: the running thread pauses, the scheduler
    /// picks who continues (possibly the same thread).
    pub(crate) fn yield_op(&self, me: Tid) {
        let mut st = self.lock_state();
        if st.abort {
            self.unwind(st);
        }
        self.step(&mut st);
        self.pick_next(&mut st);
        if st.abort {
            self.unwind(st);
        }
        let _st = self.wait_active(st, me);
    }

    // --- mutexes ---------------------------------------------------------

    pub(crate) fn mutex_lock(&self, me: Tid, id: usize) {
        self.yield_op(me);
        let mut st = self.lock_state();
        loop {
            let m = st.mutexes.entry(id).or_default();
            match m.held_by {
                None => {
                    m.held_by = Some(me);
                    return;
                }
                Some(holder) if holder == me => {
                    self.fail(
                        &mut st,
                        format!("thread {me} re-locked a mutex it already holds"),
                    );
                    self.unwind(st);
                }
                Some(_) => {
                    st.threads[me] = ThreadState::Blocked(Blocked::Mutex(id));
                    self.pick_next(&mut st);
                    st = self.wait_active(st, me);
                }
            }
        }
    }

    pub(crate) fn mutex_try_lock(&self, me: Tid, id: usize) -> bool {
        self.yield_op(me);
        let mut st = self.lock_state();
        let m = st.mutexes.entry(id).or_default();
        if m.held_by.is_none() {
            m.held_by = Some(me);
            true
        } else {
            false
        }
    }

    pub(crate) fn mutex_unlock(&self, me: Tid, id: usize) {
        let mut st = self.lock_state();
        if let Some(m) = st.mutexes.get_mut(&id) {
            m.held_by = None;
        }
        self.wake_mutex_waiters(&mut st, id);
        if st.abort {
            // Unwinding already: release without rescheduling so guard
            // drops along the unwind path cannot hang.
            self.cv.notify_all();
            return;
        }
        self.step(&mut st);
        self.pick_next(&mut st);
        let _st = self.wait_active(st, me);
    }

    fn wake_mutex_waiters(&self, st: &mut SchedState, id: usize) {
        for t in st.threads.iter_mut() {
            if *t == ThreadState::Blocked(Blocked::Mutex(id)) {
                *t = ThreadState::Runnable;
            }
        }
    }

    // --- condvars --------------------------------------------------------

    /// Atomically releases `mutex_id` and waits on `cv_id`; on return the
    /// mutex has been reacquired. No spurious wakeups are modelled;
    /// `notify_one` wakes waiters in FIFO order.
    pub(crate) fn condvar_wait(&self, me: Tid, cv_id: usize, mutex_id: usize) {
        let mut st = self.lock_state();
        if st.abort {
            self.unwind(st);
        }
        self.step(&mut st);
        if let Some(m) = st.mutexes.get_mut(&mutex_id) {
            m.held_by = None;
        }
        self.wake_mutex_waiters(&mut st, mutex_id);
        st.cv_waiters.entry(cv_id).or_default().push(me);
        st.threads[me] = ThreadState::Blocked(Blocked::Condvar(cv_id));
        self.pick_next(&mut st);
        st = self.wait_active(st, me);
        // Notified: reacquire the mutex, racing any other woken waiter.
        loop {
            let m = st.mutexes.entry(mutex_id).or_default();
            match m.held_by {
                None => {
                    m.held_by = Some(me);
                    return;
                }
                Some(_) => {
                    st.threads[me] = ThreadState::Blocked(Blocked::Mutex(mutex_id));
                    self.pick_next(&mut st);
                    st = self.wait_active(st, me);
                }
            }
        }
    }

    pub(crate) fn condvar_notify(&self, me: Tid, cv_id: usize, all: bool) {
        let mut st = self.lock_state();
        if st.abort {
            self.unwind(st);
        }
        self.step(&mut st);
        let waiters = st.cv_waiters.entry(cv_id).or_default();
        let woken: Vec<Tid> = if all {
            std::mem::take(waiters)
        } else if waiters.is_empty() {
            Vec::new()
        } else {
            vec![waiters.remove(0)]
        };
        for t in woken {
            st.threads[t] = ThreadState::Runnable;
        }
        self.pick_next(&mut st);
        let _st = self.wait_active(st, me);
    }

    // --- threads ---------------------------------------------------------

    /// Registers a new managed thread and returns its id. Does *not*
    /// reschedule: the caller must spawn the OS thread first and then hit a
    /// decision point, so the scheduler never hands control to a thread
    /// whose OS counterpart does not exist yet.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.lock_state();
        if st.abort {
            self.unwind(st);
        }
        let tid = st.threads.len();
        st.threads.push(ThreadState::Runnable);
        tid
    }

    /// First wait of a freshly spawned managed thread: parks until chosen.
    pub(crate) fn first_schedule(&self, me: Tid) {
        let st = self.lock_state();
        let st = self.wait_active(st, me);
        drop(st);
    }

    pub(crate) fn thread_finished(&self, me: Tid, panic_msg: Option<String>) {
        let mut st = self.lock_state();
        if let Some(msg) = panic_msg {
            self.fail(&mut st, msg);
        }
        st.threads[me] = ThreadState::Finished;
        for t in st.threads.iter_mut() {
            if *t == ThreadState::Blocked(Blocked::Join(me)) {
                *t = ThreadState::Runnable;
            }
        }
        if !st.abort && !st.all_finished() {
            self.pick_next(&mut st);
        }
        self.cv.notify_all();
    }

    pub(crate) fn join_thread(&self, me: Tid, target: Tid) {
        self.yield_op(me);
        let mut st = self.lock_state();
        while st.threads[target] != ThreadState::Finished {
            st.threads[me] = ThreadState::Blocked(Blocked::Join(target));
            self.pick_next(&mut st);
            st = self.wait_active(st, me);
        }
    }

    /// Blocks the calling explorer thread until every managed thread has
    /// finished (normally or by abort-unwind).
    pub(crate) fn wait_done(&self) {
        let mut st = self.lock_state();
        while !st.all_finished() {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    pub(crate) fn outcome(&self) -> (Vec<Choice>, Option<Violation>) {
        let st = self.lock_state();
        (st.choices.clone(), st.violation.clone())
    }
}

/// Runs `f` once as the root (thread 0) of a fresh execution; returns the
/// recorded choices and any violation.
pub(crate) fn run_once<F>(
    f: &F,
    prefix: Vec<Tid>,
    tail: Tail,
    max_steps: usize,
    max_preemptions: usize,
) -> (Vec<Choice>, Option<Violation>)
where
    F: Fn() + Send + Sync,
{
    let ctx = Arc::new(Execution::new(prefix, tail, max_steps, max_preemptions));
    set_context(Some((ctx.clone(), 0)));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    let panic_msg = match result {
        Ok(()) => None,
        Err(payload) => {
            if payload.downcast_ref::<AbortToken>().is_some() {
                None
            } else {
                Some(panic_payload_message(payload.as_ref()))
            }
        }
    };
    ctx.thread_finished(0, panic_msg);
    set_context(None);
    ctx.wait_done();
    ctx.outcome()
}

pub(crate) fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
