//! Instrumented thread spawn/join.
//!
//! Inside a model execution, spawned closures become *managed* threads: the
//! child is registered with the scheduler before its OS thread starts, the
//! OS thread parks until the scheduler picks it, and the parent hits a
//! decision point right after the spawn — so the schedule explorer can
//! interleave parent and child from the very first instruction. Outside a
//! model execution this is a plain `std::thread::spawn`.

use std::panic::{self, AssertUnwindSafe};
use std::thread as stdthread;

use crate::rt;

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
#[derive(Debug)]
pub struct JoinHandle<T> {
    inner: stdthread::JoinHandle<T>,
    model: Option<(std::sync::Arc<rt::Execution>, rt::Tid)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// # Errors
    ///
    /// Returns the panic payload if the thread panicked. Under the model a
    /// child panic is already recorded as a violation by the scheduler.
    pub fn join(self) -> stdthread::Result<T> {
        if let Some((ctx, me)) = rt::current() {
            if let Some((_, target)) = &self.model {
                ctx.join_thread(me, *target);
            }
        }
        self.inner.join()
    }

    /// Whether the thread has finished running.
    pub fn is_finished(&self) -> bool {
        self.inner.is_finished()
    }
}

/// Spawns a thread; managed by the scheduler inside a model execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        None => JoinHandle {
            inner: stdthread::spawn(f),
            model: None,
        },
        Some((ctx, me)) => {
            let tid = ctx.register_thread();
            let child_ctx = ctx.clone();
            let inner = stdthread::spawn(move || {
                rt::set_context(Some((child_ctx.clone(), tid)));
                child_ctx.first_schedule(tid);
                let result = panic::catch_unwind(AssertUnwindSafe(f));
                let panic_msg = match &result {
                    Ok(_) => None,
                    Err(payload) => {
                        if payload.downcast_ref::<rt::AbortToken>().is_some() {
                            None
                        } else {
                            Some(rt::panic_payload_message(payload.as_ref()))
                        }
                    }
                };
                child_ctx.thread_finished(tid, panic_msg);
                rt::set_context(None);
                match result {
                    Ok(v) => v,
                    Err(payload) => panic::resume_unwind(payload),
                }
            });
            // The OS thread now exists and is parked on the scheduler, so
            // it is safe to let the explorer pick it.
            ctx.yield_op(me);
            JoinHandle {
                inner,
                model: Some((ctx, tid)),
            }
        }
    }
}

/// A plain decision point under the model; `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match rt::current() {
        None => stdthread::yield_now(),
        Some((ctx, me)) => ctx.yield_op(me),
    }
}
