//! # sieve-check — deterministic concurrency model checking
//!
//! A loom/CHESS-style model checker for the SiEVE workspace, built offline
//! with zero dependencies. It has two halves:
//!
//! * **Instrumented primitives** ([`sync`], [`thread`]): drop-in
//!   `Mutex`/`Condvar`/`RwLock`/atomics/`spawn` that, *inside a model
//!   execution*, hand every operation to a cooperative scheduler as a
//!   decision point — and, outside one, behave exactly like their `std`
//!   counterparts. Production crates route their synchronization through a
//!   `sync` facade that resolves to these types under the `model-check`
//!   feature, so the code under test is the real code.
//! * **A schedule explorer** ([`Checker`]): enumerates thread
//!   interleavings by DFS over scheduling decisions with a
//!   bounded-preemption cap (CHESS-style — most races need ≤ 2
//!   preemptions), falling back to seeded random schedules when the space
//!   outgrows the DFS budget. Violations — panics/failed assertions in the
//!   model body, deadlocks, livelocks — are reported with the exact
//!   thread schedule that produced them, and replaying that schedule is
//!   deterministic.
//!
//! ## Writing a model test
//!
//! ```
//! use std::sync::Arc;
//! use sieve_check::{model, sync::Mutex, thread};
//!
//! let report = model(|| {
//!     let n = Arc::new(Mutex::new(0u32));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = Arc::clone(&n);
//!             thread::spawn(move || *n.lock() += 1)
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(*n.lock(), 2);
//! });
//! assert!(report.executions > 1); // multiple interleavings explored
//! ```
//!
//! Model bodies must be deterministic apart from scheduling (no wall
//! clock, no OS randomness): replay relies on the same body making the
//! same sync calls under the same schedule. The checker detects replay
//! divergence and reports it as a violation.

pub mod explorer;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use explorer::{model, Checker, Report};
pub use rt::{Choice, Violation};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::{model, thread, Checker};

    #[test]
    fn finds_lost_update_on_unsynchronized_counter() {
        // Classic read-modify-write race on an atomic used non-atomically.
        let report = Checker::new().check(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        let v = n.load(Ordering::SeqCst);
                        n.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        let v = report.violation.expect("checker must find the lost update");
        assert!(v.message.contains("lost update"), "got: {}", v.message);
    }

    #[test]
    fn mutex_guarded_counter_is_clean_and_explores_many_schedules() {
        let report = model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || *n.lock() += 1)
                })
                .collect();
            for h in handles {
                let _ = h.join();
            }
            assert_eq!(*n.lock(), 2);
        });
        assert!(report.complete, "small space should be exhausted");
        assert!(report.executions > 1, "must explore >1 interleaving");
    }

    #[test]
    fn finds_ab_ba_deadlock() {
        let report = Checker::new().check(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            let _ = t.join();
        });
        let v = report.violation.expect("checker must find the deadlock");
        assert!(v.message.contains("deadlock"), "got: {}", v.message);
    }

    #[test]
    fn condvar_handoff_terminates_under_all_schedules() {
        let report = model(|| {
            let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
            let producer = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    let (m, cv) = &*slot;
                    *m.lock() = Some(7);
                    cv.notify_one();
                })
            };
            let (m, cv) = &*slot;
            let mut g = m.lock();
            while g.is_none() {
                g = cv.wait(g);
            }
            assert_eq!(*g, Some(7));
            drop(g);
            let _ = producer.join();
        });
        assert!(report.executions > 1);
    }

    #[test]
    fn runs_as_plain_std_outside_a_model_execution() {
        // No model context: the same types must behave like std.
        let n = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || *n.lock() += 1)
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(*n.lock(), 4);
    }
}
