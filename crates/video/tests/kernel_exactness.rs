//! Bit-exactness of the dispatched SIMD kernels against the scalar
//! reference tier, over random inputs.
//!
//! Every property compares `sieve_video::kernels::<f>` (whatever tier the
//! host dispatches to — AVX2 on CI) against `kernels::scalar::<f>` on the
//! same input and requires exact equality: same integers, same float bit
//! patterns. On a host without AVX2 the dispatched tier degrades towards
//! scalar and the properties hold trivially; CI's x86 runners exercise the
//! real comparison.
//!
//! The final properties cover the codec-facing wrappers whose edge
//! handling was rewritten onto the kernels: `motion::sad_mb` (clamped
//! block materialization) and `intra_cost_mb`, against per-sample
//! references, on planes of odd dimensions with overhanging motion
//! vectors.

use proptest::prelude::*;
use sieve_video::kernels::{self, scalar};
use sieve_video::motion::{self, MotionVector, MB};
use sieve_video::Plane;

/// Deterministic pseudo-random byte buffer from a proptest-chosen seed —
/// cheaper than generating 1000+ element vectors through the strategy.
fn bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

fn block_i32(seed: u64, amplitude: i32) -> [i32; 64] {
    let raw = bytes(128, seed);
    std::array::from_fn(|i| {
        let v = (raw[2 * i] as i32) << 8 | raw[2 * i + 1] as i32;
        v % (amplitude + 1) * if raw[2 * i] & 1 == 0 { 1 } else { -1 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sad16_matches_scalar(seed in 0u64..1 << 48, cur_stride in 16usize..40, ref_stride in 16usize..40) {
        let cur = bytes(cur_stride * 16, seed);
        let refp = bytes(ref_stride * 16, seed ^ 0xDEAD);
        prop_assert_eq!(
            kernels::sad16(&cur, cur_stride, &refp, ref_stride),
            scalar::sad16(&cur, cur_stride, &refp, ref_stride)
        );
    }

    #[test]
    fn sum16_and_sad16_const_match_scalar(seed in 0u64..1 << 48, stride in 16usize..40, value in 0u8..=255) {
        let cur = bytes(stride * 16, seed);
        prop_assert_eq!(kernels::sum16(&cur, stride), scalar::sum16(&cur, stride));
        prop_assert_eq!(
            kernels::sad16_const(&cur, stride, value),
            scalar::sad16_const(&cur, stride, value)
        );
    }

    /// Forward DCT over the full residual range the codec produces
    /// (|residual| <= 255 after prediction, but test beyond it up to the
    /// |v| < 2^24 domain contract).
    #[test]
    fn dct8_forward_matches_scalar(seed in 0u64..1 << 48, amplitude in 1i32..(1 << 23)) {
        let input = block_i32(seed, amplitude);
        let mut simd = [0f32; 64];
        let mut reference = [0f32; 64];
        kernels::dct8_forward(&input, &mut simd);
        scalar::dct8_forward(&input, &mut reference);
        prop_assert_eq!(simd.map(f32::to_bits), reference.map(f32::to_bits));
    }

    #[test]
    fn dct8_inverse_matches_scalar(seed in 0u64..1 << 48, amplitude in 1i32..(1 << 23)) {
        // Realistic coefficients: forward-transform a random block first.
        let block = block_i32(seed, amplitude);
        let mut coeffs = [0f32; 64];
        scalar::dct8_forward(&block, &mut coeffs);
        let mut simd = [0i32; 64];
        let mut reference = [0i32; 64];
        kernels::dct8_inverse(&coeffs, &mut simd);
        scalar::dct8_inverse(&coeffs, &mut reference);
        prop_assert_eq!(simd, reference);
    }

    #[test]
    fn quantize_dequantize_match_scalar(seed in 0u64..1 << 48, qseed in 0u64..1 << 48) {
        let block = block_i32(seed, 2048);
        let mut coeffs = [0f32; 64];
        scalar::dct8_forward(&block, &mut coeffs);
        let raw = bytes(64, qseed);
        let steps: [f32; 64] = std::array::from_fn(|i| raw[i].max(1) as f32);
        let mut levels_simd = [0i32; 64];
        let mut levels_ref = [0i32; 64];
        kernels::quantize64(&coeffs, &steps, &mut levels_simd);
        scalar::quantize64(&coeffs, &steps, &mut levels_ref);
        prop_assert_eq!(levels_simd, levels_ref);
        let mut deq_simd = [0f32; 64];
        let mut deq_ref = [0f32; 64];
        kernels::dequantize64(&levels_ref, &steps, &mut deq_simd);
        scalar::dequantize64(&levels_ref, &steps, &mut deq_ref);
        prop_assert_eq!(deq_simd.map(f32::to_bits), deq_ref.map(f32::to_bits));
    }

    /// Odd lengths exercise the vector tail handling.
    #[test]
    fn sse_u8_matches_scalar(seed in 0u64..1 << 48, len in 1usize..600) {
        let a = bytes(len, seed);
        let b = bytes(len, seed ^ 0xBEEF);
        prop_assert_eq!(kernels::sse_u8(&a, &b), scalar::sse_u8(&a, &b));
    }

    /// Odd output widths leave a scalar tail after the 8-lane body.
    #[test]
    fn avg2x2_f32_matches_scalar(seed in 0u64..1 << 48, out_len in 1usize..70) {
        let raw_t = bytes(out_len * 2, seed);
        let raw_b = bytes(out_len * 2, seed ^ 0xF00D);
        let top: Vec<f32> = raw_t.iter().map(|&v| v as f32).collect();
        let bottom: Vec<f32> = raw_b.iter().map(|&v| v as f32).collect();
        let mut simd = vec![0f32; out_len];
        let mut reference = vec![0f32; out_len];
        kernels::avg2x2_f32(&top, &bottom, &mut simd);
        scalar::avg2x2_f32(&top, &bottom, &mut reference);
        let simd: Vec<u32> = simd.iter().map(|v| v.to_bits()).collect();
        let reference: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(simd, reference);
    }

    /// `sad_mb` materializes edge-clamped blocks before the kernel; it must
    /// agree exactly with the per-sample clamped definition, including on
    /// odd-sized planes with motion vectors that overhang every edge.
    #[test]
    fn sad_mb_matches_clamped_reference(
        seed in 0u64..1 << 48,
        w in 9usize..48,
        h in 9usize..48,
        x in 0usize..40,
        y in 0usize..40,
        dx in -20i16..=20,
        dy in -20i16..=20,
    ) {
        let cur = Plane::from_data(w, h, bytes(w * h, seed));
        let reference = Plane::from_data(w, h, bytes(w * h, seed ^ 0xCAFE));
        let mv = MotionVector { dx, dy };
        let mut expect = 0u32;
        for oy in 0..MB {
            for ox in 0..MB {
                let c = cur.sample_clamped((x + ox) as i64, (y + oy) as i64) as i32;
                let r = reference.sample_clamped(
                    (x + ox) as i64 + dx as i64,
                    (y + oy) as i64 + dy as i64,
                ) as i32;
                expect += (c - r).unsigned_abs();
            }
        }
        prop_assert_eq!(motion::sad_mb(&cur, &reference, x, y, mv), expect);
    }

    #[test]
    fn intra_cost_mb_matches_clamped_reference(
        seed in 0u64..1 << 48,
        w in 9usize..48,
        h in 9usize..48,
        x in 0usize..40,
        y in 0usize..40,
    ) {
        let cur = Plane::from_data(w, h, bytes(w * h, seed));
        let mut sum = 0u32;
        for oy in 0..MB {
            for ox in 0..MB {
                sum += cur.sample_clamped((x + ox) as i64, (y + oy) as i64) as u32;
            }
        }
        let mean = (sum / (MB * MB) as u32) as i32;
        let mut expect = 0u32;
        for oy in 0..MB {
            for ox in 0..MB {
                let c = cur.sample_clamped((x + ox) as i64, (y + oy) as i64) as i32;
                expect += (c - mean).unsigned_abs();
            }
        }
        prop_assert_eq!(motion::intra_cost_mb(&cur, x, y), expect);
    }
}
