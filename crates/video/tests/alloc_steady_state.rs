//! Steady-state allocation audit of the encoder and decoder.
//!
//! After a warmup pass has sized every scratch buffer (reference and
//! reconstruction frames, the lookahead's half-resolution planes, the
//! bitstream payload `Vec`s, the decision log), re-encoding and re-decoding
//! the same sequence must perform **zero** heap allocations: the hot loops
//! recycle buffers by swapping, never by allocating.
//!
//! The whole audit lives in a single `#[test]` because the counting
//! allocator is process-global and `cargo test` runs sibling tests on
//! other threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sieve_video::encode::{EncodedFrame, Encoder, EncoderConfig, FrameType};
use sieve_video::{Decoder, Frame, Resolution};

/// Forwards to the system allocator, counting every allocation and
/// reallocation (frees are irrelevant to the audit).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Moving textured content: forces real motion search, coded residuals,
/// and the occasional scenecut, so the steady state is the codec's real
/// steady state and not the all-skip fast path.
fn test_frames(res: Resolution, count: usize) -> Vec<Frame> {
    let (w, h) = (res.width() as usize, res.height() as usize);
    (0..count)
        .map(|t| {
            let mut f = Frame::grey(res);
            for y in 0..h {
                for x in 0..w {
                    let v = (((x + 3 * t) * 13 + y * 7) % 160) as u8 + 40;
                    f.y_mut().put(x, y, v);
                }
            }
            f
        })
        .collect()
}

#[test]
fn encode_decode_steady_state_does_not_allocate() {
    let res = Resolution::new(64, 48);
    let frames = test_frames(res, 12);
    let config = EncoderConfig::new(5, 100);

    let mut encoder = Encoder::new(res, config);
    let mut outputs: Vec<EncodedFrame> = frames
        .iter()
        .map(|_| EncodedFrame {
            frame_type: FrameType::I,
            data: Vec::new(),
        })
        .collect();

    // Warmup: two full passes size every buffer (the second catches buffers
    // that only reach their steady-state capacity after one reuse cycle).
    for _ in 0..2 {
        encoder.reset();
        for (frame, out) in frames.iter().zip(outputs.iter_mut()) {
            encoder.encode_frame_into(frame, out);
        }
    }

    encoder.reset();
    let before = allocations();
    for (frame, out) in frames.iter().zip(outputs.iter_mut()) {
        encoder.encode_frame_into(frame, out);
    }
    let encode_allocs = allocations() - before;
    assert_eq!(
        encode_allocs,
        0,
        "steady-state encode of {} frames allocated {encode_allocs} times",
        frames.len()
    );

    let mut decoder = Decoder::new(res, config.quality);
    for _ in 0..2 {
        decoder.reset();
        for out in &outputs {
            decoder.decode_next(out).expect("warmup decode");
        }
    }

    decoder.reset();
    let before = allocations();
    for out in &outputs {
        decoder.decode_next(out).expect("steady-state decode");
    }
    let decode_allocs = allocations() - before;
    assert_eq!(
        decode_allocs,
        0,
        "steady-state decode of {} frames allocated {decode_allocs} times",
        outputs.len()
    );
}
