//! Block motion estimation.
//!
//! The encoder partitions the luma plane into 16x16 macroblocks and, for each
//! one, searches the previous reconstructed frame for the best-matching block
//! (minimum sum of absolute differences). The per-frame aggregate of these
//! costs — inter cost vs. an intra texture cost — drives the scenecut
//! decision that makes the encoder "semantic" in SiEVE's sense.

use crate::frame::Plane;
use crate::kernels;

/// Side length of a macroblock in luma samples.
pub const MB: usize = 16;

/// A motion vector in full-pel units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MotionVector {
    /// Horizontal displacement (positive = rightwards in the reference).
    pub dx: i16,
    /// Vertical displacement (positive = downwards in the reference).
    pub dy: i16,
}

impl MotionVector {
    /// The zero vector.
    pub const ZERO: MotionVector = MotionVector { dx: 0, dy: 0 };
}

/// Result of motion search for one macroblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MotionResult {
    /// Best motion vector found.
    pub mv: MotionVector,
    /// Sum of absolute differences at `mv`.
    pub sad: u32,
    /// SAD of the co-located (zero-motion) block, kept because skip-mode
    /// decisions compare against it.
    pub zero_sad: u32,
}

/// Materializes the `MB`x`MB` block of `p` whose top-left corner is at the
/// (possibly out-of-bounds) position `(ox, oy)` into `out`, replicating
/// edge samples exactly like [`Plane::sample_clamped`] would.
///
/// Each row splits into a left-clamped run, an interior `memcpy`, and a
/// right-clamped run, so an edge block costs a handful of fills instead of
/// 256 per-sample clamps — after which the SIMD SAD kernel applies as-is.
fn fill_mb_clamped(p: &Plane, ox: i64, oy: i64, out: &mut [u8; MB * MB]) {
    let (w, h) = (p.width(), p.height());
    let data = p.data();
    // Column split: dx in [0, n0) clamps left, [n0, n1) is interior,
    // [n1, MB) clamps right. Either run may be empty or cover the block.
    let n0 = (-ox).clamp(0, MB as i64) as usize;
    let n1 = (w as i64 - ox).clamp(n0 as i64, MB as i64) as usize;
    for dy in 0..MB {
        let sy = (oy + dy as i64).clamp(0, h as i64 - 1) as usize;
        let row = &data[sy * w..][..w];
        let dst = &mut out[dy * MB..][..MB];
        dst[..n0].fill(row[0]);
        if n1 > n0 {
            dst[n0..n1].copy_from_slice(&row[(ox + n0 as i64) as usize..][..n1 - n0]);
        }
        dst[n1..].fill(row[w - 1]);
    }
}

/// Sum of absolute differences between the `MB`x`MB` block of `cur` at
/// `(x, y)` and the block of `reference` displaced by `mv`, with edge
/// clamping on the reference.
pub fn sad_mb(cur: &Plane, reference: &Plane, x: usize, y: usize, mv: MotionVector) -> u32 {
    let (w, h) = (cur.width(), cur.height());
    let rw = reference.width();
    let rx = x as i64 + mv.dx as i64;
    let ry = y as i64 + mv.dy as i64;
    // Fast path: both blocks fully inside their planes — straight slice
    // arithmetic with each plane's own stride, no per-sample clamping and
    // no requirement that the planes share dimensions. This is the
    // encoder's hottest loop by far.
    if x + MB <= w
        && y + MB <= h
        && rx >= 0
        && ry >= 0
        && rx as usize + MB <= rw
        && ry as usize + MB <= reference.height()
    {
        let (rx, ry) = (rx as usize, ry as usize);
        return kernels::sad16(
            &cur.data()[y * w + x..],
            w,
            &reference.data()[ry * rw + rx..],
            rw,
        );
    }
    // Edge path: replicate the clamped blocks into stack buffers and run
    // the same kernel. Bit-identical to per-sample clamping.
    let mut cbuf = [0u8; MB * MB];
    let mut rbuf = [0u8; MB * MB];
    fill_mb_clamped(cur, x as i64, y as i64, &mut cbuf);
    fill_mb_clamped(reference, rx, ry, &mut rbuf);
    kernels::sad16(&cbuf, MB, &rbuf, MB)
}

/// Intra texture cost of the macroblock at `(x, y)`: sum of absolute
/// deviations from the block mean. This is the classic cheap stand-in for
/// the cost of intra-coding the block, and is what the scenecut rule
/// compares inter cost against.
pub fn intra_cost_mb(cur: &Plane, x: usize, y: usize) -> u32 {
    let (w, h) = (cur.width(), cur.height());
    // Fast path: fully interior block — `psadbw`-backed sum and deviation.
    if x + MB <= w && y + MB <= h {
        let block = &cur.data()[y * w + x..];
        let mean = kernels::sum16(block, w) / (MB * MB) as u32;
        return kernels::sad16_const(block, w, mean as u8);
    }
    // Edge path: materialize the clamped block once, then use the same
    // kernels as the interior path.
    let mut buf = [0u8; MB * MB];
    fill_mb_clamped(cur, x as i64, y as i64, &mut buf);
    let mean = kernels::sum16(&buf, MB) / (MB * MB) as u32;
    kernels::sad16_const(&buf, MB, mean as u8)
}

/// Three-step search for the best motion vector of the macroblock at
/// `(x, y)`, with maximum displacement `range` full-pel in each direction.
///
/// Three-step search probes a shrinking 8-neighbourhood around the best
/// candidate; it evaluates ~25 positions instead of `(2*range+1)^2`,
/// matching what real-time encoders do.
pub fn three_step_search(
    cur: &Plane,
    reference: &Plane,
    x: usize,
    y: usize,
    range: u16,
) -> MotionResult {
    // The current block is the same for every candidate: hoist it out of
    // the search loop (materializing it once if it overhangs the plane).
    let (w, h) = (cur.width(), cur.height());
    let mut cbuf = [0u8; MB * MB];
    let (cblock, cstride) = if x + MB <= w && y + MB <= h {
        (&cur.data()[y * w + x..], w)
    } else {
        fill_mb_clamped(cur, x as i64, y as i64, &mut cbuf);
        (&cbuf[..], MB)
    };
    let rw = reference.width();
    let rh = reference.height();
    let rdata = reference.data();
    let eval = |mv: MotionVector| -> u32 {
        let rx = x as i64 + mv.dx as i64;
        let ry = y as i64 + mv.dy as i64;
        if rx >= 0 && ry >= 0 && rx as usize + MB <= rw && ry as usize + MB <= rh {
            kernels::sad16(
                cblock,
                cstride,
                &rdata[ry as usize * rw + rx as usize..],
                rw,
            )
        } else {
            let mut rbuf = [0u8; MB * MB];
            fill_mb_clamped(reference, rx, ry, &mut rbuf);
            kernels::sad16(cblock, cstride, &rbuf, MB)
        }
    };
    let zero_sad = eval(MotionVector::ZERO);
    let mut best = MotionVector::ZERO;
    let mut best_sad = zero_sad;
    let mut step = range.max(1).next_power_of_two() as i16 / 2;
    if step == 0 {
        step = 1;
    }
    while step >= 1 {
        let center = best;
        for dy in [-step, 0, step] {
            for dx in [-step, 0, step] {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let cand = MotionVector {
                    dx: (center.dx + dx).clamp(-(range as i16), range as i16),
                    dy: (center.dy + dy).clamp(-(range as i16), range as i16),
                };
                if cand == center {
                    continue;
                }
                let s = eval(cand);
                if s < best_sad {
                    best_sad = s;
                    best = cand;
                }
            }
        }
        step /= 2;
    }
    MotionResult {
        mv: best,
        sad: best_sad,
        zero_sad,
    }
}

/// Whole-frame motion statistics used by the scenecut decision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FrameMotion {
    /// Sum over macroblocks of the best inter SAD.
    pub inter_cost: u64,
    /// Sum over macroblocks of the intra texture cost.
    pub intra_cost: u64,
    /// Number of macroblocks analysed.
    pub mb_count: u32,
}

impl FrameMotion {
    /// Ratio `inter/intra`, in `[0, +inf)`; low values mean the previous
    /// frame predicts this one well.
    pub fn inter_over_intra(&self) -> f64 {
        if self.intra_cost == 0 {
            if self.inter_cost == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.inter_cost as f64 / self.intra_cost as f64
        }
    }
}

/// Runs motion search on every macroblock of `cur` against `reference` and
/// returns both the per-macroblock results (row-major over the MB grid) and
/// the frame aggregate.
pub fn analyze_frame(
    cur: &Plane,
    reference: &Plane,
    range: u16,
) -> (Vec<MotionResult>, FrameMotion) {
    let mb_cols = cur.width().div_ceil(MB);
    let mb_rows = cur.height().div_ceil(MB);
    let mut results = Vec::with_capacity(mb_cols * mb_rows);
    let mut agg = FrameMotion::default();
    for my in 0..mb_rows {
        for mx in 0..mb_cols {
            let x = mx * MB;
            let y = my * MB;
            let r = three_step_search(cur, reference, x, y, range);
            agg.inter_cost += r.sad as u64;
            agg.intra_cost += intra_cost_mb(cur, x, y) as u64;
            agg.mb_count += 1;
            results.push(r);
        }
    }
    (results, agg)
}

/// Like [`analyze_frame`] but returns only the frame aggregate, with no
/// per-macroblock allocation — the encoder's lookahead only needs the
/// aggregate, and it runs once per frame.
pub fn analyze_frame_agg(cur: &Plane, reference: &Plane, range: u16) -> FrameMotion {
    let mb_cols = cur.width().div_ceil(MB);
    let mb_rows = cur.height().div_ceil(MB);
    let mut agg = FrameMotion::default();
    for my in 0..mb_rows {
        for mx in 0..mb_cols {
            let x = mx * MB;
            let y = my * MB;
            let r = three_step_search(cur, reference, x, y, range);
            agg.inter_cost += r.sad as u64;
            agg.intra_cost += intra_cost_mb(cur, x, y) as u64;
            agg.mb_count += 1;
        }
    }
    agg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured_plane(w: usize, h: usize, phase: usize) -> Plane {
        let mut data = vec![0u8; w * h];
        for y in 0..h {
            for x in 0..w {
                data[y * w + x] = (((x + phase) * 13 + y * 7) % 256) as u8;
            }
        }
        Plane::from_data(w, h, data)
    }

    #[test]
    fn sad_zero_for_identical() {
        let p = textured_plane(64, 64, 0);
        assert_eq!(sad_mb(&p, &p, 16, 16, MotionVector::ZERO), 0);
    }

    #[test]
    fn search_recovers_known_shift() {
        // reference shifted right by 4: block at x in cur matches x+4... build
        // cur as phase 0, reference as phase 4 so cur(x) == ref(x - 4).
        let cur = textured_plane(96, 96, 4);
        let reference = textured_plane(96, 96, 0);
        let r = three_step_search(&cur, &reference, 32, 32, 8);
        assert_eq!(r.mv, MotionVector { dx: 4, dy: 0 });
        assert_eq!(r.sad, 0);
    }

    #[test]
    fn search_never_worse_than_zero_mv() {
        let cur = textured_plane(64, 64, 3);
        let reference = textured_plane(64, 64, 11);
        for (x, y) in [(0, 0), (16, 32), (48, 48)] {
            let r = three_step_search(&cur, &reference, x, y, 16);
            assert!(r.sad <= r.zero_sad);
        }
    }

    #[test]
    fn intra_cost_zero_for_flat() {
        let p = Plane::filled(32, 32, 77);
        assert_eq!(intra_cost_mb(&p, 0, 0), 0);
    }

    #[test]
    fn intra_cost_grows_with_texture() {
        let flat = Plane::filled(32, 32, 100);
        let tex = textured_plane(32, 32, 0);
        assert!(intra_cost_mb(&tex, 0, 0) > intra_cost_mb(&flat, 0, 0));
    }

    #[test]
    fn frame_motion_ratio_static_scene_is_low() {
        let p = textured_plane(64, 64, 0);
        let (_, agg) = analyze_frame(&p, &p, 8);
        assert_eq!(agg.inter_cost, 0);
        assert!(agg.inter_over_intra() < 1e-9);
        assert_eq!(agg.mb_count, 16);
    }

    #[test]
    fn frame_motion_ratio_scene_change_is_high() {
        let a = textured_plane(64, 64, 0);
        let mut b = Plane::filled(64, 64, 0);
        // Uncorrelated content.
        for y in 0..64 {
            for x in 0..64 {
                b.put(x, y, (((x * 31) ^ (y * 17)) % 256) as u8);
            }
        }
        let (_, agg) = analyze_frame(&b, &a, 8);
        assert!(
            agg.inter_over_intra() > 0.5,
            "uncorrelated frames should look intra-cheap, got {}",
            agg.inter_over_intra()
        );
    }
}
