//! # sieve-video — the codec substrate of the SiEVE reproduction
//!
//! A from-scratch block video codec with the properties SiEVE (ICDCS 2020)
//! relies on:
//!
//! * a **semantic encoder** ([`Encoder`]) whose GOP size and scenecut
//!   threshold are tunable per camera, so that I-frames land on semantic
//!   events (objects entering/leaving the scene);
//! * a **container** ([`EncodedVideo`], [`VideoIndex`]) whose frame-type
//!   index can be scanned without decoding — the substrate of the I-frame
//!   seeker;
//! * an expensive **full decoder** ([`Decoder`]) that the image-similarity
//!   baselines must run on every frame, reproducing the cost asymmetry
//!   behind the paper's 100x speedup claim.
//!
//! ## Quickstart
//!
//! ```
//! use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
//!
//! let res = Resolution::new(64, 48);
//! let frames = (0..30).map(|_| Frame::grey(res));
//! // GOP 10, scenecut 40: an I-frame at least every 10 frames.
//! let video = EncodedVideo::encode(res, 30, EncoderConfig::new(10, 40), frames);
//! assert_eq!(video.frame_count(), 30);
//! // Scan the index without decoding; decode I-frames independently.
//! for i in video.i_frame_indices() {
//!     let frame = video.decode_iframe_at(i).unwrap();
//!     assert_eq!(frame.resolution(), res);
//! }
//! ```

pub mod bitio;
pub mod container;
pub mod dct;
pub mod decode;
pub mod encode;
pub mod entropy;
pub mod frame;
pub mod kernels;
pub mod motion;
pub mod parallel;
pub mod quality;
pub mod quant;
pub mod stats;

pub use container::{ContainerError, EncodedVideo, FrameMeta, VideoIndex};
pub use decode::{DecodeError, Decoder};
pub use encode::{EncodedFrame, Encoder, EncoderConfig, FrameDecision, FrameType, SCENECUT_MAX};
pub use frame::{Frame, Plane, Resolution};
pub use motion::{FrameMotion, MotionVector};
pub use parallel::encode_parallel_with_decisions;
pub use quality::{ssim_luma, ssim_plane};
pub use quant::QuantTable;
pub use stats::BitstreamStats;
