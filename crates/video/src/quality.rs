//! Full-reference quality metrics: PSNR lives on [`crate::frame::Frame`];
//! this module adds SSIM (structural similarity), the metric codec work
//! actually reports, used by the round-trip tests and the quality ablation.

use crate::frame::{Frame, Plane};

const C1: f64 = 6.5025; // (0.01 * 255)^2
const C2: f64 = 58.5225; // (0.03 * 255)^2

/// Mean SSIM between two luma planes over 8x8 windows (stride 4).
///
/// Returns a value in `[-1, 1]`; 1 means identical. This is the standard
/// windowed SSIM with uniform (box) weighting — adequate for codec
/// regression checks.
///
/// # Panics
///
/// Panics if the plane dimensions differ or are smaller than one window.
pub fn ssim_plane(a: &Plane, b: &Plane) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "SSIM requires equal dimensions"
    );
    assert!(
        a.width() >= 8 && a.height() >= 8,
        "SSIM needs at least one 8x8 window"
    );
    let mut total = 0.0f64;
    let mut count = 0usize;
    let mut y = 0;
    while y + 8 <= a.height() {
        let mut x = 0;
        while x + 8 <= a.width() {
            total += ssim_window(a, b, x, y);
            count += 1;
            x += 4;
        }
        y += 4;
    }
    total / count as f64
}

/// SSIM of one 8x8 window at `(x, y)`.
fn ssim_window(a: &Plane, b: &Plane, x: usize, y: usize) -> f64 {
    let n = 64.0;
    let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
    for dy in 0..8 {
        for dx in 0..8 {
            let va = a.sample(x + dx, y + dy) as f64;
            let vb = b.sample(x + dx, y + dy) as f64;
            sa += va;
            sb += vb;
            saa += va * va;
            sbb += vb * vb;
            sab += va * vb;
        }
    }
    let mu_a = sa / n;
    let mu_b = sb / n;
    let var_a = saa / n - mu_a * mu_a;
    let var_b = sbb / n - mu_b * mu_b;
    let cov = sab / n - mu_a * mu_b;
    ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
        / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2))
}

/// Mean luma SSIM between two frames.
///
/// # Panics
///
/// Panics if the resolutions differ.
pub fn ssim_luma(a: &Frame, b: &Frame) -> f64 {
    ssim_plane(a.y(), b.y())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{Encoder, EncoderConfig};
    use crate::frame::Resolution;

    fn textured(res: Resolution, phase: usize) -> Frame {
        let mut f = Frame::grey(res);
        let (w, h) = (res.width() as usize, res.height() as usize);
        for y in 0..h {
            for x in 0..w {
                f.y_mut()
                    .put(x, y, (((x + phase) * 7 + y * 13) % 200 + 20) as u8);
            }
        }
        f
    }

    #[test]
    fn identical_frames_score_one() {
        let f = textured(Resolution::new(32, 32), 0);
        assert!((ssim_luma(&f, &f) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unrelated_frames_score_low() {
        let res = Resolution::new(32, 32);
        let a = textured(res, 0);
        let mut b = Frame::grey(res);
        for y in 0..32usize {
            for x in 0..32usize {
                b.y_mut().put(x, y, (((x * 31) ^ (y * 17)) % 256) as u8);
            }
        }
        assert!(ssim_luma(&a, &b) < 0.5);
    }

    #[test]
    fn ssim_orders_with_distortion() {
        let res = Resolution::new(48, 48);
        let f = textured(res, 0);
        let mut slight = f.clone();
        for v in slight.y_mut().data_mut().iter_mut().step_by(9) {
            *v = v.saturating_add(4);
        }
        let mut heavy = f.clone();
        for v in heavy.y_mut().data_mut().iter_mut().step_by(2) {
            *v = v.saturating_add(40);
        }
        let s_slight = ssim_luma(&f, &slight);
        let s_heavy = ssim_luma(&f, &heavy);
        assert!(s_slight > s_heavy, "{s_slight} vs {s_heavy}");
        assert!(s_slight > 0.9);
    }

    #[test]
    fn ssim_symmetric() {
        let res = Resolution::new(32, 32);
        let a = textured(res, 0);
        let b = textured(res, 3);
        assert!((ssim_luma(&a, &b) - ssim_luma(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn codec_quality_sweep_monotone_in_ssim() {
        // Higher encode quality must never reduce SSIM.
        let res = Resolution::new(64, 48);
        let f = textured(res, 1);
        let mut prev = 0.0f64;
        for q in [30u8, 60, 90] {
            let mut enc = Encoder::new(res, EncoderConfig::new(10, 0).with_quality(q));
            let ef = enc.encode_frame(&f);
            let dec = crate::decode::Decoder::decode_iframe(res, q, &ef.data).unwrap();
            let s = ssim_luma(&f, &dec);
            assert!(
                s >= prev - 1e-6,
                "SSIM must not fall as quality rises: q={q}, {s} < {prev}"
            );
            prev = s;
        }
        assert!(prev > 0.9, "quality 90 should reconstruct well: {prev}");
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn rejects_mismatched_sizes() {
        let a = Frame::grey(Resolution::new(16, 16));
        let b = Frame::grey(Resolution::new(32, 32));
        let _ = ssim_luma(&a, &b);
    }
}
