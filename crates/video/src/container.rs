//! The bitstream container: frame payloads plus a metadata index.
//!
//! The container is what makes SiEVE's I-frame seeker cheap: the serialized
//! layout keeps a compact frame table (type + length per frame) *ahead of*
//! the payload bytes, so frame types and byte ranges can be enumerated
//! without touching — let alone entropy-decoding — any payload. This mirrors
//! how the paper's seeker "searches through the video metadata and drops
//! every frame that is not of type I-frame".

use serde::{Deserialize, Serialize};

use crate::decode::{DecodeError, Decoder};
use crate::encode::{EncodedFrame, Encoder, EncoderConfig, FrameType};
use crate::frame::{Frame, Resolution};

/// Magic bytes identifying the container format.
pub const MAGIC: &[u8; 4] = b"SEV1";

/// Errors from parsing a serialized container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerError {
    /// Input does not start with [`MAGIC`] or is too short for the header.
    BadHeader,
    /// The frame table or payload region is truncated.
    Truncated,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::BadHeader => write!(f, "not a SEV1 container"),
            ContainerError::Truncated => write!(f, "container truncated"),
        }
    }
}

impl std::error::Error for ContainerError {}

/// Metadata for one frame, available without decoding anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Frame type (I or P).
    pub frame_type: FrameType,
    /// Byte offset of the payload within the serialized container.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// An encoded video held in memory: stream parameters plus every encoded
/// frame.
///
/// ```
/// use sieve_video::{EncodedVideo, EncoderConfig, Frame, Resolution};
/// let res = Resolution::new(32, 32);
/// let frames = (0..4).map(|_| Frame::grey(res));
/// let video = EncodedVideo::encode(res, 30, EncoderConfig::new(2, 0), frames);
/// assert_eq!(video.frame_count(), 4);
/// assert_eq!(video.i_frame_indices(), vec![0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncodedVideo {
    resolution: Resolution,
    fps: u32,
    quality: u8,
    frames: Vec<EncodedFrame>,
}

impl EncodedVideo {
    /// Creates an empty container.
    pub fn new(resolution: Resolution, fps: u32, quality: u8) -> Self {
        assert!(fps > 0, "fps must be non-zero");
        Self {
            resolution,
            fps,
            quality,
            frames: Vec::new(),
        }
    }

    /// Encodes an entire frame sequence with `config`.
    pub fn encode<I>(resolution: Resolution, fps: u32, config: EncoderConfig, frames: I) -> Self
    where
        I: IntoIterator<Item = Frame>,
    {
        let mut enc = Encoder::new(resolution, config);
        let mut video = Self::new(resolution, fps, config.quality);
        for f in frames {
            video.push(enc.encode_frame(&f));
        }
        video
    }

    /// Encodes an entire frame sequence with up to `workers` threads using
    /// the GOP-parallel pipeline ([`crate::parallel`]). The resulting
    /// container is byte-identical to [`EncodedVideo::encode`]'s.
    pub fn encode_parallel(
        resolution: Resolution,
        fps: u32,
        config: EncoderConfig,
        frames: &[Frame],
        workers: usize,
    ) -> Self {
        let (frames, _) =
            crate::parallel::encode_parallel_with_decisions(resolution, config, frames, workers);
        let mut video = Self::new(resolution, fps, config.quality);
        video.frames = frames;
        video
    }

    /// Appends an encoded frame.
    pub fn push(&mut self, frame: EncodedFrame) {
        self.frames.push(frame);
    }

    /// Stream resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Frames per second.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Quantizer quality the stream was encoded with.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// All encoded frames, in display order.
    pub fn frames(&self) -> &[EncodedFrame] {
        &self.frames
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> f64 {
        self.frames.len() as f64 / self.fps as f64
    }

    /// Indices of the I-frames — the in-memory equivalent of scanning the
    /// container index.
    pub fn i_frame_indices(&self) -> Vec<usize> {
        self.frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.frame_type == FrameType::I)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total payload bytes across all frames.
    pub fn total_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.data.len() as u64).sum()
    }

    /// Total payload bytes of frames of the given type.
    pub fn bytes_of_type(&self, t: FrameType) -> u64 {
        self.frames
            .iter()
            .filter(|f| f.frame_type == t)
            .map(|f| f.data.len() as u64)
            .sum()
    }

    /// Decodes the I-frame at `index` independently.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::FrameOutOfRange`] if `index` is outside the
    /// stream, [`DecodeError::NotAnIFrame`] if the frame at `index` is a
    /// P-frame, or a bitstream error on corruption.
    pub fn decode_iframe_at(&self, index: usize) -> Result<Frame, DecodeError> {
        let ef = self.frames.get(index).ok_or(DecodeError::FrameOutOfRange)?;
        if ef.frame_type != FrameType::I {
            return Err(DecodeError::NotAnIFrame);
        }
        Decoder::decode_iframe(self.resolution, self.quality, &ef.data)
    }

    /// Decodes every frame (the classical full-decode pipeline). Used by the
    /// image-similarity baselines.
    ///
    /// # Errors
    ///
    /// Propagates the first decode failure.
    pub fn decode_all(&self) -> Result<Vec<Frame>, DecodeError> {
        let mut dec = Decoder::new(self.resolution, self.quality);
        let mut out = Vec::with_capacity(self.frames.len());
        dec.decode_batch(&self.frames, |_, f| out.push(f.clone()))?;
        Ok(out)
    }

    /// Serializes to the `SEV1` byte format: header, frame table, payloads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.frames.len() * 5 + self.total_bytes() as usize);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.resolution.width().to_le_bytes());
        out.extend_from_slice(&self.resolution.height().to_le_bytes());
        out.extend_from_slice(&self.fps.to_le_bytes());
        out.push(self.quality);
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for f in &self.frames {
            out.push(match f.frame_type {
                FrameType::I => 0u8,
                FrameType::P => 1u8,
            });
            out.extend_from_slice(&(f.data.len() as u32).to_le_bytes());
        }
        for f in &self.frames {
            out.extend_from_slice(&f.data);
        }
        out
    }

    /// Parses a full container (index + payloads) from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ContainerError`] on bad magic or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ContainerError> {
        let index = VideoIndex::parse(bytes)?;
        let mut frames = Vec::with_capacity(index.entries.len());
        for meta in &index.entries {
            let start = meta.offset as usize;
            let end = start + meta.len as usize;
            if end > bytes.len() {
                return Err(ContainerError::Truncated);
            }
            frames.push(EncodedFrame {
                frame_type: meta.frame_type,
                data: bytes[start..end].to_vec(),
            });
        }
        Ok(Self {
            resolution: index.resolution,
            fps: index.fps,
            quality: index.quality,
            frames,
        })
    }
}

/// The metadata index of a serialized container: everything the I-frame
/// seeker needs, obtained *without* reading any payload bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoIndex {
    /// Stream resolution.
    pub resolution: Resolution,
    /// Frames per second.
    pub fps: u32,
    /// Encode quality.
    pub quality: u8,
    /// One entry per frame, in display order.
    pub entries: Vec<FrameMeta>,
}

impl VideoIndex {
    /// Parses only the header and frame table of a serialized container.
    /// Cost is proportional to the frame *count*, not the payload bytes —
    /// this is the cheap metadata scan at the core of the I-frame seeker.
    ///
    /// # Errors
    ///
    /// Returns [`ContainerError`] on bad magic or truncated table.
    pub fn parse(bytes: &[u8]) -> Result<Self, ContainerError> {
        if bytes.len() < 21 || &bytes[..4] != MAGIC {
            return Err(ContainerError::BadHeader);
        }
        let rd_u32 =
            |o: usize| u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]]);
        let width = rd_u32(4);
        let height = rd_u32(8);
        let fps = rd_u32(12);
        let quality = bytes[16];
        let count = rd_u32(17) as usize;
        let table_start = 21;
        let table_len = count.checked_mul(5).ok_or(ContainerError::Truncated)?;
        if bytes.len() < table_start + table_len {
            return Err(ContainerError::Truncated);
        }
        if width == 0 || height == 0 || width % 2 != 0 || height % 2 != 0 || fps == 0 {
            return Err(ContainerError::BadHeader);
        }
        let mut entries = Vec::with_capacity(count);
        let mut offset = (table_start + table_len) as u64;
        for i in 0..count {
            let o = table_start + i * 5;
            let frame_type = match bytes[o] {
                0 => FrameType::I,
                1 => FrameType::P,
                _ => return Err(ContainerError::BadHeader),
            };
            let len = rd_u32(o + 1);
            entries.push(FrameMeta {
                frame_type,
                offset,
                len,
            });
            offset += len as u64;
        }
        Ok(Self {
            resolution: Resolution::new(width, height),
            fps,
            quality,
            entries,
        })
    }

    /// Number of frames in the stream.
    pub fn frame_count(&self) -> usize {
        self.entries.len()
    }

    /// Iterator over `(frame_index, meta)` of I-frames only.
    pub fn i_frames(&self) -> impl Iterator<Item = (usize, &FrameMeta)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, m)| m.frame_type == FrameType::I)
    }

    /// Decodes the I-frame described by `meta` from the serialized container
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if `meta` does not describe an I-frame or
    /// the payload is corrupt.
    pub fn decode_iframe(&self, bytes: &[u8], meta: &FrameMeta) -> Result<Frame, DecodeError> {
        if meta.frame_type != FrameType::I {
            return Err(DecodeError::NotAnIFrame);
        }
        let start = meta.offset as usize;
        let end = start + meta.len as usize;
        if end > bytes.len() {
            return Err(DecodeError::Bitstream);
        }
        Decoder::decode_iframe(self.resolution, self.quality, &bytes[start..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_video() -> EncodedVideo {
        let res = Resolution::new(48, 32);
        let frames: Vec<Frame> = (0..10)
            .map(|i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 5 + i) % 200) as u8);
                    }
                }
                f
            })
            .collect();
        EncodedVideo::encode(res, 30, EncoderConfig::new(4, 0), frames)
    }

    #[test]
    fn encode_gop_structure() {
        let v = sample_video();
        assert_eq!(v.frame_count(), 10);
        assert_eq!(v.i_frame_indices(), vec![0, 4, 8]);
        assert!((v.duration_secs() - 10.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn serialize_roundtrip() {
        let v = sample_video();
        let bytes = v.to_bytes();
        let back = EncodedVideo::from_bytes(&bytes).expect("parse");
        assert_eq!(v, back);
    }

    #[test]
    fn index_matches_in_memory_view() {
        let v = sample_video();
        let bytes = v.to_bytes();
        let idx = VideoIndex::parse(&bytes).expect("index");
        assert_eq!(idx.frame_count(), v.frame_count());
        assert_eq!(idx.resolution, v.resolution());
        let i_from_idx: Vec<usize> = idx.i_frames().map(|(i, _)| i).collect();
        assert_eq!(i_from_idx, v.i_frame_indices());
        for (meta, frame) in idx.entries.iter().zip(v.frames()) {
            assert_eq!(meta.len as usize, frame.data.len());
        }
    }

    #[test]
    fn iframe_decode_via_index_matches_direct() {
        let v = sample_video();
        let bytes = v.to_bytes();
        let idx = VideoIndex::parse(&bytes).expect("index");
        for (i, meta) in idx.i_frames() {
            let via_index = idx.decode_iframe(&bytes, meta).expect("decode");
            let direct = v.decode_iframe_at(i).expect("decode");
            assert_eq!(via_index, direct);
        }
    }

    #[test]
    fn decode_iframe_rejects_p() {
        let v = sample_video();
        assert_eq!(v.decode_iframe_at(1).unwrap_err(), DecodeError::NotAnIFrame);
    }

    #[test]
    fn parse_rejects_bad_magic() {
        assert_eq!(
            VideoIndex::parse(b"NOPE....................").unwrap_err(),
            ContainerError::BadHeader
        );
    }

    #[test]
    fn parse_rejects_truncated_table() {
        let v = sample_video();
        let bytes = v.to_bytes();
        assert_eq!(
            VideoIndex::parse(&bytes[..22]).unwrap_err(),
            ContainerError::Truncated
        );
    }

    #[test]
    fn from_bytes_rejects_truncated_payload() {
        let v = sample_video();
        let bytes = v.to_bytes();
        assert_eq!(
            EncodedVideo::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err(),
            ContainerError::Truncated
        );
    }

    #[test]
    fn decode_all_returns_every_frame() {
        let v = sample_video();
        let frames = v.decode_all().expect("decode all");
        assert_eq!(frames.len(), 10);
    }

    #[test]
    fn byte_accounting() {
        let v = sample_video();
        assert_eq!(
            v.total_bytes(),
            v.bytes_of_type(FrameType::I) + v.bytes_of_type(FrameType::P)
        );
        assert!(v.bytes_of_type(FrameType::I) > 0);
    }
}
