//! 8x8 type-II DCT and its inverse, the transform used for both intra blocks
//! and inter residuals.
//!
//! The implementation is the separable floating-point orthonormal DCT,
//! dispatched through [`crate::kernels`] to an AVX2 path when the host has
//! one; the orthonormal form keeps quantization error analysis simple. The
//! inverse rounds ties away from zero (see the kernels module for why that
//! formula is shared with the SIMD tier).

use crate::kernels;

/// Number of samples along one side of a transform block.
pub const BLOCK: usize = 8;

/// Number of samples in a transform block.
pub const BLOCK_LEN: usize = BLOCK * BLOCK;

/// Forward 8x8 DCT-II of spatial samples (level-shifted by the caller if
/// desired). `input` and `output` are row-major 64-element blocks.
pub fn forward(input: &[i32; BLOCK_LEN], output: &mut [f32; BLOCK_LEN]) {
    kernels::dct8_forward(input, output);
}

/// Inverse 8x8 DCT-II (i.e. DCT-III), producing spatial samples rounded to
/// integers.
pub fn inverse(input: &[f32; BLOCK_LEN], output: &mut [i32; BLOCK_LEN]) {
    kernels::dct8_inverse(input, output);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_only_for_flat_block() {
        let input = [100i32; BLOCK_LEN];
        let mut coeffs = [0f32; BLOCK_LEN];
        forward(&input, &mut coeffs);
        assert!((coeffs[0] - 800.0).abs() < 1e-2, "DC = 8 * value");
        for &c in &coeffs[1..] {
            assert!(c.abs() < 1e-3, "AC coefficients must vanish, got {c}");
        }
    }

    #[test]
    fn roundtrip_is_exact_within_rounding() {
        let mut input = [0i32; BLOCK_LEN];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i * 37) % 256) as i32 - 128;
        }
        let mut coeffs = [0f32; BLOCK_LEN];
        let mut back = [0i32; BLOCK_LEN];
        forward(&input, &mut coeffs);
        inverse(&coeffs, &mut back);
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() <= 1, "roundtrip error too large: {a} vs {b}");
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let mut input = [0i32; BLOCK_LEN];
        for (i, v) in input.iter_mut().enumerate() {
            *v = (((i * 97) % 200) as i32) - 100;
        }
        let mut coeffs = [0f32; BLOCK_LEN];
        forward(&input, &mut coeffs);
        let spatial: f64 = input.iter().map(|&v| (v as f64) * (v as f64)).sum();
        let freq: f64 = coeffs.iter().map(|&v| (v as f64) * (v as f64)).sum();
        assert!(
            (spatial - freq).abs() / spatial.max(1.0) < 1e-4,
            "orthonormal DCT must preserve energy"
        );
    }

    #[test]
    fn linearity() {
        let a = [10i32; BLOCK_LEN];
        let mut b = [0i32; BLOCK_LEN];
        for (i, v) in b.iter_mut().enumerate() {
            *v = (i % 16) as i32;
        }
        let mut sum = [0i32; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            sum[i] = a[i] + b[i];
        }
        let (mut ca, mut cb, mut cs) = ([0f32; BLOCK_LEN], [0f32; BLOCK_LEN], [0f32; BLOCK_LEN]);
        forward(&a, &mut ca);
        forward(&b, &mut cb);
        forward(&sum, &mut cs);
        for i in 0..BLOCK_LEN {
            assert!((ca[i] + cb[i] - cs[i]).abs() < 1e-2);
        }
    }
}
