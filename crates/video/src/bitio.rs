//! Bit-level reader and writer used by the entropy coder.
//!
//! Bits are packed MSB-first into bytes, the convention used by H.26x
//! bitstreams. The writer produces a `Vec<u8>`; the reader consumes a byte
//! slice. Exp-Golomb helpers live here because both the encoder and decoder
//! need them for header fields, motion vectors, and coefficient levels.

/// Error returned when a [`BitReader`] runs out of input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBitsError;

impl std::fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitstream exhausted")
    }
}

impl std::error::Error for ReadBitsError {}

/// MSB-first bit writer.
///
/// ```
/// use sieve_video::bitio::{BitReader, BitWriter};
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_ue(17);
/// let bytes = w.finish();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3).unwrap(), 0b101);
/// assert_eq!(r.read_ue().unwrap(), 17);
/// ```
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    // At most 7 pending bits, right-aligned in `acc`.
    acc: u64,
    nbits: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer that reuses `buf`'s allocation (the buffer is
    /// cleared first). Pairs with [`BitWriter::finish`] so the encoder can
    /// recycle one payload `Vec` across frames.
    pub fn with_buf(mut buf: Vec<u8>) -> Self {
        buf.clear();
        Self {
            buf,
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the low `count` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 64`.
    pub fn write_bits(&mut self, value: u64, count: u8) {
        assert!(count <= 64, "cannot write more than 64 bits at once");
        if count > 32 {
            self.write_bits(value >> 32, count - 32);
            self.write_bits(value & 0xFFFF_FFFF, 32);
            return;
        }
        if count == 0 {
            return;
        }
        // count <= 32 and nbits <= 7, so everything fits in the u64
        // accumulator; drain whole bytes, keep the tail for the next call.
        let mut acc = (self.acc << count) | (value & ((1u64 << count) - 1));
        let mut n = self.nbits + count;
        while n >= 8 {
            n -= 8;
            self.buf.push((acc >> n) as u8);
        }
        acc &= (1u64 << n) - 1;
        self.acc = acc;
        self.nbits = n;
    }

    /// Writes a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Writes an unsigned Exp-Golomb code (as in H.264 `ue(v)`).
    pub fn write_ue(&mut self, value: u64) {
        let v = value + 1;
        let nbits = 64 - v.leading_zeros() as u8;
        if nbits <= 32 {
            // One call writes the `nbits - 1` leading zeros and the value:
            // the zeros are the high bits of the widened field.
            self.write_bits(v, 2 * nbits - 1);
        } else {
            self.write_bits(0, nbits - 1);
            self.write_bits(v, nbits);
        }
    }

    /// Writes a signed Exp-Golomb code (as in H.264 `se(v)`).
    pub fn write_se(&mut self, value: i64) {
        let mapped = if value > 0 {
            (value as u64) * 2 - 1
        } else {
            (-value as u64) * 2
        };
        self.write_ue(mapped);
    }

    /// Number of complete bytes plus any partial byte currently buffered.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.buf.push((self.acc as u8) << (8 - self.nbits));
        }
        self.buf
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize, // bit position
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Number of bits consumed so far.
    pub fn bits_read(&self) -> usize {
        self.pos
    }

    /// Reads `count` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] if fewer than `count` bits remain.
    pub fn read_bits(&mut self, count: u8) -> Result<u64, ReadBitsError> {
        assert!(count <= 64, "cannot read more than 64 bits at once");
        if self.pos + count as usize > self.data.len() * 8 {
            return Err(ReadBitsError);
        }
        // Consume byte-sized chunks: the partial head byte, then whole
        // bytes, then whatever remains.
        let mut out = 0u64;
        let mut remaining = count as usize;
        while remaining > 0 {
            let byte = self.data[self.pos / 8];
            let off = self.pos % 8;
            let avail = 8 - off;
            let take = avail.min(remaining);
            let bits = (byte >> (avail - take)) & (((1u16 << take) - 1) as u8);
            out = (out << take) | bits as u64;
            self.pos += take;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] at end of input.
    pub fn read_bit(&mut self) -> Result<bool, ReadBitsError> {
        Ok(self.read_bits(1)? == 1)
    }

    /// Reads an unsigned Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] on truncated input.
    pub fn read_ue(&mut self) -> Result<u64, ReadBitsError> {
        // Scan for the terminating 1 bit a byte at a time: shift out the
        // consumed bits of the current byte and count leading zeros in what
        // remains.
        let total = self.data.len() * 8;
        let mut zeros = 0u64;
        loop {
            if self.pos >= total || zeros > 63 {
                return Err(ReadBitsError);
            }
            let off = self.pos % 8;
            let avail = (8 - off) as u32;
            let window = self.data[self.pos / 8] << off;
            let lz = window.leading_zeros().min(avail);
            zeros += lz as u64;
            self.pos += lz as usize;
            if lz < avail {
                break;
            }
        }
        if zeros > 63 {
            return Err(ReadBitsError);
        }
        self.pos += 1; // the 1 bit itself
        let zeros = zeros as u8;
        let rest = if zeros == 0 {
            0
        } else {
            self.read_bits(zeros)?
        };
        // (1 << zeros) + rest - 1 never underflows: the leading 1 bit
        // guarantees the sum is at least 1.
        Ok((1u64 << zeros) + rest - 1)
    }

    /// Reads a signed Exp-Golomb code.
    ///
    /// # Errors
    ///
    /// Returns [`ReadBitsError`] on truncated input.
    pub fn read_se(&mut self) -> Result<i64, ReadBitsError> {
        let v = self.read_ue()?;
        if v % 2 == 1 {
            Ok(v.div_ceil(2) as i64)
        } else {
            Ok(-((v / 2) as i64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1101, 4);
        w.write_bit(true);
        w.write_bits(0xABCD, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4).unwrap(), 0b1101);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
    }

    #[test]
    fn ue_known_values() {
        // Classic Exp-Golomb table: 0 -> "1", 1 -> "010", 2 -> "011".
        let mut w = BitWriter::new();
        w.write_ue(0);
        w.write_ue(1);
        w.write_ue(2);
        let bytes = w.finish();
        // 1 010 011 padded -> 1010_0110
        assert_eq!(bytes, vec![0b1010_0110]);
    }

    #[test]
    fn ue_roundtrip_many() {
        let mut w = BitWriter::new();
        let values: Vec<u64> = (0..200).chain([1 << 20, (1 << 33) + 7]).collect();
        for &v in &values {
            w.write_ue(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_ue().unwrap(), v);
        }
    }

    #[test]
    fn se_roundtrip() {
        let mut w = BitWriter::new();
        let values: Vec<i64> = (-40..=40).chain([-100_000, 100_000]).collect();
        for &v in &values {
            w.write_se(v);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read_se().unwrap(), v);
        }
    }

    #[test]
    fn reader_errors_at_end() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 8);
        assert_eq!(w.bit_len(), 11);
        assert_eq!(w.finish().len(), 2);
    }
}
