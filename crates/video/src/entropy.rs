//! Entropy coding of quantized coefficient blocks.
//!
//! Coefficients are zigzag-scanned and coded as (zero-run, level) pairs with
//! Exp-Golomb codes plus an explicit end-of-block marker — structurally the
//! CAVLC-lite scheme of early H.264 profiles. Decoding a block therefore
//! costs real per-coefficient work, which is exactly the cost the SiEVE
//! I-frame seeker avoids for P-frames.

use crate::bitio::{BitReader, BitWriter, ReadBitsError};
use crate::dct::BLOCK_LEN;

/// Zigzag scan order for an 8x8 block (JPEG / MPEG order).
pub const ZIGZAG: [usize; BLOCK_LEN] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Writes one quantized 8x8 block.
///
/// Layout: `[ (run: ue, level: se)* , run = BLOCK_LEN (EOB) ]` over the
/// zigzag-scanned coefficients. The DC coefficient participates like any
/// other coefficient; callers that delta-code DC do so before calling this.
pub fn encode_block(levels: &[i32; BLOCK_LEN], w: &mut BitWriter) {
    let mut run = 0u64;
    for &zz in ZIGZAG.iter() {
        let v = levels[zz];
        if v == 0 {
            run += 1;
        } else {
            w.write_ue(run);
            w.write_se(v as i64);
            run = 0;
        }
    }
    // EOB: a run that skips past the end of the block.
    w.write_ue(BLOCK_LEN as u64);
}

/// Reads one quantized 8x8 block written by [`encode_block`].
///
/// # Errors
///
/// Returns [`ReadBitsError`] if the bitstream is truncated or malformed.
pub fn decode_block(r: &mut BitReader<'_>) -> Result<[i32; BLOCK_LEN], ReadBitsError> {
    let mut levels = [0i32; BLOCK_LEN];
    let mut pos = 0usize;
    loop {
        let run = r.read_ue()? as usize;
        if run >= BLOCK_LEN {
            break; // EOB
        }
        pos += run;
        if pos >= BLOCK_LEN {
            // A run that lands past the end without the EOB marker is
            // malformed input.
            return Err(ReadBitsError);
        }
        let level = r.read_se()?;
        levels[ZIGZAG[pos]] = level as i32;
        pos += 1;
        if pos >= BLOCK_LEN {
            // Block is full; the EOB marker must follow.
            let eob = r.read_ue()? as usize;
            if eob < BLOCK_LEN {
                return Err(ReadBitsError);
            }
            return Ok(levels);
        }
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(levels: [i32; BLOCK_LEN]) {
        let mut w = BitWriter::new();
        encode_block(&levels, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let back = decode_block(&mut r).expect("decode");
        assert_eq!(levels, back);
    }

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; BLOCK_LEN];
        for &z in ZIGZAG.iter() {
            assert!(!seen[z], "duplicate zigzag index {z}");
            seen[z] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn roundtrip_zero_block() {
        roundtrip([0; BLOCK_LEN]);
    }

    #[test]
    fn roundtrip_dc_only() {
        let mut l = [0; BLOCK_LEN];
        l[0] = -37;
        roundtrip(l);
    }

    #[test]
    fn roundtrip_dense_block() {
        let mut l = [0; BLOCK_LEN];
        for (i, v) in l.iter_mut().enumerate() {
            *v = (i as i32 % 7) - 3;
        }
        roundtrip(l);
    }

    #[test]
    fn roundtrip_last_coefficient_only() {
        let mut l = [0; BLOCK_LEN];
        l[63] = 5;
        roundtrip(l);
    }

    #[test]
    fn roundtrip_alternating() {
        let mut l = [0; BLOCK_LEN];
        for i in (0..BLOCK_LEN).step_by(2) {
            l[i] = if i % 4 == 0 { 100 } else { -100 };
        }
        roundtrip(l);
    }

    #[test]
    fn zero_block_is_tiny() {
        let mut w = BitWriter::new();
        encode_block(&[0; BLOCK_LEN], &mut w);
        // EOB only: ue(64) is 13 bits -> 2 bytes after padding.
        assert!(w.finish().len() <= 2, "all-zero block must cost ~2 bytes");
    }

    #[test]
    fn sparse_blocks_cost_less_than_dense() {
        let mut sparse = [0; BLOCK_LEN];
        sparse[0] = 12;
        let mut dense = [0; BLOCK_LEN];
        for (i, v) in dense.iter_mut().enumerate() {
            *v = i as i32 - 32;
        }
        let mut ws = BitWriter::new();
        encode_block(&sparse, &mut ws);
        let mut wd = BitWriter::new();
        encode_block(&dense, &mut wd);
        assert!(ws.bit_len() < wd.bit_len());
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = BitWriter::new();
        let mut l = [0; BLOCK_LEN];
        l[0] = 1000;
        l[63] = -1000;
        encode_block(&l, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes[..bytes.len() - 1]);
        assert!(decode_block(&mut r).is_err());
    }
}
