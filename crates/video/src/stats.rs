//! Bitstream statistics: frame-type mix, byte accounting, filtering rate.
//!
//! The *filtering rate* (fraction of frames that are **not** I-frames) is one
//! half of the paper's tuning objective; the other half, event-detection
//! accuracy, lives in `sieve-core` because it needs ground-truth labels.

use serde::{Deserialize, Serialize};

use crate::container::{EncodedVideo, VideoIndex};
use crate::encode::FrameType;

/// Summary statistics of an encoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitstreamStats {
    /// Total number of frames.
    pub frame_count: usize,
    /// Number of I-frames.
    pub i_frames: usize,
    /// Number of P-frames.
    pub p_frames: usize,
    /// Total payload bytes.
    pub total_bytes: u64,
    /// Payload bytes in I-frames.
    pub i_bytes: u64,
    /// Payload bytes in P-frames.
    pub p_bytes: u64,
}

impl BitstreamStats {
    /// Computes statistics from an in-memory video.
    pub fn from_video(video: &EncodedVideo) -> Self {
        let mut s = Self::empty();
        for f in video.frames() {
            s.add(f.frame_type, f.data.len() as u64);
        }
        s
    }

    /// Computes statistics from a metadata index (no payload access).
    pub fn from_index(index: &VideoIndex) -> Self {
        let mut s = Self::empty();
        for m in &index.entries {
            s.add(m.frame_type, m.len as u64);
        }
        s
    }

    fn empty() -> Self {
        Self {
            frame_count: 0,
            i_frames: 0,
            p_frames: 0,
            total_bytes: 0,
            i_bytes: 0,
            p_bytes: 0,
        }
    }

    fn add(&mut self, t: FrameType, bytes: u64) {
        self.frame_count += 1;
        self.total_bytes += bytes;
        match t {
            FrameType::I => {
                self.i_frames += 1;
                self.i_bytes += bytes;
            }
            FrameType::P => {
                self.p_frames += 1;
                self.p_bytes += bytes;
            }
        }
    }

    /// Fraction of frames that are I-frames, in `[0, 1]`.
    pub fn i_frame_rate(&self) -> f64 {
        if self.frame_count == 0 {
            0.0
        } else {
            self.i_frames as f64 / self.frame_count as f64
        }
    }

    /// The paper's filtering rate `fr`: fraction of frames that are *not*
    /// I-frames and therefore never decoded or analysed.
    pub fn filtering_rate(&self) -> f64 {
        if self.frame_count == 0 {
            0.0
        } else {
            self.p_frames as f64 / self.frame_count as f64
        }
    }

    /// Mean I-frame payload size in bytes (0 when there are none).
    pub fn mean_i_frame_bytes(&self) -> f64 {
        if self.i_frames == 0 {
            0.0
        } else {
            self.i_bytes as f64 / self.i_frames as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::EncoderConfig;
    use crate::frame::{Frame, Resolution};

    fn video(gop: usize, n: usize) -> EncodedVideo {
        let res = Resolution::new(32, 32);
        let frames = (0..n).map(move |i| {
            let mut f = Frame::grey(res);
            for y in 0..32usize {
                for x in 0..32usize {
                    f.y_mut().put(x, y, ((x * 7 + y * 11 + i) % 255) as u8);
                }
            }
            f
        });
        EncodedVideo::encode(res, 30, EncoderConfig::new(gop, 0), frames)
    }

    #[test]
    fn counts_and_rates() {
        let v = video(5, 20);
        let s = BitstreamStats::from_video(&v);
        assert_eq!(s.frame_count, 20);
        assert_eq!(s.i_frames, 4);
        assert_eq!(s.p_frames, 16);
        assert!((s.i_frame_rate() - 0.2).abs() < 1e-12);
        assert!((s.filtering_rate() - 0.8).abs() < 1e-12);
        assert_eq!(s.total_bytes, s.i_bytes + s.p_bytes);
    }

    #[test]
    fn index_and_video_agree() {
        let v = video(4, 12);
        let from_video = BitstreamStats::from_video(&v);
        let bytes = v.to_bytes();
        let from_index = BitstreamStats::from_index(&VideoIndex::parse(&bytes).unwrap());
        assert_eq!(from_video, from_index);
    }

    #[test]
    fn empty_stream_rates_are_zero() {
        let v = EncodedVideo::new(Resolution::new(16, 16), 30, 75);
        let s = BitstreamStats::from_video(&v);
        assert_eq!(s.i_frame_rate(), 0.0);
        assert_eq!(s.filtering_rate(), 0.0);
        assert_eq!(s.mean_i_frame_bytes(), 0.0);
    }

    #[test]
    fn mean_i_frame_bytes_positive() {
        let v = video(3, 9);
        let s = BitstreamStats::from_video(&v);
        assert!(s.mean_i_frame_bytes() > 0.0);
    }
}
