//! Raw video frames in YUV 4:2:0 planar format.
//!
//! The codec in this crate operates on [`Frame`]s: a full-resolution luma
//! (Y) plane and quarter-resolution chroma (U, V) planes, the layout used by
//! virtually every surveillance-camera encoder. Frames are the interface
//! between the synthetic scene renderer (`sieve-datasets`), the encoder
//! ([`crate::encode`]), the similarity baselines (`sieve-filters`) and the
//! neural network (`sieve-nn`).

use serde::{Deserialize, Serialize};

/// Frame dimensions in pixels.
///
/// Width and height are kept even so that the 4:2:0 chroma planes have an
/// exact half resolution; [`Resolution::new`] validates this.
///
/// ```
/// use sieve_video::Resolution;
/// let r = Resolution::new(640, 400);
/// assert_eq!(r.luma_len(), 640 * 400);
/// assert_eq!(r.chroma_len(), 320 * 200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Resolution {
    width: u32,
    height: u32,
}

impl Resolution {
    /// Creates a resolution.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or odd (4:2:0 chroma requires even
    /// dimensions).
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "resolution must be non-zero");
        assert!(
            width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 frames require even dimensions, got {width}x{height}"
        );
        Self { width, height }
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of samples in the luma plane.
    pub fn luma_len(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of samples in each chroma plane.
    pub fn chroma_len(&self) -> usize {
        (self.width as usize / 2) * (self.height as usize / 2)
    }

    /// Total number of raw bytes in a frame at this resolution.
    pub fn raw_bytes(&self) -> usize {
        self.luma_len() + 2 * self.chroma_len()
    }

    /// Number of 16x16 macroblocks horizontally (rounded up).
    pub fn mb_cols(&self) -> usize {
        (self.width as usize).div_ceil(16)
    }

    /// Number of 16x16 macroblocks vertically (rounded up).
    pub fn mb_rows(&self) -> usize {
        (self.height as usize).div_ceil(16)
    }
}

impl std::fmt::Display for Resolution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A single image plane: a rectangle of 8-bit samples.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane filled with `value`.
    pub fn filled(width: usize, height: usize, value: u8) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates a plane from existing samples.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), width * height, "plane data length mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Plane width in samples.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Immutable access to the raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw samples, row-major.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)`, clamped to the plane edges.
    ///
    /// Edge clamping mirrors what hardware encoders do for motion search that
    /// reaches outside the picture.
    pub fn sample_clamped(&self, x: i64, y: i64) -> u8 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn sample(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "sample out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the sample at `(x, y)`; out-of-bounds writes are ignored.
    pub fn put(&mut self, x: usize, y: usize, v: u8) {
        if x < self.width && y < self.height {
            self.data[y * self.width + x] = v;
        }
    }

    /// Copies an 8x8 block starting at `(bx*8, by*8)` into `out`, clamping at
    /// the plane edges.
    pub fn get_block8(&self, bx: usize, by: usize, out: &mut [i32; 64]) {
        let x0 = bx * 8;
        let y0 = by * 8;
        // Fast path: fully interior block — straight row reads the compiler
        // can vectorize, no per-sample clamping.
        if x0 + 8 <= self.width && y0 + 8 <= self.height {
            for dy in 0..8 {
                let row = &self.data[(y0 + dy) * self.width + x0..][..8];
                for dx in 0..8 {
                    out[dy * 8 + dx] = row[dx] as i32;
                }
            }
            return;
        }
        for dy in 0..8 {
            for dx in 0..8 {
                out[dy * 8 + dx] = self.sample_clamped((x0 + dx) as i64, (y0 + dy) as i64) as i32;
            }
        }
    }

    /// Writes an 8x8 block of reconstructed samples at `(bx*8, by*8)`,
    /// clamping sample values to `0..=255` and ignoring out-of-picture texels.
    pub fn put_block8(&mut self, bx: usize, by: usize, block: &[i32; 64]) {
        let x0 = bx * 8;
        let y0 = by * 8;
        // Fast path: fully interior block — straight row writes.
        if x0 + 8 <= self.width && y0 + 8 <= self.height {
            for dy in 0..8 {
                let row = &mut self.data[(y0 + dy) * self.width + x0..][..8];
                for dx in 0..8 {
                    row[dx] = block[dy * 8 + dx].clamp(0, 255) as u8;
                }
            }
            return;
        }
        for dy in 0..8 {
            for dx in 0..8 {
                self.put(x0 + dx, y0 + dy, block[dy * 8 + dx].clamp(0, 255) as u8);
            }
        }
    }

    /// Copies a `size`x`size` block from `src` displaced by `(mvx, mvy)` into
    /// this plane at `(x, y)`, clamping reads at `src`'s edges — the
    /// motion-compensated SKIP copy. Interior copies are straight `memcpy`
    /// rows.
    pub fn copy_block_from(
        &mut self,
        src: &Plane,
        x: usize,
        y: usize,
        size: usize,
        mvx: i64,
        mvy: i64,
    ) {
        let sx = x as i64 + mvx;
        let sy = y as i64 + mvy;
        if x + size <= self.width
            && y + size <= self.height
            && sx >= 0
            && sy >= 0
            && sx as usize + size <= src.width
            && sy as usize + size <= src.height
        {
            let (sx, sy) = (sx as usize, sy as usize);
            for dy in 0..size {
                let srow = &src.data[(sy + dy) * src.width + sx..][..size];
                self.data[(y + dy) * self.width + x..][..size].copy_from_slice(srow);
            }
            return;
        }
        for dy in 0..size {
            for dx in 0..size {
                let v = src.sample_clamped(x as i64 + dx as i64 + mvx, y as i64 + dy as i64 + mvy);
                self.put(x + dx, y + dy, v);
            }
        }
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| v as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Downscales by simple box filtering to `(new_w, new_h)`.
    pub fn resize_box(&self, new_w: usize, new_h: usize) -> Plane {
        let mut out = Plane::filled(1, 1, 0);
        self.resize_box_into(new_w, new_h, &mut out);
        out
    }

    /// [`Plane::resize_box`] into an existing plane, reusing its buffer —
    /// the encoder's lookahead calls this once per frame and must not
    /// allocate in steady state.
    pub fn resize_box_into(&self, new_w: usize, new_h: usize, out: &mut Plane) {
        assert!(new_w > 0 && new_h > 0, "resize target must be non-zero");
        out.width = new_w;
        out.height = new_h;
        out.data.clear();
        out.data.resize(new_w * new_h, 0);
        for oy in 0..new_h {
            let sy0 = oy * self.height / new_h;
            let sy1 = (((oy + 1) * self.height).div_ceil(new_h)).max(sy0 + 1);
            for ox in 0..new_w {
                let sx0 = ox * self.width / new_w;
                let sx1 = (((ox + 1) * self.width).div_ceil(new_w)).max(sx0 + 1);
                let mut acc = 0u64;
                let mut n = 0u64;
                for sy in sy0..sy1.min(self.height) {
                    for sx in sx0..sx1.min(self.width) {
                        acc += self.data[sy * self.width + sx] as u64;
                        n += 1;
                    }
                }
                out.data[oy * new_w + ox] = acc.checked_div(n).unwrap_or(0) as u8;
            }
        }
    }
}

/// A YUV 4:2:0 video frame.
///
/// ```
/// use sieve_video::{Frame, Resolution};
/// let f = Frame::filled(Resolution::new(64, 48), 16, 128, 128);
/// assert_eq!(f.y().data().len(), 64 * 48);
/// assert_eq!(f.u().data().len(), 32 * 24);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    resolution: Resolution,
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a frame with constant Y/U/V values.
    pub fn filled(resolution: Resolution, y: u8, u: u8, v: u8) -> Self {
        let (w, h) = (resolution.width() as usize, resolution.height() as usize);
        Self {
            resolution,
            y: Plane::filled(w, h, y),
            u: Plane::filled(w / 2, h / 2, u),
            v: Plane::filled(w / 2, h / 2, v),
        }
    }

    /// A mid-grey frame, the conventional "no signal" test pattern.
    pub fn grey(resolution: Resolution) -> Self {
        Self::filled(resolution, 128, 128, 128)
    }

    /// Builds a frame from three planes.
    ///
    /// # Panics
    ///
    /// Panics if the plane dimensions do not match a 4:2:0 layout for
    /// `resolution`.
    pub fn from_planes(resolution: Resolution, y: Plane, u: Plane, v: Plane) -> Self {
        let (w, h) = (resolution.width() as usize, resolution.height() as usize);
        assert_eq!((y.width(), y.height()), (w, h), "luma plane size mismatch");
        assert_eq!(
            (u.width(), u.height()),
            (w / 2, h / 2),
            "chroma U plane size mismatch"
        );
        assert_eq!(
            (v.width(), v.height()),
            (w / 2, h / 2),
            "chroma V plane size mismatch"
        );
        Self {
            resolution,
            y,
            u,
            v,
        }
    }

    /// Frame resolution.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// Luma plane.
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// Chroma U plane.
    pub fn u(&self) -> &Plane {
        &self.u
    }

    /// Chroma V plane.
    pub fn v(&self) -> &Plane {
        &self.v
    }

    /// Mutable luma plane.
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Mutable chroma U plane.
    pub fn u_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// Mutable chroma V plane.
    pub fn v_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// Total number of raw bytes (all three planes).
    pub fn raw_bytes(&self) -> usize {
        self.resolution.raw_bytes()
    }

    /// Downscales the frame with a box filter; used when shipping frames to a
    /// fixed NN input size (the paper resizes I-frames to the YOLO input
    /// resolution before edge→cloud transfer).
    pub fn resize(&self, target: Resolution) -> Frame {
        let (w, h) = (target.width() as usize, target.height() as usize);
        Frame {
            resolution: target,
            y: self.y.resize_box(w, h),
            u: self.u.resize_box(w / 2, h / 2),
            v: self.v.resize_box(w / 2, h / 2),
        }
    }

    /// Peak signal-to-noise ratio of the luma plane against `other`, in dB.
    /// Returns `f64::INFINITY` for identical planes.
    ///
    /// # Panics
    ///
    /// Panics if the resolutions differ.
    pub fn psnr_luma(&self, other: &Frame) -> f64 {
        assert_eq!(
            self.resolution, other.resolution,
            "PSNR requires equal resolutions"
        );
        let mse: f64 = self
            .y
            .data()
            .iter()
            .zip(other.y.data())
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum::<f64>()
            / self.y.data().len() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolution_accessors() {
        let r = Resolution::new(600, 400);
        assert_eq!(r.width(), 600);
        assert_eq!(r.height(), 400);
        assert_eq!(r.raw_bytes(), 600 * 400 + 2 * 300 * 200);
        assert_eq!(r.mb_cols(), 38);
        assert_eq!(r.mb_rows(), 25);
        assert_eq!(r.to_string(), "600x400");
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn resolution_rejects_odd() {
        let _ = Resolution::new(7, 4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn resolution_rejects_zero() {
        let _ = Resolution::new(0, 4);
    }

    #[test]
    fn plane_block_roundtrip() {
        let mut p = Plane::filled(16, 16, 0);
        let mut blk = [0i32; 64];
        for (i, b) in blk.iter_mut().enumerate() {
            *b = i as i32;
        }
        p.put_block8(1, 1, &blk);
        let mut back = [0i32; 64];
        p.get_block8(1, 1, &mut back);
        assert_eq!(blk, back);
    }

    #[test]
    fn plane_block_clamps_at_edges() {
        let p = Plane::filled(10, 10, 7);
        let mut blk = [0i32; 64];
        // Block (1,1) spans pixels 8..16, past the 10-wide plane: must clamp.
        p.get_block8(1, 1, &mut blk);
        assert!(blk.iter().all(|&v| v == 7));
    }

    #[test]
    fn plane_put_block_clips_values() {
        let mut p = Plane::filled(8, 8, 0);
        let blk = [300i32; 64];
        p.put_block8(0, 0, &blk);
        assert!(p.data().iter().all(|&v| v == 255));
        let blk = [-5i32; 64];
        p.put_block8(0, 0, &blk);
        assert!(p.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn sample_clamped_edges() {
        let mut p = Plane::filled(4, 4, 0);
        p.put(3, 3, 99);
        assert_eq!(p.sample_clamped(100, 100), 99);
        p.put(0, 0, 42);
        assert_eq!(p.sample_clamped(-5, -5), 42);
    }

    #[test]
    fn frame_filled_dimensions() {
        let f = Frame::grey(Resolution::new(32, 16));
        assert_eq!(f.y().width(), 32);
        assert_eq!(f.u().width(), 16);
        assert_eq!(f.v().height(), 8);
        assert_eq!(f.raw_bytes(), 32 * 16 + 2 * 16 * 8);
    }

    #[test]
    fn resize_box_halves() {
        let r = Resolution::new(32, 32);
        let mut f = Frame::grey(r);
        for v in f.y_mut().data_mut().iter_mut() {
            *v = 100;
        }
        let small = f.resize(Resolution::new(16, 16));
        assert_eq!(small.y().width(), 16);
        assert!(small.y().data().iter().all(|&v| v == 100));
    }

    #[test]
    fn resize_box_preserves_mean_roughly() {
        let r = Resolution::new(64, 64);
        let mut f = Frame::grey(r);
        for (i, v) in f.y_mut().data_mut().iter_mut().enumerate() {
            *v = (i % 251) as u8;
        }
        let mean_before = f.y().mean();
        let small = f.resize(Resolution::new(16, 16));
        let mean_after = small.y().mean();
        assert!((mean_before - mean_after).abs() < 8.0);
    }

    #[test]
    fn psnr_identical_is_infinite() {
        let f = Frame::grey(Resolution::new(16, 16));
        assert_eq!(f.psnr_luma(&f), f64::INFINITY);
    }

    #[test]
    fn psnr_decreases_with_noise() {
        let r = Resolution::new(16, 16);
        let a = Frame::grey(r);
        let mut b = a.clone();
        b.y_mut().data_mut()[0] = 0;
        let mut c = a.clone();
        for v in c.y_mut().data_mut().iter_mut() {
            *v = 0;
        }
        assert!(a.psnr_luma(&b) > a.psnr_luma(&c));
    }
}
