//! Coefficient quantization.
//!
//! Uses the JPEG Annex-K luminance/chrominance base matrices scaled by a
//! quality factor, the same scheme libjpeg uses. Intra blocks and inter
//! residuals share the matrices; residuals are typically small so they mostly
//! quantize to zero, which is what makes P-frames cheap.

use crate::dct::BLOCK_LEN;
use crate::kernels;

/// JPEG Annex-K luminance quantization matrix (quality 50 reference).
pub const BASE_LUMA: [u16; BLOCK_LEN] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// JPEG Annex-K chrominance quantization matrix (quality 50 reference).
pub const BASE_CHROMA: [u16; BLOCK_LEN] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// A quality-scaled quantization table.
#[derive(Debug, Clone)]
pub struct QuantTable {
    steps: [u16; BLOCK_LEN],
    /// The same steps as `f32`, precomputed for the quantize/dequantize
    /// kernels (the conversion is exact: steps are at most 255).
    steps_f32: [f32; BLOCK_LEN],
}

impl PartialEq for QuantTable {
    fn eq(&self, other: &Self) -> bool {
        self.steps == other.steps
    }
}

impl Eq for QuantTable {}

impl QuantTable {
    /// Builds a table from a base matrix and a quality factor in `1..=100`
    /// using the libjpeg scaling rule (50 = base, 100 = near-lossless).
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn with_quality(base: &[u16; BLOCK_LEN], quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        let scale: u32 = if quality < 50 {
            5000 / quality as u32
        } else {
            200 - 2 * quality as u32
        };
        let mut steps = [0u16; BLOCK_LEN];
        for (s, &b) in steps.iter_mut().zip(base.iter()) {
            let q = (b as u32 * scale + 50) / 100;
            *s = q.clamp(1, 255) as u16;
        }
        let mut steps_f32 = [0f32; BLOCK_LEN];
        for (f, &s) in steps_f32.iter_mut().zip(steps.iter()) {
            *f = s as f32;
        }
        Self { steps, steps_f32 }
    }

    /// Luma table at `quality`.
    pub fn luma(quality: u8) -> Self {
        Self::with_quality(&BASE_LUMA, quality)
    }

    /// Chroma table at `quality`.
    pub fn chroma(quality: u8) -> Self {
        Self::with_quality(&BASE_CHROMA, quality)
    }

    /// Quantization step for coefficient `i` (row-major index).
    pub fn step(&self, i: usize) -> u16 {
        self.steps[i]
    }

    /// Quantizes a block of DCT coefficients to integer levels (rounding
    /// ties away from zero, like the rest of the kernel tier).
    pub fn quantize(&self, coeffs: &[f32; BLOCK_LEN], out: &mut [i32; BLOCK_LEN]) {
        kernels::quantize64(coeffs, &self.steps_f32, out);
    }

    /// Reconstructs DCT coefficients from quantized levels.
    pub fn dequantize(&self, levels: &[i32; BLOCK_LEN], out: &mut [f32; BLOCK_LEN]) {
        kernels::dequantize64(levels, &self.steps_f32, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_fifty_is_base() {
        let t = QuantTable::luma(50);
        for (i, &base) in BASE_LUMA.iter().enumerate() {
            assert_eq!(t.step(i), base);
        }
    }

    #[test]
    fn quality_hundred_is_unit_steps() {
        let t = QuantTable::luma(100);
        for i in 0..BLOCK_LEN {
            assert_eq!(t.step(i), 1, "quality 100 must be near-lossless");
        }
    }

    #[test]
    fn lower_quality_means_coarser_steps() {
        let hi = QuantTable::luma(90);
        let lo = QuantTable::luma(10);
        for i in 0..BLOCK_LEN {
            assert!(lo.step(i) >= hi.step(i));
        }
    }

    #[test]
    #[should_panic(expected = "quality")]
    fn rejects_zero_quality() {
        let _ = QuantTable::luma(0);
    }

    #[test]
    fn quantize_dequantize_bounds_error() {
        let t = QuantTable::luma(50);
        let mut coeffs = [0f32; BLOCK_LEN];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = (i as f32 - 32.0) * 13.7;
        }
        let mut levels = [0i32; BLOCK_LEN];
        let mut back = [0f32; BLOCK_LEN];
        t.quantize(&coeffs, &mut levels);
        t.dequantize(&levels, &mut back);
        for i in 0..BLOCK_LEN {
            assert!(
                (coeffs[i] - back[i]).abs() <= t.step(i) as f32 / 2.0 + 1e-3,
                "reconstruction error exceeds half a step at {i}"
            );
        }
    }

    #[test]
    fn small_residuals_quantize_to_zero() {
        let t = QuantTable::luma(50);
        let coeffs = [3.0f32; BLOCK_LEN];
        let mut levels = [0i32; BLOCK_LEN];
        t.quantize(&coeffs, &mut levels);
        // All steps >= 10, so a 3.0 coefficient rounds to zero.
        assert!(levels.iter().all(|&l| l == 0));
    }
}
