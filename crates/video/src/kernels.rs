//! Runtime-dispatched SIMD kernels for the codec hot loops.
//!
//! Every vectorized inner loop of the codec — macroblock SAD, the 8x8 DCT
//! pair, quantization, squared-error accumulation and 2x2 box downsampling —
//! lives here, so dispatch happens in exactly one place. Each kernel has
//! three tiers:
//!
//! * a **scalar** reference in [`scalar`], written so the compiler can
//!   autovectorize it and so it is **bit-exact** with the SIMD tiers (same
//!   accumulation order, same rounding formula, no FMA contraction);
//! * an **SSE2** tier (the x86-64 baseline, always available there) for the
//!   integer kernels, where `psadbw`/`pmaddwd` are the big wins;
//! * an **AVX2** tier covering everything, selected at runtime with
//!   `is_x86_feature_detected!`.
//!
//! The active tier is resolved once and cached; `SIEVE_FORCE_SCALAR=1` in
//! the environment or building with `--cfg sieve_force_scalar` pins the
//! scalar tier (CI uses the cfg so the fallback cannot rot), and
//! [`force_scalar`] toggles it at runtime for benchmarks.
//!
//! # Bit-exactness contract
//!
//! Kernels that convert `f32` to `i32` round ties away from zero via
//! `trunc(x + copysign(0.5, x))` in *both* the scalar and SIMD tiers —
//! SSE/AVX only provide round-to-nearest-even or truncation in hardware, so
//! the shared formula is what makes the tiers agree. Inputs are expected in
//! codec range (|value| < 2^24); far outside it the saturation behaviour of
//! `as i32` (scalar) and `cvttps` (SIMD) may differ, which only corrupt
//! bitstreams can reach.

// lint:allow-file(no-unsafe): SIMD intrinsics are confined to this module by
// the workspace lint; every unsafe block is a feature-gated intrinsic call
// whose slice bounds are asserted by the safe dispatch wrappers above it.

use std::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set tier the dispatcher selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLevel {
    /// Portable scalar fallback (also the non-x86 path).
    Scalar,
    /// SSE2 integer kernels (x86-64 baseline); float kernels stay scalar.
    Sse2,
    /// AVX2 for every kernel.
    Avx2,
}

impl std::fmt::Display for KernelLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelLevel::Scalar => write!(f, "scalar"),
            KernelLevel::Sse2 => write!(f, "sse2"),
            KernelLevel::Avx2 => write!(f, "avx2"),
        }
    }
}

const LEVEL_UNRESOLVED: u8 = 0;
const LEVEL_SCALAR: u8 = 1;
const LEVEL_SSE2: u8 = 2;
const LEVEL_AVX2: u8 = 3;

static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNRESOLVED);

fn detect() -> KernelLevel {
    if cfg!(sieve_force_scalar) {
        return KernelLevel::Scalar;
    }
    if std::env::var_os("SIEVE_FORCE_SCALAR").is_some_and(|v| v != "0") {
        return KernelLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            KernelLevel::Avx2
        } else {
            // SSE2 is part of the x86-64 baseline.
            KernelLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        KernelLevel::Scalar
    }
}

/// The tier the dispatcher is currently using.
pub fn active_level() -> KernelLevel {
    match LEVEL.load(Ordering::Relaxed) {
        LEVEL_SCALAR => KernelLevel::Scalar,
        LEVEL_SSE2 => KernelLevel::Sse2,
        LEVEL_AVX2 => KernelLevel::Avx2,
        _ => {
            let level = detect();
            let raw = match level {
                KernelLevel::Scalar => LEVEL_SCALAR,
                KernelLevel::Sse2 => LEVEL_SSE2,
                KernelLevel::Avx2 => LEVEL_AVX2,
            };
            LEVEL.store(raw, Ordering::Relaxed);
            level
        }
    }
}

/// Pins the scalar tier (`true`) or re-runs detection (`false`). Meant for
/// benchmarks that measure both tiers in one process; tests compare against
/// [`scalar`] directly and do not need it.
pub fn force_scalar(on: bool) {
    if on {
        LEVEL.store(LEVEL_SCALAR, Ordering::Relaxed);
    } else {
        LEVEL.store(LEVEL_UNRESOLVED, Ordering::Relaxed);
        let _ = active_level();
    }
}

/// The two 8x8 DCT-II basis layouts the kernels need: `basis[k][n]` (the
/// orthonormal cosine basis) and its transpose `basis_t[n][k]`.
pub(crate) struct DctTables {
    pub basis: [[f32; 8]; 8],
    pub basis_t: [[f32; 8]; 8],
}

pub(crate) fn dct_tables() -> &'static DctTables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<DctTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut basis = [[0f32; 8]; 8];
        for (k, row) in basis.iter_mut().enumerate() {
            let scale = if k == 0 {
                (1.0f32 / 8.0).sqrt()
            } else {
                (2.0f32 / 8.0).sqrt()
            };
            for (n, v) in row.iter_mut().enumerate() {
                *v = scale * ((std::f32::consts::PI / 8.0) * (n as f32 + 0.5) * k as f32).cos();
            }
        }
        let mut basis_t = [[0f32; 8]; 8];
        for k in 0..8 {
            for n in 0..8 {
                basis_t[n][k] = basis[k][n];
            }
        }
        DctTables { basis, basis_t }
    })
}

fn assert_block16(data: &[u8], stride: usize, what: &str) {
    assert!(stride >= 16, "{what}: stride {stride} below block width");
    assert!(
        data.len() >= 15 * stride + 16,
        "{what}: slice too short for a 16x16 block at stride {stride}"
    );
}

/// Sum of absolute differences over a 16x16 block. `cur` and `refp` start at
/// each block's top-left sample; rows advance by the respective stride.
///
/// # Panics
///
/// Panics if either slice cannot hold a 16x16 block at its stride.
pub fn sad16(cur: &[u8], cur_stride: usize, refp: &[u8], ref_stride: usize) -> u32 {
    assert_block16(cur, cur_stride, "sad16 cur");
    assert_block16(refp, ref_stride, "sad16 ref");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::sad16_avx2(cur, cur_stride, refp, ref_stride) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { x86::sad16_sse2(cur, cur_stride, refp, ref_stride) },
        _ => scalar::sad16(cur, cur_stride, refp, ref_stride),
    }
}

/// Sum of the 256 samples of a 16x16 block.
///
/// # Panics
///
/// Panics if the slice cannot hold a 16x16 block at `stride`.
pub fn sum16(cur: &[u8], stride: usize) -> u32 {
    sad16_const(cur, stride, 0)
}

/// Sum of absolute deviations of a 16x16 block from a constant `value` —
/// the intra texture cost once `value` is the block mean.
///
/// # Panics
///
/// Panics if the slice cannot hold a 16x16 block at `stride`.
pub fn sad16_const(cur: &[u8], stride: usize, value: u8) -> u32 {
    assert_block16(cur, stride, "sad16_const");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::sad16_const_avx2(cur, stride, value) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { x86::sad16_const_sse2(cur, stride, value) },
        _ => scalar::sad16_const(cur, stride, value),
    }
}

/// Forward 8x8 DCT-II of a row-major block.
pub fn dct8_forward(input: &[i32; 64], output: &mut [f32; 64]) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::dct8_forward_avx2(input, output) },
        _ => scalar::dct8_forward(input, output),
    }
}

/// Inverse 8x8 DCT (DCT-III), rounding ties away from zero to integers.
pub fn dct8_inverse(input: &[f32; 64], output: &mut [i32; 64]) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::dct8_inverse_avx2(input, output) },
        _ => scalar::dct8_inverse(input, output),
    }
}

/// Quantizes 64 DCT coefficients: `out[i] = round_ties_away(coeffs[i] / steps[i])`.
pub fn quantize64(coeffs: &[f32; 64], steps: &[f32; 64], out: &mut [i32; 64]) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::quantize64_avx2(coeffs, steps, out) },
        _ => scalar::quantize64(coeffs, steps, out),
    }
}

/// Reconstructs 64 DCT coefficients from quantized levels:
/// `out[i] = levels[i] as f32 * steps[i]`.
pub fn dequantize64(levels: &[i32; 64], steps: &[f32; 64], out: &mut [f32; 64]) {
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::dequantize64_avx2(levels, steps, out) },
        _ => scalar::dequantize64(levels, steps, out),
    }
}

/// Sum of squared differences between two equal-length byte slices, exact in
/// `u64` (and therefore order-independent, so SIMD is trivially bit-exact).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sse_u8(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "sse_u8 requires equal lengths");
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::sse_u8_avx2(a, b) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { x86::sse_u8_sse2(a, b) },
        _ => scalar::sse_u8(a, b),
    }
}

/// 2x2 box average of two parent rows into one child row:
/// `out[i] = ((top[2i] + top[2i+1]) + (bottom[2i] + bottom[2i+1])) * 0.25`.
///
/// # Panics
///
/// Panics unless `top.len() >= 2 * out.len()` and likewise for `bottom`.
pub fn avg2x2_f32(top: &[f32], bottom: &[f32], out: &mut [f32]) {
    assert!(top.len() >= 2 * out.len(), "avg2x2_f32: top row too short");
    assert!(
        bottom.len() >= 2 * out.len(),
        "avg2x2_f32: bottom row too short"
    );
    match active_level() {
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Avx2 => unsafe { x86::avg2x2_f32_avx2(top, bottom, out) },
        #[cfg(target_arch = "x86_64")]
        KernelLevel::Sse2 => unsafe { x86::avg2x2_f32_sse2(top, bottom, out) },
        _ => scalar::avg2x2_f32(top, bottom, out),
    }
}

/// The scalar reference tier. Public so tests and benchmarks can pin it
/// regardless of the dispatcher's cached level.
pub mod scalar {
    use super::dct_tables;

    /// Rounds ties away from zero — the formula both tiers share (see the
    /// module docs).
    #[inline]
    pub(crate) fn round_ties_away(x: f32) -> i32 {
        (x + f32::copysign(0.5, x)) as i32
    }

    /// Scalar [`super::sad16`].
    pub fn sad16(cur: &[u8], cur_stride: usize, refp: &[u8], ref_stride: usize) -> u32 {
        let mut acc = 0u32;
        for dy in 0..16 {
            let crow = &cur[dy * cur_stride..dy * cur_stride + 16];
            let rrow = &refp[dy * ref_stride..dy * ref_stride + 16];
            for (c, r) in crow.iter().zip(rrow) {
                acc += (*c as i32 - *r as i32).unsigned_abs();
            }
        }
        acc
    }

    /// Scalar [`super::sad16_const`].
    pub fn sad16_const(cur: &[u8], stride: usize, value: u8) -> u32 {
        let mut acc = 0u32;
        for dy in 0..16 {
            let crow = &cur[dy * stride..dy * stride + 16];
            for c in crow {
                acc += (*c as i32 - value as i32).unsigned_abs();
            }
        }
        acc
    }

    /// Scalar [`super::sum16`].
    pub fn sum16(cur: &[u8], stride: usize) -> u32 {
        sad16_const(cur, stride, 0)
    }

    /// Scalar [`super::dct8_forward`]. Per output coefficient the eight
    /// products accumulate in `n` order, matching the SIMD lanes.
    pub fn dct8_forward(input: &[i32; 64], output: &mut [f32; 64]) {
        let b = &dct_tables().basis;
        let mut tmp = [0f32; 64];
        // Rows.
        for y in 0..8 {
            for k in 0..8 {
                let mut acc = 0f32;
                for n in 0..8 {
                    acc += input[y * 8 + n] as f32 * b[k][n];
                }
                tmp[y * 8 + k] = acc;
            }
        }
        // Columns.
        for x in 0..8 {
            for k in 0..8 {
                let mut acc = 0f32;
                for n in 0..8 {
                    acc += tmp[n * 8 + x] * b[k][n];
                }
                output[k * 8 + x] = acc;
            }
        }
    }

    /// Scalar [`super::dct8_inverse`].
    pub fn dct8_inverse(input: &[f32; 64], output: &mut [i32; 64]) {
        let b = &dct_tables().basis;
        let mut tmp = [0f32; 64];
        // Columns.
        for x in 0..8 {
            for n in 0..8 {
                let mut acc = 0f32;
                for k in 0..8 {
                    acc += input[k * 8 + x] * b[k][n];
                }
                tmp[n * 8 + x] = acc;
            }
        }
        // Rows.
        for y in 0..8 {
            for n in 0..8 {
                let mut acc = 0f32;
                for k in 0..8 {
                    acc += tmp[y * 8 + k] * b[k][n];
                }
                output[y * 8 + n] = round_ties_away(acc);
            }
        }
    }

    /// Scalar [`super::quantize64`].
    pub fn quantize64(coeffs: &[f32; 64], steps: &[f32; 64], out: &mut [i32; 64]) {
        for i in 0..64 {
            out[i] = round_ties_away(coeffs[i] / steps[i]);
        }
    }

    /// Scalar [`super::dequantize64`].
    pub fn dequantize64(levels: &[i32; 64], steps: &[f32; 64], out: &mut [f32; 64]) {
        for i in 0..64 {
            out[i] = levels[i] as f32 * steps[i];
        }
    }

    /// Scalar [`super::sse_u8`].
    pub fn sse_u8(a: &[u8], b: &[u8]) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = x as i64 - y as i64;
                (d * d) as u64
            })
            .sum()
    }

    /// Scalar [`super::avg2x2_f32`]. The `(top pair) + (bottom pair)` order
    /// matches the SIMD horizontal adds.
    pub fn avg2x2_f32(top: &[f32], bottom: &[f32], out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = ((top[2 * i] + top[2 * i + 1]) + (bottom[2 * i] + bottom[2 * i + 1])) * 0.25;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2/AVX2 implementations. Callers (the dispatch wrappers) assert
    //! slice bounds; the `unsafe` here is the intrinsics themselves plus
    //! raw row loads inside those asserted bounds.

    use super::dct_tables;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller asserts both slices hold a 16x16 block at their strides.
    pub unsafe fn sad16_sse2(cur: &[u8], cur_stride: usize, refp: &[u8], ref_stride: usize) -> u32 {
        unsafe {
            let mut acc = _mm_setzero_si128();
            for dy in 0..16 {
                let c = _mm_loadu_si128(cur.as_ptr().add(dy * cur_stride) as *const __m128i);
                let r = _mm_loadu_si128(refp.as_ptr().add(dy * ref_stride) as *const __m128i);
                acc = _mm_add_epi64(acc, _mm_sad_epu8(c, r));
            }
            let hi = _mm_unpackhi_epi64(acc, acc);
            _mm_cvtsi128_si64(_mm_add_epi64(acc, hi)) as u32
        }
    }

    /// # Safety
    /// Caller asserts bounds; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sad16_avx2(cur: &[u8], cur_stride: usize, refp: &[u8], ref_stride: usize) -> u32 {
        unsafe {
            let mut acc = _mm256_setzero_si256();
            for dy in (0..16).step_by(2) {
                let c0 = _mm_loadu_si128(cur.as_ptr().add(dy * cur_stride) as *const __m128i);
                let c1 = _mm_loadu_si128(cur.as_ptr().add((dy + 1) * cur_stride) as *const __m128i);
                let r0 = _mm_loadu_si128(refp.as_ptr().add(dy * ref_stride) as *const __m128i);
                let r1 =
                    _mm_loadu_si128(refp.as_ptr().add((dy + 1) * ref_stride) as *const __m128i);
                let c = _mm256_inserti128_si256(_mm256_castsi128_si256(c0), c1, 1);
                let r = _mm256_inserti128_si256(_mm256_castsi128_si256(r0), r1, 1);
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, r));
            }
            let s = _mm_add_epi64(
                _mm256_castsi256_si128(acc),
                _mm256_extracti128_si256(acc, 1),
            );
            _mm_cvtsi128_si64(_mm_add_epi64(s, _mm_unpackhi_epi64(s, s))) as u32
        }
    }

    /// # Safety
    /// Caller asserts bounds.
    pub unsafe fn sad16_const_sse2(cur: &[u8], stride: usize, value: u8) -> u32 {
        unsafe {
            let k = _mm_set1_epi8(value as i8);
            let mut acc = _mm_setzero_si128();
            for dy in 0..16 {
                let c = _mm_loadu_si128(cur.as_ptr().add(dy * stride) as *const __m128i);
                acc = _mm_add_epi64(acc, _mm_sad_epu8(c, k));
            }
            let hi = _mm_unpackhi_epi64(acc, acc);
            _mm_cvtsi128_si64(_mm_add_epi64(acc, hi)) as u32
        }
    }

    /// # Safety
    /// Caller asserts bounds; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sad16_const_avx2(cur: &[u8], stride: usize, value: u8) -> u32 {
        unsafe {
            let k = _mm256_set1_epi8(value as i8);
            let mut acc = _mm256_setzero_si256();
            for dy in (0..16).step_by(2) {
                let c0 = _mm_loadu_si128(cur.as_ptr().add(dy * stride) as *const __m128i);
                let c1 = _mm_loadu_si128(cur.as_ptr().add((dy + 1) * stride) as *const __m128i);
                let c = _mm256_inserti128_si256(_mm256_castsi128_si256(c0), c1, 1);
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(c, k));
            }
            let s = _mm_add_epi64(
                _mm256_castsi256_si128(acc),
                _mm256_extracti128_si256(acc, 1),
            );
            _mm_cvtsi128_si64(_mm_add_epi64(s, _mm_unpackhi_epi64(s, s))) as u32
        }
    }

    /// Rounds ties away from zero: `cvttps(x | copysign(0.5, x))`-style,
    /// the same formula as `scalar::round_ties_away`.
    ///
    /// # Safety
    /// Requires AVX2 (AVX really; gated with the callers).
    #[target_feature(enable = "avx2")]
    unsafe fn round_ties_away_ps(x: __m256) -> __m256i {
        let sign_mask = _mm256_set1_ps(-0.0);
        let half = _mm256_or_ps(_mm256_and_ps(x, sign_mask), _mm256_set1_ps(0.5));
        _mm256_cvttps_epi32(_mm256_add_ps(x, half))
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dct8_forward_avx2(input: &[i32; 64], output: &mut [f32; 64]) {
        unsafe {
            let t = dct_tables();
            let mut tmp = [0f32; 64];
            // Rows: for each input row y, all eight coefficients k at once;
            // products accumulate in n order, like the scalar tier.
            for y in 0..8 {
                let mut acc = _mm256_setzero_ps();
                for n in 0..8 {
                    let v = _mm256_set1_ps(input[y * 8 + n] as f32);
                    let bt = _mm256_loadu_ps(t.basis_t[n].as_ptr());
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(v, bt));
                }
                _mm256_storeu_ps(tmp.as_mut_ptr().add(y * 8), acc);
            }
            // Columns: for each coefficient row k, all eight columns x at once.
            for k in 0..8 {
                let mut acc = _mm256_setzero_ps();
                for n in 0..8 {
                    let row = _mm256_loadu_ps(tmp.as_ptr().add(n * 8));
                    let b = _mm256_set1_ps(t.basis[k][n]);
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(row, b));
                }
                _mm256_storeu_ps(output.as_mut_ptr().add(k * 8), acc);
            }
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dct8_inverse_avx2(input: &[f32; 64], output: &mut [i32; 64]) {
        unsafe {
            let t = dct_tables();
            let mut tmp = [0f32; 64];
            // Columns: for each spatial row n, all eight columns x at once;
            // products accumulate in k order, like the scalar tier.
            for n in 0..8 {
                let mut acc = _mm256_setzero_ps();
                for k in 0..8 {
                    let row = _mm256_loadu_ps(input.as_ptr().add(k * 8));
                    let b = _mm256_set1_ps(t.basis[k][n]);
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(row, b));
                }
                _mm256_storeu_ps(tmp.as_mut_ptr().add(n * 8), acc);
            }
            // Rows: for each output row y, all eight samples n at once.
            for y in 0..8 {
                let mut acc = _mm256_setzero_ps();
                for k in 0..8 {
                    let v = _mm256_set1_ps(tmp[y * 8 + k]);
                    let b = _mm256_loadu_ps(t.basis[k].as_ptr());
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(v, b));
                }
                let rounded = round_ties_away_ps(acc);
                _mm256_storeu_si256(output.as_mut_ptr().add(y * 8) as *mut __m256i, rounded);
            }
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn quantize64_avx2(coeffs: &[f32; 64], steps: &[f32; 64], out: &mut [i32; 64]) {
        unsafe {
            for i in (0..64).step_by(8) {
                let c = _mm256_loadu_ps(coeffs.as_ptr().add(i));
                let s = _mm256_loadu_ps(steps.as_ptr().add(i));
                let q = round_ties_away_ps(_mm256_div_ps(c, s));
                _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, q);
            }
        }
    }

    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dequantize64_avx2(levels: &[i32; 64], steps: &[f32; 64], out: &mut [f32; 64]) {
        unsafe {
            for i in (0..64).step_by(8) {
                let l = _mm256_loadu_si256(levels.as_ptr().add(i) as *const __m256i);
                let s = _mm256_loadu_ps(steps.as_ptr().add(i));
                let d = _mm256_mul_ps(_mm256_cvtepi32_ps(l), s);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), d);
            }
        }
    }

    /// Flushes four i32 lanes into a u64 accumulator.
    ///
    /// # Safety
    /// Plain SSE2.
    unsafe fn hsum_epi32_sse2(v: __m128i) -> u64 {
        unsafe {
            let mut lanes = [0i32; 4];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, v);
            lanes.iter().map(|&l| l as u64).sum()
        }
    }

    /// # Safety
    /// Caller asserts equal lengths.
    pub unsafe fn sse_u8_sse2(a: &[u8], b: &[u8]) -> u64 {
        unsafe {
            let mut total = 0u64;
            let zero = _mm_setzero_si128();
            let chunks = a.len() / 16;
            let mut acc = _mm_setzero_si128();
            for i in 0..chunks {
                let av = _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i);
                let bv = _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i);
                let alo = _mm_unpacklo_epi8(av, zero);
                let ahi = _mm_unpackhi_epi8(av, zero);
                let blo = _mm_unpacklo_epi8(bv, zero);
                let bhi = _mm_unpackhi_epi8(bv, zero);
                let dlo = _mm_sub_epi16(alo, blo);
                let dhi = _mm_sub_epi16(ahi, bhi);
                acc = _mm_add_epi32(acc, _mm_madd_epi16(dlo, dlo));
                acc = _mm_add_epi32(acc, _mm_madd_epi16(dhi, dhi));
                // Each chunk adds at most 8 * 255^2 per i32 lane; flush well
                // before any lane can reach i32::MAX.
                if i % 4096 == 4095 {
                    total += hsum_epi32_sse2(acc);
                    acc = _mm_setzero_si128();
                }
            }
            total += hsum_epi32_sse2(acc);
            for i in chunks * 16..a.len() {
                let d = a[i] as i64 - b[i] as i64;
                total += (d * d) as u64;
            }
            total
        }
    }

    /// # Safety
    /// Caller asserts equal lengths; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sse_u8_avx2(a: &[u8], b: &[u8]) -> u64 {
        unsafe {
            let mut total = 0u64;
            let chunks = a.len() / 16;
            let mut acc = _mm256_setzero_si256();
            for i in 0..chunks {
                let av = _mm_loadu_si128(a.as_ptr().add(i * 16) as *const __m128i);
                let bv = _mm_loadu_si128(b.as_ptr().add(i * 16) as *const __m128i);
                let aw = _mm256_cvtepu8_epi16(av);
                let bw = _mm256_cvtepu8_epi16(bv);
                let d = _mm256_sub_epi16(aw, bw);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
                // At most 2 * 255^2 per i32 lane per chunk.
                if i % 8192 == 8191 {
                    total += hsum_epi32_avx2(acc);
                    acc = _mm256_setzero_si256();
                }
            }
            total += hsum_epi32_avx2(acc);
            for i in chunks * 16..a.len() {
                let d = a[i] as i64 - b[i] as i64;
                total += (d * d) as u64;
            }
            total
        }
    }

    /// Flushes eight i32 lanes into a u64 accumulator.
    ///
    /// # Safety
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_epi32_avx2(v: __m256i) -> u64 {
        unsafe {
            let mut lanes = [0i32; 8];
            _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, v);
            lanes.iter().map(|&l| l as u64).sum()
        }
    }

    /// # Safety
    /// Caller asserts row lengths.
    pub unsafe fn avg2x2_f32_sse2(top: &[f32], bottom: &[f32], out: &mut [f32]) {
        unsafe {
            let quarter = _mm_set1_ps(0.25);
            let chunks = out.len() / 4;
            for i in 0..chunks {
                let t0 = _mm_loadu_ps(top.as_ptr().add(i * 8));
                let t1 = _mm_loadu_ps(top.as_ptr().add(i * 8 + 4));
                let b0 = _mm_loadu_ps(bottom.as_ptr().add(i * 8));
                let b1 = _mm_loadu_ps(bottom.as_ptr().add(i * 8 + 4));
                // Gather even/odd lanes so each output is (even + odd), the
                // same left-to-right pair order as the scalar tier.
                let te = _mm_shuffle_ps(t0, t1, 0b10_00_10_00);
                let to = _mm_shuffle_ps(t0, t1, 0b11_01_11_01);
                let be = _mm_shuffle_ps(b0, b1, 0b10_00_10_00);
                let bo = _mm_shuffle_ps(b0, b1, 0b11_01_11_01);
                let s = _mm_add_ps(_mm_add_ps(te, to), _mm_add_ps(be, bo));
                _mm_storeu_ps(out.as_mut_ptr().add(i * 4), _mm_mul_ps(s, quarter));
            }
            for i in chunks * 4..out.len() {
                out[i] =
                    ((top[2 * i] + top[2 * i + 1]) + (bottom[2 * i] + bottom[2 * i + 1])) * 0.25;
            }
        }
    }

    /// # Safety
    /// Caller asserts row lengths; requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn avg2x2_f32_avx2(top: &[f32], bottom: &[f32], out: &mut [f32]) {
        unsafe {
            let quarter = _mm256_set1_ps(0.25);
            // hadd interleaves 128-bit halves; this permutation restores
            // left-to-right pair order.
            let fix = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
            let chunks = out.len() / 8;
            for i in 0..chunks {
                let t0 = _mm256_loadu_ps(top.as_ptr().add(i * 16));
                let t1 = _mm256_loadu_ps(top.as_ptr().add(i * 16 + 8));
                let b0 = _mm256_loadu_ps(bottom.as_ptr().add(i * 16));
                let b1 = _mm256_loadu_ps(bottom.as_ptr().add(i * 16 + 8));
                let th = _mm256_permutevar8x32_ps(_mm256_hadd_ps(t0, t1), fix);
                let bh = _mm256_permutevar8x32_ps(_mm256_hadd_ps(b0, b1), fix);
                let s = _mm256_add_ps(th, bh);
                _mm256_storeu_ps(out.as_mut_ptr().add(i * 8), _mm256_mul_ps(s, quarter));
            }
            for i in chunks * 8..out.len() {
                out[i] =
                    ((top[2 * i] + top[2 * i + 1]) + (bottom[2 * i] + bottom[2 * i + 1])) * 0.25;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_block(seed: u32) -> Vec<u8> {
        (0..16 * 20)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 13) as u8)
            .collect()
    }

    #[test]
    fn dispatched_sad16_matches_scalar() {
        let a = pattern_block(1);
        let b = pattern_block(99);
        // Distinct strides exercise the two-stride contract.
        assert_eq!(sad16(&a, 16, &b, 18), scalar::sad16(&a, 16, &b, 18));
    }

    #[test]
    fn dispatched_sad16_const_matches_scalar() {
        let a = pattern_block(7);
        for v in [0u8, 1, 127, 200, 255] {
            assert_eq!(sad16_const(&a, 17, v), scalar::sad16_const(&a, 17, v));
        }
    }

    #[test]
    fn dispatched_dct_pair_matches_scalar_bitwise() {
        let mut input = [0i32; 64];
        for (i, v) in input.iter_mut().enumerate() {
            *v = ((i as i32 * 37) % 256) - 128;
        }
        let (mut f_d, mut f_s) = ([0f32; 64], [0f32; 64]);
        dct8_forward(&input, &mut f_d);
        scalar::dct8_forward(&input, &mut f_s);
        assert_eq!(f_d.map(f32::to_bits), f_s.map(f32::to_bits));
        let (mut i_d, mut i_s) = ([0i32; 64], [0i32; 64]);
        dct8_inverse(&f_d, &mut i_d);
        scalar::dct8_inverse(&f_s, &mut i_s);
        assert_eq!(i_d, i_s);
    }

    #[test]
    fn dispatched_quant_pair_matches_scalar() {
        let mut coeffs = [0f32; 64];
        let mut steps = [0f32; 64];
        for i in 0..64 {
            coeffs[i] = (i as f32 - 31.5) * 13.7;
            steps[i] = 1.0 + (i % 17) as f32;
        }
        let (mut q_d, mut q_s) = ([0i32; 64], [0i32; 64]);
        quantize64(&coeffs, &steps, &mut q_d);
        scalar::quantize64(&coeffs, &steps, &mut q_s);
        assert_eq!(q_d, q_s);
        let (mut d_d, mut d_s) = ([0f32; 64], [0f32; 64]);
        dequantize64(&q_d, &steps, &mut d_d);
        scalar::dequantize64(&q_s, &steps, &mut d_s);
        assert_eq!(d_d.map(f32::to_bits), d_s.map(f32::to_bits));
    }

    #[test]
    fn dispatched_sse_u8_matches_scalar_all_tail_lengths() {
        let a = pattern_block(3);
        let b = pattern_block(44);
        for len in [0, 1, 15, 16, 17, 64, 255, 320] {
            assert_eq!(
                sse_u8(&a[..len], &b[..len]),
                scalar::sse_u8(&a[..len], &b[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn dispatched_avg2x2_matches_scalar_bitwise() {
        let top: Vec<f32> = (0..66).map(|i| (i as f32) * 0.37 + 0.1).collect();
        let bottom: Vec<f32> = (0..66).map(|i| (i as f32) * -0.53 + 7.0).collect();
        for w in [1usize, 3, 4, 8, 9, 16, 33] {
            let mut d = vec![0f32; w];
            let mut s = vec![0f32; w];
            avg2x2_f32(&top, &bottom, &mut d);
            scalar::avg2x2_f32(&top, &bottom, &mut s);
            let db: Vec<u32> = d.iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = s.iter().map(|v| v.to_bits()).collect();
            assert_eq!(db, sb, "width {w}");
        }
    }

    #[test]
    fn round_ties_away_from_zero() {
        assert_eq!(scalar::round_ties_away(2.5), 3);
        assert_eq!(scalar::round_ties_away(-2.5), -3);
        assert_eq!(scalar::round_ties_away(2.4), 2);
        assert_eq!(scalar::round_ties_away(-2.4), -2);
        assert_eq!(scalar::round_ties_away(0.0), 0);
    }

    #[test]
    fn force_scalar_toggles_level() {
        let initial = active_level();
        force_scalar(true);
        assert_eq!(active_level(), KernelLevel::Scalar);
        force_scalar(false);
        assert_eq!(active_level(), initial);
    }

    #[test]
    fn level_display_names() {
        assert_eq!(KernelLevel::Scalar.to_string(), "scalar");
        assert_eq!(KernelLevel::Sse2.to_string(), "sse2");
        assert_eq!(KernelLevel::Avx2.to_string(), "avx2");
    }
}
