//! The semantic video encoder.
//!
//! A closed-loop block codec with the two knobs SiEVE tunes per camera:
//!
//! * **GOP size** — the maximum number of frames between two I-frames; and
//! * **scenecut threshold** — how aggressively I-frames are inserted when the
//!   motion-compensated (inter) cost of a frame approaches its intra cost.
//!
//! The scenecut rule follows x264's shape: a frame becomes an I-frame when
//! `inter_cost > (1 - bias) * intra_cost`, where `bias` grows linearly with
//! the threshold (range `0..=400`, higher = more sensitive = more I-frames)
//! and is damped immediately after a keyframe so bursts of I-frames are
//! avoided. When an object enters or leaves an otherwise static scene, the
//! newly revealed pixels cannot be predicted from the previous frame, inter
//! cost spikes, and the encoder emits an I-frame — which is exactly the
//! "semantic event" signal the SiEVE I-frame seeker consumes downstream.

use serde::{Deserialize, Serialize};

use crate::bitio::BitWriter;
use crate::dct;
use crate::frame::{Frame, Plane, Resolution};
use crate::motion::{self, FrameMotion, MotionVector, MB};
use crate::quant::QuantTable;

/// Kind of an encoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra frame: decodable independently, like a JPEG still.
    I,
    /// Predicted frame: requires the previous frame to reconstruct.
    P,
}

impl std::fmt::Display for FrameType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameType::I => write!(f, "I"),
            FrameType::P => write!(f, "P"),
        }
    }
}

/// Maximum scenecut threshold (x264-style scale; the paper quotes 400 as the
/// most aggressive setting).
pub const SCENECUT_MAX: u16 = 400;

/// Encoder parameters. The two SiEVE-tuned knobs are [`gop_size`] and
/// [`scenecut`]; the rest control rate/quality and are fixed per deployment.
///
/// ```
/// use sieve_video::EncoderConfig;
/// let cfg = EncoderConfig::new(250, 40); // x264 defaults, per the paper
/// assert_eq!(cfg.gop_size, 250);
/// assert_eq!(cfg.scenecut, 40);
/// ```
///
/// [`gop_size`]: EncoderConfig::gop_size
/// [`scenecut`]: EncoderConfig::scenecut
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Maximum distance between I-frames; an I-frame is forced when reached.
    pub gop_size: usize,
    /// Scenecut sensitivity in `0..=400`; `0` disables scene detection,
    /// `400` makes every frame an I-frame.
    pub scenecut: u16,
    /// Minimum distance between two scenecut I-frames (forced GOP boundaries
    /// are exempt). Damps I-frame bursts while an object is mid-entry.
    pub min_keyint: usize,
    /// Quantizer quality in `1..=100` (libjpeg-style scaling).
    pub quality: u8,
    /// Motion search range in full-pel.
    pub search_range: u16,
    /// Per-pixel SAD below which a macroblock is coded as SKIP.
    pub skip_threshold_per_pixel: f32,
}

impl EncoderConfig {
    /// Creates a config with the given GOP size and scenecut threshold and
    /// library defaults for everything else.
    ///
    /// # Panics
    ///
    /// Panics if `gop_size == 0` or `scenecut > 400`.
    pub fn new(gop_size: usize, scenecut: u16) -> Self {
        assert!(gop_size > 0, "GOP size must be at least 1");
        assert!(
            scenecut <= SCENECUT_MAX,
            "scenecut threshold must be in 0..=400"
        );
        Self {
            gop_size,
            scenecut,
            min_keyint: 4,
            quality: 75,
            search_range: 16,
            skip_threshold_per_pixel: 3.0,
        }
    }

    /// The x264 defaults quoted by the paper (GOP 250, scenecut 40).
    pub fn x264_default() -> Self {
        Self::new(250, 40)
    }

    /// Returns a copy with a different quality factor.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn with_quality(mut self, quality: u8) -> Self {
        assert!((1..=100).contains(&quality), "quality must be in 1..=100");
        self.quality = quality;
        self
    }

    /// Returns a copy with a different minimum keyframe interval.
    pub fn with_min_keyint(mut self, min_keyint: usize) -> Self {
        self.min_keyint = min_keyint.max(1);
        self
    }
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self::x264_default()
    }
}

/// One encoded frame: its type plus the entropy-coded payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedFrame {
    /// I or P.
    pub frame_type: FrameType,
    /// Entropy-coded payload bytes.
    pub data: Vec<u8>,
}

impl EncodedFrame {
    /// Payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }
}

/// Why a frame got the type it did — kept for diagnostics and for the tuner's
/// reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameDecision {
    /// Type chosen.
    pub frame_type: FrameType,
    /// Inter/intra cost ratio observed (0 for the very first frame).
    pub inter_over_intra: f64,
    /// True if the I-frame was forced by the GOP limit rather than scenecut.
    pub forced_by_gop: bool,
    /// True if the scenecut rule fired.
    pub scenecut_fired: bool,
}

/// The scenecut lookahead: decides I vs P from half-resolution *source*
/// planes. Both the sequential [`Encoder`] and the GOP-parallel first pass
/// ([`crate::parallel`]) drive this exact type, so their frame-type
/// decisions cannot diverge — which is what makes the parallel encoder's
/// bitstream byte-identical.
///
/// The lookahead compares source against source, like x264's lowres
/// lookahead: comparing against the reconstruction instead would make every
/// large change echo for several frames while the closed loop's quantization
/// error settles, polluting the scenecut signal.
#[derive(Debug)]
pub struct Lookahead {
    config: EncoderConfig,
    /// Half-resolution luma of the previous source frame.
    ref_half: Option<Plane>,
    /// Reused buffer the current frame's half plane is computed into.
    half_scratch: Plane,
    /// Buffer parked by [`Lookahead::reset`] so a reused lookahead keeps
    /// both of its half-plane allocations across streams.
    spare: Option<Plane>,
    frames_since_i: usize,
}

impl Lookahead {
    pub fn new(config: EncoderConfig) -> Self {
        Self {
            config,
            ref_half: None,
            half_scratch: Plane::filled(1, 1, 0),
            spare: None,
            frames_since_i: 0,
        }
    }

    /// Decides the type of the next frame in display order and advances the
    /// lookahead state. Allocation-free once the two half-plane buffers
    /// exist.
    pub fn observe(&mut self, frame: &Frame) -> FrameDecision {
        let w = (frame.y().width() / 2).max(16);
        let h = (frame.y().height() / 2).max(16);
        frame.y().resize_box_into(w, h, &mut self.half_scratch);
        let decision = self.decide(&self.half_scratch);
        // The current half plane becomes the reference; the old reference
        // buffer becomes the next frame's scratch.
        let old = self
            .ref_half
            .take()
            .or_else(|| self.spare.take())
            .unwrap_or_else(|| Plane::filled(1, 1, 0));
        self.ref_half = Some(std::mem::replace(&mut self.half_scratch, old));
        match decision.frame_type {
            FrameType::I => self.frames_since_i = 0,
            FrameType::P => self.frames_since_i += 1,
        }
        decision
    }

    /// Records that the encoder degraded the last observed frame to an
    /// I-frame (the missing-reference fallback).
    fn force_i(&mut self) {
        self.frames_since_i = 0;
    }

    /// Clears stream state, keeping the allocated half-plane buffers.
    fn reset(&mut self) {
        if let Some(p) = self.ref_half.take() {
            self.spare = Some(p);
        }
        self.frames_since_i = 0;
    }

    /// Decides I vs P for the frame whose half-resolution luma is
    /// `cur_half`, using the GOP limit and the scenecut rule.
    fn decide(&self, cur_half: &Plane) -> FrameDecision {
        let Some(reference) = &self.ref_half else {
            return FrameDecision {
                frame_type: FrameType::I,
                inter_over_intra: 0.0,
                forced_by_gop: true,
                scenecut_fired: false,
            };
        };
        // Distance of the candidate frame from the last I-frame: the frame
        // immediately after a keyframe is at distance 1.
        let dist = self.frames_since_i + 1;
        if dist >= self.config.gop_size {
            // GOP limit: the ratio is still measured for diagnostics.
            let agg = self.frame_motion(cur_half, reference);
            return FrameDecision {
                frame_type: FrameType::I,
                inter_over_intra: agg.inter_over_intra(),
                forced_by_gop: true,
                scenecut_fired: false,
            };
        }
        let agg = self.frame_motion(cur_half, reference);
        // The lookahead's intra estimate is raw texture energy; a real
        // encoder intra-predicts first, so its intra cost is considerably
        // smaller. Scale ours down to match, which centres useful scenecut
        // values on the same 20..250 band x264 users tune within.
        const INTRA_SCALE: f64 = 0.4;
        let ratio = agg.inter_over_intra() / INTRA_SCALE;
        let base_bias = self.config.scenecut as f64 / SCENECUT_MAX as f64;
        // Damp scene cuts right after a keyframe, as x264 does with
        // min-keyint: at distance d < min_keyint the bias shrinks linearly.
        let damp = (dist as f64 / self.config.min_keyint as f64).min(1.0);
        let bias = base_bias * damp;
        let fired = ratio >= 1.0 - bias;
        let ft = if fired { FrameType::I } else { FrameType::P };
        FrameDecision {
            frame_type: ft,
            inter_over_intra: ratio,
            forced_by_gop: false,
            scenecut_fired: fired,
        }
    }

    /// Scenecut lookahead cost analysis over half-resolution source planes.
    fn frame_motion(&self, cur_half: &Plane, ref_half: &Plane) -> FrameMotion {
        motion::analyze_frame_agg(cur_half, ref_half, (self.config.search_range / 2).max(4))
    }
}

/// Closed-loop encoder. Feed frames in display order with
/// [`Encoder::encode_frame`]; the encoder maintains its own reconstructed
/// reference so that encoder and decoder never drift.
///
/// The encoder recycles all of its per-frame scratch (the reconstruction
/// frame, the lookahead's half-resolution planes, and — via
/// [`Encoder::encode_frame_into`] — the payload buffer), so the steady-state
/// encode loop performs no heap allocation.
#[derive(Debug)]
pub struct Encoder {
    config: EncoderConfig,
    resolution: Resolution,
    luma_q: QuantTable,
    chroma_q: QuantTable,
    reference: Option<Frame>,
    /// Recycled frame buffer the next reconstruction is written into; after
    /// each frame this swaps with `reference`.
    recon_scratch: Option<Frame>,
    /// Frame buffer parked by [`Encoder::reset`] so a reused encoder keeps
    /// both of its frame allocations across streams.
    frame_spare: Option<Frame>,
    lookahead: Lookahead,
    decisions: Vec<FrameDecision>,
}

impl Encoder {
    /// Creates an encoder for frames of `resolution`.
    pub fn new(resolution: Resolution, config: EncoderConfig) -> Self {
        Self {
            luma_q: QuantTable::luma(config.quality),
            chroma_q: QuantTable::chroma(config.quality),
            config,
            resolution,
            reference: None,
            recon_scratch: None,
            frame_spare: None,
            lookahead: Lookahead::new(config),
            decisions: Vec::new(),
        }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Per-frame decisions made so far (one entry per encoded frame).
    pub fn decisions(&self) -> &[FrameDecision] {
        &self.decisions
    }

    /// Clears stream state (reference, lookahead, decisions) while keeping
    /// every allocated scratch buffer, so one encoder can be reused across
    /// independent GOPs or streams of the same resolution.
    pub fn reset(&mut self) {
        if let Some(r) = self.reference.take() {
            if self.recon_scratch.is_none() {
                self.recon_scratch = Some(r);
            } else {
                self.frame_spare = Some(r);
            }
        }
        self.lookahead.reset();
        self.decisions.clear();
    }

    /// Encodes the next frame in display order.
    ///
    /// # Panics
    ///
    /// Panics if `frame`'s resolution differs from the encoder's.
    pub fn encode_frame(&mut self, frame: &Frame) -> EncodedFrame {
        let mut out = EncodedFrame {
            frame_type: FrameType::I,
            data: Vec::new(),
        };
        self.encode_frame_into(frame, &mut out);
        out
    }

    /// [`Encoder::encode_frame`] into an existing [`EncodedFrame`], reusing
    /// its payload buffer — the allocation-free steady-state entry point.
    ///
    /// # Panics
    ///
    /// Panics if `frame`'s resolution differs from the encoder's.
    pub fn encode_frame_into(&mut self, frame: &Frame, out: &mut EncodedFrame) {
        assert_eq!(
            frame.resolution(),
            self.resolution,
            "frame resolution changed mid-stream"
        );
        let mut decision = self.lookahead.observe(frame);
        let mut w = BitWriter::with_buf(std::mem::take(&mut out.data));
        // `decide` only returns P when a reference exists; if that invariant
        // is ever violated, degrade to an I-frame rather than panicking.
        let frame_type = match (decision.frame_type, &self.reference) {
            (FrameType::P, Some(_)) => {
                self.encode_p(frame, &mut w);
                FrameType::P
            }
            (FrameType::P, None) | (FrameType::I, _) => {
                decision.frame_type = FrameType::I;
                self.lookahead.force_i();
                self.encode_i(frame, &mut w);
                FrameType::I
            }
        };
        out.frame_type = frame_type;
        out.data = w.finish();
        self.decisions.push(decision);
    }

    /// Encodes one frame with an externally decided type, bypassing the
    /// lookahead — the GOP-parallel second pass, where pass one already
    /// fixed every frame type. Callers must only force `P` when a reference
    /// exists (i.e. not as the first frame after a reset).
    pub(crate) fn encode_forced(
        &mut self,
        frame: &Frame,
        frame_type: FrameType,
        out: &mut EncodedFrame,
    ) {
        let mut w = BitWriter::with_buf(std::mem::take(&mut out.data));
        match frame_type {
            FrameType::I => self.encode_i(frame, &mut w),
            FrameType::P => self.encode_p(frame, &mut w),
        }
        out.frame_type = frame_type;
        out.data = w.finish();
    }

    fn encode_i(&mut self, frame: &Frame, w: &mut BitWriter) {
        let mut recon = self
            .recon_scratch
            .take()
            .unwrap_or_else(|| Frame::grey(self.resolution));
        encode_plane_intra(frame.y(), &self.luma_q, w, recon.y_mut());
        encode_plane_intra(frame.u(), &self.chroma_q, w, recon.u_mut());
        encode_plane_intra(frame.v(), &self.chroma_q, w, recon.v_mut());
        // The fresh reconstruction becomes the reference; the old reference
        // buffer (or the spare parked by `reset` at a stream boundary) is
        // recycled for the next frame.
        self.recon_scratch = self
            .reference
            .replace(recon)
            .or_else(|| self.frame_spare.take());
    }

    fn encode_p(&mut self, frame: &Frame, w: &mut BitWriter) {
        // Caller (`encode_frame_into`) routes to `encode_i` when no
        // reference exists; an empty reference here would still produce a
        // valid (if wasteful) all-intra-predicted P-frame against a grey
        // frame.
        let reference = self
            .reference
            .take()
            .unwrap_or_else(|| Frame::grey(self.resolution));
        let mut recon = self
            .recon_scratch
            .take()
            .unwrap_or_else(|| Frame::grey(self.resolution));
        let skip_thresh = (self.config.skip_threshold_per_pixel * (MB * MB) as f32) as u32;

        let mb_cols = self.resolution.mb_cols();
        let mb_rows = self.resolution.mb_rows();
        for my in 0..mb_rows {
            for mx in 0..mb_cols {
                let x = mx * MB;
                let y = my * MB;
                let mr = motion::three_step_search(
                    frame.y(),
                    reference.y(),
                    x,
                    y,
                    self.config.search_range,
                );
                if mr.zero_sad <= skip_thresh {
                    // SKIP: copy the co-located macroblock.
                    w.write_bit(false);
                    copy_mb(&reference, &mut recon, x, y, MotionVector::ZERO);
                } else {
                    w.write_bit(true);
                    w.write_se(mr.mv.dx as i64);
                    w.write_se(mr.mv.dy as i64);
                    self.code_inter_mb(frame, &reference, &mut recon, x, y, mr.mv, w);
                }
            }
        }
        self.reference = Some(recon);
        self.recon_scratch = Some(reference);
    }

    /// Codes the residual of one inter macroblock: four 8x8 luma blocks plus
    /// one 8x8 block per chroma plane, each preceded by a coded-block flag.
    #[allow(clippy::too_many_arguments)]
    fn code_inter_mb(
        &self,
        frame: &Frame,
        reference: &Frame,
        recon: &mut Frame,
        x: usize,
        y: usize,
        mv: MotionVector,
        w: &mut BitWriter,
    ) {
        // Luma: 2x2 grid of 8x8 blocks.
        for by in 0..2 {
            for bx in 0..2 {
                let bx8 = x / 8 + bx;
                let by8 = y / 8 + by;
                code_inter_block(
                    frame.y(),
                    reference.y(),
                    recon.y_mut(),
                    bx8,
                    by8,
                    mv,
                    &self.luma_q,
                    w,
                );
            }
        }
        // Chroma: one 8x8 block per plane at half resolution, half motion.
        let cmv = MotionVector {
            dx: mv.dx / 2,
            dy: mv.dy / 2,
        };
        let (cbx, cby) = (x / 16, y / 16);
        code_inter_block(
            frame.u(),
            reference.u(),
            recon.u_mut(),
            cbx,
            cby,
            cmv,
            &self.chroma_q,
            w,
        );
        code_inter_block(
            frame.v(),
            reference.v(),
            recon.v_mut(),
            cbx,
            cby,
            cmv,
            &self.chroma_q,
            w,
        );
    }
}

/// Copies a motion-compensated macroblock (luma + both chroma planes) from
/// `reference` into `recon` at `(x, y)` with displacement `mv`.
fn copy_mb(reference: &Frame, recon: &mut Frame, x: usize, y: usize, mv: MotionVector) {
    recon
        .y_mut()
        .copy_block_from(reference.y(), x, y, MB, mv.dx as i64, mv.dy as i64);
    let (cx, cy) = (x / 2, y / 2);
    let cmv = MotionVector {
        dx: mv.dx / 2,
        dy: mv.dy / 2,
    };
    recon
        .u_mut()
        .copy_block_from(reference.u(), cx, cy, MB / 2, cmv.dx as i64, cmv.dy as i64);
    recon
        .v_mut()
        .copy_block_from(reference.v(), cx, cy, MB / 2, cmv.dx as i64, cmv.dy as i64);
}

/// Extracts the motion-compensated prediction for an 8x8 block at block
/// coordinates `(bx, by)` of `plane`.
pub(crate) fn predict_block8(
    reference: &Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
) -> [i32; 64] {
    let mut pred = [0i32; 64];
    let x0 = bx * 8;
    let y0 = by * 8;
    let sx = x0 as i64 + mv.dx as i64;
    let sy = y0 as i64 + mv.dy as i64;
    // Fast path: the displaced block is fully inside the reference.
    if sx >= 0
        && sy >= 0
        && sx as usize + 8 <= reference.width()
        && sy as usize + 8 <= reference.height()
    {
        let (sx, sy) = (sx as usize, sy as usize);
        let w = reference.width();
        let data = reference.data();
        for dy in 0..8 {
            let row = &data[(sy + dy) * w + sx..][..8];
            for dx in 0..8 {
                pred[dy * 8 + dx] = row[dx] as i32;
            }
        }
        return pred;
    }
    for dy in 0..8 {
        for dx in 0..8 {
            pred[dy * 8 + dx] = reference.sample_clamped(
                x0 as i64 + dx as i64 + mv.dx as i64,
                y0 as i64 + dy as i64 + mv.dy as i64,
            ) as i32;
        }
    }
    pred
}

/// Codes one inter 8x8 block: computes the residual against the
/// motion-compensated prediction, transforms, quantizes, writes a
/// coded-block flag plus coefficients, and reconstructs into `recon`.
#[allow(clippy::too_many_arguments)]
fn code_inter_block(
    cur: &Plane,
    reference: &Plane,
    recon: &mut Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
    q: &QuantTable,
    w: &mut BitWriter,
) {
    let mut block = [0i32; 64];
    cur.get_block8(bx, by, &mut block);
    let pred = predict_block8(reference, bx, by, mv);
    let mut resid = [0i32; 64];
    for i in 0..64 {
        resid[i] = block[i] - pred[i];
    }
    let mut coeffs = [0f32; 64];
    dct::forward(&resid, &mut coeffs);
    let mut levels = [0i32; 64];
    q.quantize(&coeffs, &mut levels);
    let coded = levels.iter().any(|&l| l != 0);
    w.write_bit(coded);
    let mut out = pred;
    if coded {
        crate::entropy::encode_block(&levels, w);
        let mut deq = [0f32; 64];
        q.dequantize(&levels, &mut deq);
        let mut rec_resid = [0i32; 64];
        dct::inverse(&deq, &mut rec_resid);
        for i in 0..64 {
            out[i] = pred[i] + rec_resid[i];
        }
    }
    recon.put_block8(bx, by, &out);
}

/// Intra-codes a whole plane (8x8 blocks, level shift, DCT, quantize, DC
/// delta coding) and reconstructs it into `recon` for the closed loop.
pub(crate) fn encode_plane_intra(
    plane: &Plane,
    q: &QuantTable,
    w: &mut BitWriter,
    recon: &mut Plane,
) {
    let bcols = plane.width().div_ceil(8);
    let brows = plane.height().div_ceil(8);
    let mut prev_dc = 0i32;
    for by in 0..brows {
        for bx in 0..bcols {
            let mut block = [0i32; 64];
            plane.get_block8(bx, by, &mut block);
            for v in block.iter_mut() {
                *v -= 128;
            }
            let mut coeffs = [0f32; 64];
            dct::forward(&block, &mut coeffs);
            let mut levels = [0i32; 64];
            q.quantize(&coeffs, &mut levels);
            let dc = levels[0];
            levels[0] = dc - prev_dc;
            crate::entropy::encode_block(&levels, w);
            levels[0] = dc;
            prev_dc = dc;
            // Closed-loop reconstruction.
            let mut deq = [0f32; 64];
            q.dequantize(&levels, &mut deq);
            let mut rec = [0i32; 64];
            dct::inverse(&deq, &mut rec);
            for v in rec.iter_mut() {
                *v += 128;
            }
            recon.put_block8(bx, by, &rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;

    fn noise_frame(res: Resolution, seed: u64, amplitude: i32) -> Frame {
        // Deterministic textured background + per-frame pseudo-noise.
        let mut f = Frame::grey(res);
        let w = res.width() as usize;
        let h = res.height() as usize;
        for y in 0..h {
            for x in 0..w {
                let tex = ((x * 7 + y * 13) % 64) as i32 + 96;
                let n = (((x as u64).wrapping_mul(2654435761)
                    ^ (y as u64).wrapping_mul(40503)
                    ^ seed.wrapping_mul(6364136223846793005))
                    >> 7) as i32
                    % (2 * amplitude + 1)
                    - amplitude;
                f.y_mut().put(x, y, (tex + n).clamp(0, 255) as u8);
            }
        }
        f
    }

    #[test]
    fn first_frame_is_i() {
        let res = Resolution::new(64, 48);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 40));
        let ef = enc.encode_frame(&Frame::grey(res));
        assert_eq!(ef.frame_type, FrameType::I);
        assert!(enc.decisions()[0].forced_by_gop);
    }

    #[test]
    fn static_scene_yields_p_frames() {
        let res = Resolution::new(64, 48);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 40));
        let f = noise_frame(res, 0, 0);
        enc.encode_frame(&f);
        for _ in 0..10 {
            let ef = enc.encode_frame(&f);
            assert_eq!(ef.frame_type, FrameType::P);
        }
    }

    #[test]
    fn gop_limit_forces_i() {
        let res = Resolution::new(64, 48);
        let mut enc = Encoder::new(res, EncoderConfig::new(5, 0));
        let f = noise_frame(res, 0, 1);
        let types: Vec<FrameType> = (0..12).map(|_| enc.encode_frame(&f).frame_type).collect();
        assert_eq!(types[0], FrameType::I);
        assert_eq!(types[5], FrameType::I);
        assert_eq!(types[10], FrameType::I);
        assert!(types[1..5].iter().all(|&t| t == FrameType::P));
    }

    #[test]
    fn scenecut_400_makes_every_frame_i_after_min_keyint() {
        let res = Resolution::new(64, 48);
        let cfg = EncoderConfig::new(1000, 400).with_min_keyint(1);
        let mut enc = Encoder::new(res, cfg);
        // Use frames with some texture so intra cost is non-zero.
        for i in 0..5 {
            let ef = enc.encode_frame(&noise_frame(res, i, 2));
            assert_eq!(ef.frame_type, FrameType::I, "frame {i}");
        }
    }

    #[test]
    fn scene_change_triggers_i_frame() {
        let res = Resolution::new(64, 48);
        let cfg = EncoderConfig::new(1000, 150).with_min_keyint(1);
        let mut enc = Encoder::new(res, cfg);
        let background = noise_frame(res, 0, 1);
        enc.encode_frame(&background);
        for _ in 0..5 {
            assert_eq!(enc.encode_frame(&background).frame_type, FrameType::P);
        }
        // A completely different scene.
        let mut other = Frame::grey(res);
        for y in 0..48 {
            for x in 0..64 {
                other.y_mut().put(x, y, (((x * 31) ^ (y * 17)) % 256) as u8);
            }
        }
        let ef = enc.encode_frame(&other);
        assert_eq!(ef.frame_type, FrameType::I);
        assert!(enc.decisions().last().unwrap().scenecut_fired);
    }

    #[test]
    fn higher_scenecut_never_fewer_iframes() {
        let res = Resolution::new(64, 48);
        // A sequence with a moderate change mid-way.
        let frames: Vec<Frame> = (0..20)
            .map(|i| {
                let mut f = noise_frame(res, 0, 1);
                if i >= 10 {
                    // Paste a block (an "object").
                    for y in 8..24 {
                        for x in 8..32 {
                            f.y_mut().put(x, y, 230);
                        }
                    }
                }
                f
            })
            .collect();
        let count_i = |sc: u16| {
            let mut enc = Encoder::new(res, EncoderConfig::new(1000, sc));
            frames
                .iter()
                .filter(|f| enc.encode_frame(f).frame_type == FrameType::I)
                .count()
        };
        let counts: Vec<usize> = [0u16, 100, 200, 300, 400]
            .iter()
            .map(|&s| count_i(s))
            .collect();
        for w in counts.windows(2) {
            assert!(
                w[0] <= w[1],
                "I-frame count must grow with scenecut: {counts:?}"
            );
        }
    }

    #[test]
    fn i_frame_roundtrip_quality() {
        let res = Resolution::new(64, 48);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 40).with_quality(90));
        let f = noise_frame(res, 3, 4);
        let ef = enc.encode_frame(&f);
        let dec = Decoder::decode_iframe(res, 90, &ef.data).expect("decode");
        assert!(f.psnr_luma(&dec) > 35.0, "I-frame PSNR too low");
    }

    #[test]
    fn p_frames_smaller_than_i_frames_for_static_video() {
        let res = Resolution::new(96, 64);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 40));
        let f = noise_frame(res, 0, 1);
        let i_size = enc.encode_frame(&f).size_bytes();
        let p_size = enc.encode_frame(&f).size_bytes();
        assert!(
            p_size * 4 < i_size,
            "P ({p_size}) should be far smaller than I ({i_size})"
        );
    }

    #[test]
    fn config_validation() {
        let cfg = EncoderConfig::new(1, 0);
        assert_eq!(cfg.gop_size, 1);
        let d = EncoderConfig::default();
        assert_eq!((d.gop_size, d.scenecut), (250, 40));
    }

    #[test]
    #[should_panic(expected = "scenecut")]
    fn config_rejects_out_of_range_scenecut() {
        let _ = EncoderConfig::new(10, 401);
    }
}
