//! GOP-parallel encoding: split, encode, splice.
//!
//! The sequential [`Encoder`] is a closed-loop state machine, but its state
//! resets completely at every I-frame: GOPs in this codec are *closed* — a
//! P-frame only references frames back through its GOP's opening I-frame.
//! That makes the following two-pass pipeline produce a bitstream
//! **byte-identical** to the sequential encoder's:
//!
//! 1. **Plan.** Run the shared [`Lookahead`] over the whole sequence. This is
//!    the exact type (and therefore the exact arithmetic) the sequential
//!    encoder uses to place I-frames, so the frame-type plan cannot diverge.
//!    The lookahead works on half-resolution source planes and costs a small
//!    fraction of a full encode.
//! 2. **Encode.** Split the sequence into GOP ranges at the planned I-frames
//!    and hand whole GOPs to worker threads. Each worker owns one [`Encoder`]
//!    and recycles it across GOPs via [`Encoder::reset`], so per-worker
//!    scratch (reconstruction frames, payload buffers) is allocated once.
//!    GOPs are pulled from a shared queue, which load-balances the variable
//!    GOP lengths scene content produces.
//! 3. **Splice.** Workers write each GOP's frames directly into its slot of
//!    the output vector (disjoint `&mut` slices, one per GOP), so display
//!    order is preserved by construction and no re-sorting is needed.
//!
//! [`Lookahead`]: crate::encode::Lookahead

use std::ops::Range;
use std::sync::Mutex;

use crate::encode::{EncodedFrame, Encoder, EncoderConfig, FrameDecision, FrameType, Lookahead};
use crate::frame::{Frame, Resolution};

/// Runs the lookahead pass alone: the frame-type plan for `frames`, one
/// decision per frame, identical to what the sequential encoder would decide.
pub fn plan_frame_types(config: EncoderConfig, frames: &[Frame]) -> Vec<FrameDecision> {
    let mut lookahead = Lookahead::new(config);
    frames.iter().map(|f| lookahead.observe(f)).collect()
}

/// Splits a frame-type plan into GOP ranges: each range starts at an I-frame
/// (the first frame is always planned as I) and runs up to the next one.
pub fn gop_ranges(decisions: &[FrameDecision]) -> Vec<Range<usize>> {
    let mut gops = Vec::new();
    let mut start = 0;
    for (i, d) in decisions.iter().enumerate().skip(1) {
        if d.frame_type == FrameType::I {
            gops.push(start..i);
            start = i;
        }
    }
    if !decisions.is_empty() {
        gops.push(start..decisions.len());
    }
    gops
}

/// Encodes `frames` with up to `workers` threads, returning the encoded
/// frames in display order plus the lookahead's per-frame decisions.
///
/// The output is byte-identical to feeding the same frames through
/// [`Encoder::encode_frame`] one by one (see the module docs for why).
/// `workers` is clamped to `1..=`the number of GOPs; with one worker the
/// encode runs on the calling thread with no threads spawned.
///
/// # Panics
///
/// Panics if any frame's resolution differs from `resolution`.
pub fn encode_parallel_with_decisions(
    resolution: Resolution,
    config: EncoderConfig,
    frames: &[Frame],
    workers: usize,
) -> (Vec<EncodedFrame>, Vec<FrameDecision>) {
    for f in frames {
        assert_eq!(
            f.resolution(),
            resolution,
            "frame resolution changed mid-stream"
        );
    }
    let decisions = plan_frame_types(config, frames);
    let gops = gop_ranges(&decisions);
    let mut encoded: Vec<EncodedFrame> = frames
        .iter()
        .map(|_| EncodedFrame {
            frame_type: FrameType::I,
            data: Vec::new(),
        })
        .collect();
    let workers = workers.clamp(1, gops.len().max(1));

    if workers == 1 {
        let mut enc = Encoder::new(resolution, config);
        for gop in &gops {
            encode_gop(&mut enc, &frames[gop.clone()], &mut encoded[gop.clone()]);
        }
        return (encoded, decisions);
    }

    // Carve the output into one disjoint mutable slice per GOP, then let
    // workers pull (frames, output) pairs from a shared queue.
    let mut work: Vec<(&[Frame], &mut [EncodedFrame])> = Vec::with_capacity(gops.len());
    let mut rest: &mut [EncodedFrame] = &mut encoded;
    for gop in &gops {
        let (head, tail) = rest.split_at_mut(gop.len());
        work.push((&frames[gop.clone()], head));
        rest = tail;
    }
    let queue = Mutex::new(work.into_iter());

    // The fleet runtime routes all spawning through its pool facade; this
    // crate sits *below* that runtime (the facade's pool encodes via this
    // module), so scoped threads are the base case here. The scope guarantees
    // every worker is joined before `encoded` is read.
    // lint:allow(no-raw-spawn): leaf crate below the pool facade; scoped + joined here
    std::thread::scope(|s| {
        for _ in 0..workers {
            // lint:allow(no-raw-spawn): bounded scoped workers, joined by the scope
            s.spawn(|| {
                let mut enc = Encoder::new(resolution, config);
                loop {
                    // Take the lock only to pull the next GOP.
                    let item = queue.lock().unwrap_or_else(|e| e.into_inner()).next();
                    let Some((gop_frames, out)) = item else { break };
                    encode_gop(&mut enc, gop_frames, out);
                }
            });
        }
    });
    (encoded, decisions)
}

/// Encodes one closed GOP with a recycled encoder: I-frame first, P-frames
/// after, exactly as the sequential encoder would.
fn encode_gop(enc: &mut Encoder, frames: &[Frame], out: &mut [EncodedFrame]) {
    enc.reset();
    for (i, (frame, slot)) in frames.iter().zip(out.iter_mut()).enumerate() {
        let ft = if i == 0 { FrameType::I } else { FrameType::P };
        enc.encode_forced(frame, ft, slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Resolution;

    fn moving_frames(res: Resolution, n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = Frame::grey(res);
                let w = res.width() as usize;
                let h = res.height() as usize;
                for y in 0..h {
                    for x in 0..w {
                        // A textured background plus a bright moving square.
                        let mut v = ((x * 7 + y * 13) % 160) as u8;
                        let sq = 4 * i % w.max(1);
                        if x >= sq && x < sq + 12 && (8..20).contains(&y) {
                            v = 230;
                        }
                        f.y_mut().put(x, y, v);
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn plan_matches_sequential_encoder() {
        let res = Resolution::new(64, 48);
        let frames = moving_frames(res, 24);
        let config = EncoderConfig::new(8, 120);
        let plan = plan_frame_types(config, &frames);
        let mut enc = Encoder::new(res, config);
        for f in &frames {
            enc.encode_frame(f);
        }
        let seq: Vec<FrameType> = enc.decisions().iter().map(|d| d.frame_type).collect();
        let planned: Vec<FrameType> = plan.iter().map(|d| d.frame_type).collect();
        assert_eq!(planned, seq);
    }

    #[test]
    fn gop_ranges_cover_and_partition() {
        let res = Resolution::new(64, 48);
        let frames = moving_frames(res, 30);
        let plan = plan_frame_types(EncoderConfig::new(6, 100), &frames);
        let gops = gop_ranges(&plan);
        assert_eq!(gops.first().map(|g| g.start), Some(0));
        assert_eq!(gops.last().map(|g| g.end), Some(frames.len()));
        for pair in gops.windows(2) {
            assert_eq!(pair[0].end, pair[1].start, "ranges must partition");
        }
        for g in &gops {
            assert_eq!(plan[g.start].frame_type, FrameType::I);
            for d in &plan[g.start + 1..g.end] {
                assert_eq!(d.frame_type, FrameType::P);
            }
        }
    }

    #[test]
    fn parallel_bitstream_is_byte_identical() {
        let res = Resolution::new(64, 48);
        let frames = moving_frames(res, 25);
        let config = EncoderConfig::new(7, 150);
        let mut enc = Encoder::new(res, config);
        let sequential: Vec<EncodedFrame> = frames.iter().map(|f| enc.encode_frame(f)).collect();
        for workers in [1, 2, 4] {
            let (par, decisions) = encode_parallel_with_decisions(res, config, &frames, workers);
            assert_eq!(par.len(), sequential.len());
            for (i, (a, b)) in sequential.iter().zip(&par).enumerate() {
                assert_eq!(a.frame_type, b.frame_type, "frame {i} type (w={workers})");
                assert_eq!(a.data, b.data, "frame {i} payload (w={workers})");
            }
            assert_eq!(decisions.len(), frames.len());
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let res = Resolution::new(32, 32);
        let (frames, decisions) =
            encode_parallel_with_decisions(res, EncoderConfig::new(4, 0), &[], 4);
        assert!(frames.is_empty());
        assert!(decisions.is_empty());
    }
}
