//! The video decoder: the full (expensive) pipeline plus independent I-frame
//! decoding.
//!
//! Two entry points matter for SiEVE:
//!
//! * [`Decoder::decode_frame`] — the classical path: every frame, I or P, is
//!   entropy-decoded, dequantized, inverse-transformed and (for P-frames)
//!   motion-compensated. Baseline filters (MSE/SIFT) must run this for every
//!   frame before they can compare pixels.
//! * [`Decoder::decode_iframe`] — decodes a single I-frame with no reference
//!   state, the way a JPEG still is decoded. This is all the I-frame seeker
//!   ever pays for.

use crate::bitio::{BitReader, ReadBitsError};
use crate::dct;
use crate::encode::{EncodedFrame, FrameType};
use crate::entropy;
use crate::frame::{Frame, Plane, Resolution};
use crate::motion::{MotionVector, MB};
use crate::quant::QuantTable;

/// Errors produced while decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bitstream ended early or contained an invalid code.
    Bitstream,
    /// A P-frame was submitted before any I-frame established a reference.
    MissingReference,
    /// [`Decoder::decode_iframe`] was handed a frame that is not an I-frame.
    NotAnIFrame,
    /// A requested frame index is outside the stream.
    FrameOutOfRange,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Bitstream => write!(f, "malformed or truncated bitstream"),
            DecodeError::MissingReference => {
                write!(f, "P-frame received before any I-frame reference")
            }
            DecodeError::NotAnIFrame => write!(f, "independent decode requires an I-frame"),
            DecodeError::FrameOutOfRange => write!(f, "frame index outside the stream"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<ReadBitsError> for DecodeError {
    fn from(_: ReadBitsError) -> Self {
        DecodeError::Bitstream
    }
}

/// Stateful decoder mirroring the [`crate::encode::Encoder`] closed loop.
///
/// The decoder owns two frame buffers (the reference and a work frame) and
/// swaps them after each frame, so the steady-state batch path
/// ([`Decoder::decode_next`], [`Decoder::decode_batch`]) performs no heap
/// allocation.
#[derive(Debug)]
pub struct Decoder {
    resolution: Resolution,
    quality: u8,
    luma_q: QuantTable,
    chroma_q: QuantTable,
    reference: Option<Frame>,
    /// Recycled buffer the next frame is decoded into; swaps with
    /// `reference` after every successful frame.
    work: Option<Frame>,
    /// Buffer parked by [`Decoder::reset`] so a reused decoder keeps both
    /// of its frame allocations across seeks.
    spare: Option<Frame>,
}

impl Decoder {
    /// Creates a decoder for a stream of `resolution` encoded at `quality`.
    ///
    /// # Panics
    ///
    /// Panics if `quality` is outside `1..=100`.
    pub fn new(resolution: Resolution, quality: u8) -> Self {
        Self {
            resolution,
            quality,
            luma_q: QuantTable::luma(quality),
            chroma_q: QuantTable::chroma(quality),
            reference: None,
            work: None,
            spare: None,
        }
    }

    /// The stream resolution this decoder was built for.
    pub fn resolution(&self) -> Resolution {
        self.resolution
    }

    /// The encode quality this decoder was built for.
    pub fn quality(&self) -> u8 {
        self.quality
    }

    /// Decodes the next frame in stream order.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::MissingReference`] if a P-frame arrives before
    /// any I-frame, or [`DecodeError::Bitstream`] on malformed payloads.
    pub fn decode_frame(&mut self, ef: &EncodedFrame) -> Result<Frame, DecodeError> {
        Ok(self.decode_next(ef)?.clone())
    }

    /// Decodes the next frame in stream order into a recycled internal
    /// buffer and returns a view of it — [`Decoder::decode_frame`] without
    /// the defensive clone. The returned reference is valid until the next
    /// decode call; clone it to keep the frame.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::MissingReference`] if a P-frame arrives before
    /// any I-frame, or [`DecodeError::Bitstream`] on malformed payloads. On
    /// error the decoder's reference state is unchanged, as if the frame had
    /// never been submitted.
    pub fn decode_next(&mut self, ef: &EncodedFrame) -> Result<&Frame, DecodeError> {
        let mut frame = self
            .work
            .take()
            .unwrap_or_else(|| Frame::grey(self.resolution));
        let result = match ef.frame_type {
            FrameType::I => decode_i_into(&self.luma_q, &self.chroma_q, &ef.data, &mut frame),
            FrameType::P => match self.reference.as_ref() {
                None => Err(DecodeError::MissingReference),
                Some(reference) => decode_p_into(
                    &self.luma_q,
                    &self.chroma_q,
                    reference,
                    &ef.data,
                    &mut frame,
                ),
            },
        };
        match result {
            Err(e) => {
                // Return the (partially written) buffer to the work slot.
                self.work = Some(frame);
                Err(e)
            }
            Ok(()) => {
                // The old reference (or the spare parked by `reset` at a
                // seek boundary) becomes the next work buffer.
                self.work = self.reference.replace(frame).or_else(|| self.spare.take());
                Ok(self.reference.as_ref().expect("reference just set"))
            }
        }
    }

    /// Decodes a run of frames in stream order, handing each decoded frame
    /// to `sink` as `(index, frame)`. All frame buffers are recycled across
    /// the run — the allocation-free bulk path the analysis pipelines use.
    ///
    /// # Errors
    ///
    /// Stops at and returns the first decode failure.
    pub fn decode_batch<F>(
        &mut self,
        frames: &[EncodedFrame],
        mut sink: F,
    ) -> Result<(), DecodeError>
    where
        F: FnMut(usize, &Frame),
    {
        for (i, ef) in frames.iter().enumerate() {
            sink(i, self.decode_next(ef)?);
        }
        Ok(())
    }

    /// Decodes a single I-frame with no decoder state, exactly like a JPEG
    /// still — the operation the SiEVE I-frame seeker performs.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Bitstream`] on malformed payloads. The caller
    /// is responsible for passing I-frame payloads; P-frame payloads are not
    /// self-describing and will either fail or decode to garbage.
    pub fn decode_iframe(
        resolution: Resolution,
        quality: u8,
        data: &[u8],
    ) -> Result<Frame, DecodeError> {
        let luma_q = QuantTable::luma(quality);
        let chroma_q = QuantTable::chroma(quality);
        let mut frame = Frame::grey(resolution);
        decode_i_into(&luma_q, &chroma_q, data, &mut frame)?;
        Ok(frame)
    }

    /// Resets the reference state (e.g. before seeking to a new GOP),
    /// keeping the allocated frame buffers.
    pub fn reset(&mut self) {
        if let Some(r) = self.reference.take() {
            if self.work.is_none() {
                self.work = Some(r);
            } else {
                self.spare = Some(r);
            }
        }
    }
}

/// Decodes an I-frame payload into `frame`. Every sample of every plane is
/// overwritten, so `frame` may hold arbitrary stale content.
fn decode_i_into(
    luma_q: &QuantTable,
    chroma_q: &QuantTable,
    data: &[u8],
    frame: &mut Frame,
) -> Result<(), DecodeError> {
    let mut r = BitReader::new(data);
    decode_plane_intra(&mut r, luma_q, frame.y_mut())?;
    decode_plane_intra(&mut r, chroma_q, frame.u_mut())?;
    decode_plane_intra(&mut r, chroma_q, frame.v_mut())?;
    Ok(())
}

fn decode_plane_intra(
    r: &mut BitReader<'_>,
    q: &QuantTable,
    plane: &mut Plane,
) -> Result<(), DecodeError> {
    let bcols = plane.width().div_ceil(8);
    let brows = plane.height().div_ceil(8);
    let mut prev_dc = 0i32;
    for by in 0..brows {
        for bx in 0..bcols {
            let mut levels = entropy::decode_block(r)?;
            levels[0] += prev_dc;
            prev_dc = levels[0];
            let mut deq = [0f32; 64];
            q.dequantize(&levels, &mut deq);
            let mut rec = [0i32; 64];
            dct::inverse(&deq, &mut rec);
            for v in rec.iter_mut() {
                *v += 128;
            }
            plane.put_block8(bx, by, &rec);
        }
    }
    Ok(())
}

/// Decodes a P-frame payload into `frame` against `reference`. Every sample
/// is overwritten (each macroblock is either SKIP-copied or fully coded), so
/// `frame` may hold arbitrary stale content.
fn decode_p_into(
    luma_q: &QuantTable,
    chroma_q: &QuantTable,
    reference: &Frame,
    data: &[u8],
    frame: &mut Frame,
) -> Result<(), DecodeError> {
    let mut r = BitReader::new(data);
    let resolution = frame.resolution();
    let mb_cols = resolution.mb_cols();
    let mb_rows = resolution.mb_rows();
    for my in 0..mb_rows {
        for mx in 0..mb_cols {
            let x = mx * MB;
            let y = my * MB;
            let coded = r.read_bit()?;
            if !coded {
                // SKIP macroblock: copy co-located.
                copy_mb_zero(reference, frame, x, y);
                continue;
            }
            let dx = r.read_se()?;
            let dy = r.read_se()?;
            let mv = MotionVector {
                dx: dx as i16,
                dy: dy as i16,
            };
            // Luma 2x2 blocks.
            for by in 0..2 {
                for bx in 0..2 {
                    decode_inter_block(
                        &mut r,
                        luma_q,
                        reference.y(),
                        frame.y_mut(),
                        x / 8 + bx,
                        y / 8 + by,
                        mv,
                    )?;
                }
            }
            let cmv = MotionVector {
                dx: mv.dx / 2,
                dy: mv.dy / 2,
            };
            decode_inter_block(
                &mut r,
                chroma_q,
                reference.u(),
                frame.u_mut(),
                x / 16,
                y / 16,
                cmv,
            )?;
            decode_inter_block(
                &mut r,
                chroma_q,
                reference.v(),
                frame.v_mut(),
                x / 16,
                y / 16,
                cmv,
            )?;
        }
    }
    Ok(())
}

fn copy_mb_zero(reference: &Frame, frame: &mut Frame, x: usize, y: usize) {
    frame.y_mut().copy_block_from(reference.y(), x, y, MB, 0, 0);
    let (cx, cy) = (x / 2, y / 2);
    frame
        .u_mut()
        .copy_block_from(reference.u(), cx, cy, MB / 2, 0, 0);
    frame
        .v_mut()
        .copy_block_from(reference.v(), cx, cy, MB / 2, 0, 0);
}

fn decode_inter_block(
    r: &mut BitReader<'_>,
    q: &QuantTable,
    reference: &Plane,
    out: &mut Plane,
    bx: usize,
    by: usize,
    mv: MotionVector,
) -> Result<(), DecodeError> {
    let pred = crate::encode::predict_block8(reference, bx, by, mv);
    let coded = r.read_bit()?;
    let mut rec = pred;
    if coded {
        let levels = entropy::decode_block(r)?;
        let mut deq = [0f32; 64];
        q.dequantize(&levels, &mut deq);
        let mut resid = [0i32; 64];
        dct::inverse(&deq, &mut resid);
        for i in 0..64 {
            rec[i] = pred[i] + resid[i];
        }
    }
    out.put_block8(bx, by, &rec);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{Encoder, EncoderConfig};

    fn moving_square_frames(res: Resolution, n: usize) -> Vec<Frame> {
        (0..n)
            .map(|i| {
                let mut f = Frame::grey(res);
                let w = res.width() as usize;
                let h = res.height() as usize;
                for y in 0..h {
                    for x in 0..w {
                        f.y_mut().put(x, y, ((x * 5 + y * 3) % 96 + 60) as u8);
                    }
                }
                let ox = (i * 2) % (w - 16);
                for y in 8..24.min(h) {
                    for x in ox..ox + 16 {
                        f.y_mut().put(x, y, 220);
                        f.u_mut().put(x / 2, y / 2, 90);
                    }
                }
                f
            })
            .collect()
    }

    #[test]
    fn encoder_decoder_closed_loop_no_drift() {
        let res = Resolution::new(96, 64);
        let frames = moving_square_frames(res, 12);
        let cfg = EncoderConfig::new(100, 0).with_quality(85);
        let mut enc = Encoder::new(res, cfg);
        let mut dec = Decoder::new(res, 85);
        for (i, f) in frames.iter().enumerate() {
            let ef = enc.encode_frame(f);
            let out = dec.decode_frame(&ef).expect("decode");
            let psnr = f.psnr_luma(&out);
            assert!(psnr > 30.0, "frame {i}: PSNR {psnr} too low (drift?)");
        }
    }

    #[test]
    fn p_frame_without_reference_errors() {
        let res = Resolution::new(32, 32);
        let mut dec = Decoder::new(res, 75);
        let fake = EncodedFrame {
            frame_type: FrameType::P,
            data: vec![0u8; 4],
        };
        assert_eq!(
            dec.decode_frame(&fake).unwrap_err(),
            DecodeError::MissingReference
        );
    }

    #[test]
    fn truncated_iframe_errors() {
        let res = Resolution::new(32, 32);
        let mut enc = Encoder::new(res, EncoderConfig::new(10, 40));
        let ef = enc.encode_frame(&Frame::grey(res));
        let cut = &ef.data[..ef.data.len() / 2];
        assert_eq!(
            Decoder::decode_iframe(res, 75, cut).unwrap_err(),
            DecodeError::Bitstream
        );
    }

    #[test]
    fn independent_iframe_decode_matches_streaming_decode() {
        let res = Resolution::new(64, 48);
        let frames = moving_square_frames(res, 3);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 40));
        let efs: Vec<_> = frames.iter().map(|f| enc.encode_frame(f)).collect();
        assert_eq!(efs[0].frame_type, FrameType::I);
        let mut dec = Decoder::new(res, 75);
        let streamed = dec.decode_frame(&efs[0]).unwrap();
        let independent = Decoder::decode_iframe(res, 75, &efs[0].data).unwrap();
        assert_eq!(streamed, independent);
    }

    #[test]
    fn reset_clears_reference() {
        let res = Resolution::new(32, 32);
        let mut enc = Encoder::new(res, EncoderConfig::new(100, 0));
        let f = Frame::grey(res);
        let i = enc.encode_frame(&f);
        let p = enc.encode_frame(&f);
        let mut dec = Decoder::new(res, 75);
        dec.decode_frame(&i).unwrap();
        dec.decode_frame(&p).unwrap();
        dec.reset();
        assert_eq!(
            dec.decode_frame(&p).unwrap_err(),
            DecodeError::MissingReference
        );
    }

    #[test]
    fn error_display_messages() {
        assert!(DecodeError::Bitstream.to_string().contains("bitstream"));
        assert!(DecodeError::MissingReference
            .to_string()
            .contains("I-frame"));
        assert!(DecodeError::NotAnIFrame.to_string().contains("I-frame"));
        assert!(DecodeError::FrameOutOfRange.to_string().contains("index"));
    }
}
