//! # sieve-simnet — edge/cloud dataflow and network simulation
//!
//! The deployment substrate of the SiEVE reproduction, standing in for the
//! paper's Apache NiFi instances, Echo orchestration, and traffic-shaped
//! 30 Mbps WAN:
//!
//! * [`topology`] — nodes (camera/edge/cloud) and links with bandwidth and
//!   latency, including the paper's testbed shape;
//! * [`pipeline`] — an exact tandem-queue simulator for linear dataflows,
//!   cheap enough to replay millions of frames with calibrated costs;
//! * [`des`] — a general discrete-event engine for non-linear scenarios;
//! * [`live`] — a threaded runtime (crossbeam channels, back-pressure,
//!   bandwidth throttling) that actually executes a pipeline;
//! * [`shard`] — the multi-stream mailbox: bounded per-lane queues with
//!   non-blocking shed, round-robin draining, runtime lane join/leave
//!   (the scheduler substrate of `sieve-fleet`);
//! * [`calibrate`] — measuring real per-operation costs to feed the
//!   simulators;
//! * [`sync`] — the workspace synchronization facade: real primitives
//!   normally, `sieve-check`'s instrumented ones under `model-check`.

pub mod calibrate;
pub mod des;
pub mod live;
pub mod pipeline;
pub mod shard;
pub mod sync;
pub mod time;
pub mod topology;

pub use calibrate::{measure_secs, CostProfile};
pub use des::Simulator;
pub use live::{run_live, run_live_in, LiveItem, LiveReport, LiveStage, StageResult};
pub use pipeline::{ItemResult, Pipeline, PipelineReport, StageSpec, StepWork};
pub use shard::{GuardedPop, Popped, PushOutcome, ShardQueue, Steal, MAX_LANE_WEIGHT};
pub use time::SimTime;
pub use topology::{Link, Node, ThreeTier, WAN_STAGE};
