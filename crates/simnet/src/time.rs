//! Simulated time as integer nanoseconds.
//!
//! Integer time keeps event ordering exact and `Ord`-able; floats are only
//! used at the API boundary.

use serde::{Deserialize, Serialize};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    pub fn from_nanos(nanos: u64) -> Self {
        Self(nanos)
    }

    /// From seconds; sub-nanosecond remainders are truncated.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "time must be non-negative");
        Self((secs * 1e9) as u64)
    }

    /// Nanosecond count.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// As floating-point seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of a duration in seconds.
    pub fn after_secs(&self, secs: f64) -> SimTime {
        SimTime(self.0.saturating_add(SimTime::from_secs_f64(secs).0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert_eq!(
            SimTime::from_nanos(5).max(SimTime::from_nanos(9)),
            SimTime::from_nanos(9)
        );
    }

    #[test]
    fn after_secs_accumulates() {
        let t = SimTime::ZERO.after_secs(0.25).after_secs(0.75);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(0.5).to_string(), "0.500000s");
    }
}
