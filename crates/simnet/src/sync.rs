//! The workspace synchronization facade.
//!
//! Every crate in the runtime path (`sieve-simnet`, `sieve-core`,
//! `sieve-fleet`) takes its locks, condvars, atomics and thread spawns from
//! this module instead of `std::sync`/`parking_lot` directly. Normally the
//! types resolve to the real primitives (non-poisoning `parking_lot`-style
//! guards over `std`); under the `model-check` feature they resolve to
//! `sieve-check`'s instrumented equivalents, which hand every operation to
//! a deterministic schedule explorer — so the model-check suite exercises
//! the *same* queue and scheduler code that runs in production, not a
//! re-implementation.
//!
//! The facade API is the intersection the runtime needs:
//! * `Mutex`/`RwLock` with non-poisoning `lock()`/`read()`/`write()`, and
//!   `Mutex::try_lock() -> Option<guard>` — the work-stealing scheduler's
//!   owner-wins protocol rests on `try_lock` being instrumented too, so
//!   the explorer schedules around a failed acquisition exactly like a
//!   successful one;
//! * `Condvar::wait(guard) -> guard` (consuming style, no poison result);
//! * `atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering}`;
//! * `thread::{spawn, JoinHandle, yield_now}`.
//!
//! The `no-std-sync` and `no-raw-spawn` lints (`cargo xtask lint`) keep
//! runtime code from bypassing this module.

#[cfg(feature = "model-check")]
pub use sieve_check::sync::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[cfg(feature = "model-check")]
pub use sieve_check::sync::atomic;

#[cfg(feature = "model-check")]
pub use sieve_check::thread;

#[cfg(not(feature = "model-check"))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "model-check"))]
pub use real::{atomic, thread, Condvar};

#[cfg(not(feature = "model-check"))]
mod real {
    // The facade *is* the sanctioned wrapper over std sync.
    // lint:allow-file(no-std-sync): this module is the facade's std backend
    // lint:allow-file(no-raw-spawn): thread::spawn is re-exported from here

    /// Atomics pass straight through to `std`.
    pub use std::sync::atomic;

    /// Thread spawn/join pass straight through to `std`.
    pub mod thread {
        pub use std::thread::{spawn, yield_now, JoinHandle};
    }

    use super::MutexGuard;

    /// A condition variable with a consuming, non-poisoning `wait`.
    ///
    /// Works with the facade's [`super::Mutex`] guards (the `parking_lot`
    /// shim's guard is a `std` guard underneath, so the `std` condvar can
    /// block on it directly).
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a condition variable.
        pub fn new() -> Self {
            Self::default()
        }

        /// Atomically releases the guard's mutex and waits; the mutex is
        /// reacquired before returning. Callers must re-check their
        /// predicate in a loop (spurious wakeups happen).
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(|e| e.into_inner())
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }
}
