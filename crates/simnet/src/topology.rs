//! Nodes and links of the 3-tier deployment.

use serde::{Deserialize, Serialize};

/// The canonical name of the edge→cloud WAN hop, shared by the
/// tandem-queue pipeline stages, the live-stage helpers, `sieve-net`'s
/// `wan.*` registry instruments and the bench artifacts — one constant so
/// the stats series and the experiment columns cannot drift apart.
pub const WAN_STAGE: &str = "wan";

/// A compute tier (camera, edge server, cloud server).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name ("edge", "cloud").
    pub name: String,
    /// Relative compute speed: service times measured on the reference
    /// machine are divided by this factor when run on this node.
    pub speed_factor: f64,
}

impl Node {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if `speed_factor` is not positive.
    pub fn new(name: impl Into<String>, speed_factor: f64) -> Self {
        assert!(
            speed_factor > 0.0 && speed_factor.is_finite(),
            "speed factor must be positive"
        );
        Self {
            name: name.into(),
            speed_factor,
        }
    }

    /// Adjusts a reference-machine service time for this node.
    pub fn service_secs(&self, reference_secs: f64) -> f64 {
        reference_secs / self.speed_factor
    }
}

/// A network link between two tiers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable name ("edge->cloud").
    pub name: String,
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds added to every transfer.
    pub latency_secs: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if bandwidth is not positive or latency is negative.
    pub fn new(name: impl Into<String>, bandwidth_bps: f64, latency_secs: f64) -> Self {
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "bandwidth must be positive"
        );
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        Self {
            name: name.into(),
            bandwidth_bps,
            latency_secs,
        }
    }

    /// The paper's 30 Mbps edge→cloud WAN with 20 ms latency.
    pub fn paper_wan() -> Self {
        Self::new("edge->cloud", 30.0e6, 0.02)
    }

    /// A camera→edge LAN: 100 Mbps, 2 ms.
    pub fn camera_lan() -> Self {
        Self::new("camera->edge", 100.0e6, 0.002)
    }

    /// Time to push `bytes` through the link.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        (bytes as f64 * 8.0) / self.bandwidth_bps + self.latency_secs
    }
}

/// The paper's 3-tier topology: camera, edge desktop, cloud server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreeTier {
    /// The camera node (negligible compute; encodes in hardware).
    pub camera: Node,
    /// The edge server.
    pub edge: Node,
    /// The cloud server.
    pub cloud: Node,
    /// Camera-to-edge link.
    pub camera_edge: Link,
    /// Edge-to-cloud link.
    pub edge_cloud: Link,
}

impl ThreeTier {
    /// The paper's testbed shape: the edge is the reference machine (speed
    /// 1.0), the cloud's Xeon is modelled ~2x faster for NN work, and the
    /// WAN is shaped to 30 Mbps.
    pub fn paper_default() -> Self {
        Self {
            camera: Node::new("camera", 0.25),
            edge: Node::new("edge", 1.0),
            cloud: Node::new("cloud", 2.0),
            camera_edge: Link::camera_lan(),
            edge_cloud: Link::paper_wan(),
        }
    }
}

impl Default for ThreeTier {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scales_service_time() {
        let n = Node::new("cloud", 2.0);
        assert!((n.service_secs(1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "speed factor")]
    fn node_rejects_zero_speed() {
        let _ = Node::new("x", 0.0);
    }

    #[test]
    fn link_transfer_time() {
        let l = Link::new("test", 8e6, 0.01); // 1 MB/s
        let t = l.transfer_secs(1_000_000);
        assert!((t - 1.01).abs() < 1e-9);
    }

    #[test]
    fn paper_wan_is_30mbps() {
        let l = Link::paper_wan();
        // 30 Mbit/s -> 3.75 MB/s; 3.75 MB should take ~1s + latency.
        let t = l.transfer_secs(3_750_000);
        assert!((t - 1.02).abs() < 1e-9);
    }

    #[test]
    fn three_tier_default_shape() {
        let t = ThreeTier::paper_default();
        assert!(t.cloud.speed_factor > t.edge.speed_factor);
        assert!(t.camera_edge.bandwidth_bps > t.edge_cloud.bandwidth_bps);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn link_rejects_negative_latency() {
        let _ = Link::new("x", 1.0, -0.1);
    }
}
