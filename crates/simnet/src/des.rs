//! A small general-purpose discrete-event simulator.
//!
//! Events are closures scheduled at simulated times; ties break in schedule
//! order (FIFO), which keeps runs deterministic. The tandem-queue pipeline
//! model in [`crate::pipeline`] covers the end-to-end experiments; this
//! engine exists for everything that does not fit a linear pipeline (e.g.
//! periodic reporting, multi-source arrival processes in tests and
//! extensions).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

type EventFn = Box<dyn FnOnce(&mut Simulator)>;

struct Scheduled {
    time: SimTime,
    seq: u64,
    run: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Closure-driven discrete-event simulator.
///
/// ```
/// use sieve_simnet::des::Simulator;
/// use sieve_simnet::time::SimTime;
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// let mut sim = Simulator::new();
/// let log = Rc::new(RefCell::new(Vec::new()));
/// let l2 = log.clone();
/// sim.schedule(SimTime::from_secs_f64(1.0), move |sim| {
///     l2.borrow_mut().push(sim.now());
/// });
/// sim.run();
/// assert_eq!(log.borrow().len(), 1);
/// ```
#[derive(Default)]
pub struct Simulator {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled>>,
    executed: u64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl Simulator {
    /// A simulator at time zero with no events.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule<F: FnOnce(&mut Simulator) + 'static>(&mut self, at: SimTime, event: F) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse(Scheduled {
            time: at,
            seq: self.seq,
            run: Box::new(event),
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a relative delay in seconds.
    pub fn schedule_in<F: FnOnce(&mut Simulator) + 'static>(&mut self, secs: f64, event: F) {
        self.schedule(self.now.after_secs(secs), event);
    }

    /// Runs until the event queue drains; returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.now = ev.time;
            self.executed += 1;
            (ev.run)(self);
        }
        self.now
    }

    /// Runs until `deadline` (events after it stay queued).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(head_time) = self.queue.peek().map(|Reverse(s)| s.time) {
            if head_time > deadline {
                break;
            }
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.now = ev.time;
            self.executed += 1;
            (ev.run)(self);
        }
        self.now = self.now.max(deadline);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &[3u64, 1, 2] {
            let l = log.clone();
            sim.schedule(SimTime::from_nanos(t), move |_| l.borrow_mut().push(t));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for i in 0..5u32 {
            let l = log.clone();
            sim.schedule(SimTime::from_nanos(7), move |_| l.borrow_mut().push(i));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<f64>>> = Rc::default();
        let l = log.clone();
        sim.schedule_in(1.0, move |sim| {
            l.borrow_mut().push(sim.now().as_secs_f64());
            let l2 = l.clone();
            sim.schedule_in(2.0, move |sim| {
                l2.borrow_mut().push(sim.now().as_secs_f64());
            });
        });
        let end = sim.run();
        assert_eq!(log.borrow().len(), 2);
        assert!((end.as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(sim.executed(), 2);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulator::new();
        let log: Rc<RefCell<Vec<u64>>> = Rc::default();
        for &t in &[1u64, 5, 9] {
            let l = log.clone();
            sim.schedule(SimTime::from_secs_f64(t as f64), move |_| {
                l.borrow_mut().push(t)
            });
        }
        sim.run_until(SimTime::from_secs_f64(6.0));
        assert_eq!(*log.borrow(), vec![1, 5]);
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulator::new();
        sim.schedule_in(5.0, |_| {});
        sim.run();
        sim.schedule(SimTime::from_secs_f64(1.0), |_| {});
    }
}
