//! A live threaded dataflow runtime.
//!
//! The discrete-event pipeline in [`crate::pipeline`] answers "what would
//! this deployment do at scale"; this module actually *runs* a pipeline:
//! one OS thread per stage, bounded crossbeam channels between them (NiFi's
//! back-pressured queues), and an optional bandwidth throttle per stage to
//! emulate a shaped link. Used by the examples and integration tests to
//! demonstrate a real end-to-end flow.
//!
//! Stage handlers return a [`StageResult`], distinguishing *policy* drops
//! (filtering — counted in [`LiveReport::dropped`]) from *processing
//! failures* (decode errors, malformed payloads — counted in
//! [`LiveReport::failed`]), so a deployment report can tell "the edge
//! filtered 97% of frames" apart from "the edge choked on 3 frames".
//! Counting is lock-free (`sieve-stats` counters, one relaxed atomic per
//! event), and [`run_live_in`] mirrors every stage's activity into a
//! shared [`sieve_stats::Registry`] (`live.*` instruments) so a collector
//! or dashboard can watch a run in flight.

// lint:allow-file(no-wall-clock): the live runtime reports real elapsed time by design

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use sieve_stats::{Counter, Registry};

use crate::sync::thread;

/// An item flowing through the live pipeline.
#[derive(Debug, Clone)]
pub struct LiveItem {
    /// Sequence number.
    pub id: u64,
    /// Payload (opaque to the runtime; its length drives throttling).
    pub payload: Vec<u8>,
    /// Free-form tag (e.g. frame index) carried along.
    pub tag: u64,
}

/// Outcome of one stage handler invocation.
#[derive(Debug)]
pub enum StageResult {
    /// Pass the item downstream.
    Emit(LiveItem),
    /// Drop the item by policy (filtering); counted in
    /// [`LiveReport::dropped`].
    Drop,
    /// The stage failed to process the item (decode error, malformed
    /// payload); counted in [`LiveReport::failed`].
    Fail,
}

/// A stage: a handler plus an optional bandwidth throttle applied to the
/// *output* payload.
pub struct LiveStage {
    /// Stage name for the report.
    pub name: String,
    /// Transformation; see [`StageResult`] for drop/failure semantics.
    pub handler: Box<dyn FnMut(LiveItem) -> StageResult + Send>,
    /// If set, emitting an item of `n` bytes takes at least `n*8/bps`
    /// seconds, emulating a link of that bandwidth.
    pub throttle_bps: Option<f64>,
}

impl std::fmt::Debug for LiveStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveStage")
            .field("name", &self.name)
            .field("throttle_bps", &self.throttle_bps)
            .finish()
    }
}

impl LiveStage {
    /// A plain compute stage.
    pub fn compute(
        name: impl Into<String>,
        handler: impl FnMut(LiveItem) -> StageResult + Send + 'static,
    ) -> Self {
        Self {
            name: name.into(),
            handler: Box::new(handler),
            throttle_bps: None,
        }
    }

    /// A link stage: passes items through at `bandwidth_bps`.
    pub fn link(name: impl Into<String>, bandwidth_bps: f64) -> Self {
        Self {
            name: name.into(),
            handler: Box::new(StageResult::Emit),
            throttle_bps: Some(bandwidth_bps),
        }
    }
}

/// Outcome of a live pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveReport {
    /// Items that reached the sink.
    pub delivered: u64,
    /// Items dropped by stage handlers as a policy decision (filtering).
    pub dropped: u64,
    /// Items a stage failed to process (decode errors, malformed payloads).
    pub failed: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Per-stage output counts.
    pub stage_outputs: Vec<u64>,
    /// Bytes that left the final stage.
    pub delivered_bytes: u64,
}

impl LiveReport {
    /// Delivered items per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.delivered as f64 / secs
        }
    }
}

/// The counters one stage thread updates: per-run locals backing the
/// [`LiveReport`] (exact per-stage semantics even when stage names
/// repeat), plus the cumulative `live.*` registry instruments a dashboard
/// samples (absent when the run has no registry attached).
struct StageTaps {
    /// This stage's emitted-item count (report-local, lock-free).
    out: Arc<Counter>,
    /// Run-local policy-drop total.
    dropped: Arc<Counter>,
    /// Run-local processing-failure total.
    failed: Arc<Counter>,
    /// Cumulative registry mirrors: `live.<name>.out`, `live.dropped`,
    /// `live.failed`.
    emit: Option<(Arc<Counter>, Arc<Counter>, Arc<Counter>)>,
}

/// Runs `items` through `stages` with bounded channels of `capacity`.
/// Blocks until every item has drained; returns the report.
///
/// # Panics
///
/// Panics if `stages` is empty, `capacity` is zero, or a stage thread
/// panics.
pub fn run_live(stages: Vec<LiveStage>, items: Vec<LiveItem>, capacity: usize) -> LiveReport {
    run_live_inner(None, stages, items, capacity)
}

/// [`run_live`], additionally mirroring stage activity into `registry`
/// under the `"live"` stage: `live.<stage-name>.out` per stage, plus
/// `live.dropped`, `live.failed`, `live.delivered` and
/// `live.delivered_bytes`. Registry counters are *cumulative* across runs
/// sharing the registry (stages with the same name share one instrument);
/// the returned [`LiveReport`] stays exact per run and per stage.
///
/// # Panics
///
/// Same contract as [`run_live`], plus the registry panics if a `live.*`
/// name is already registered as a non-counter instrument.
pub fn run_live_in(
    registry: &Arc<Registry>,
    stages: Vec<LiveStage>,
    items: Vec<LiveItem>,
    capacity: usize,
) -> LiveReport {
    run_live_inner(Some(registry), stages, items, capacity)
}

fn run_live_inner(
    registry: Option<&Arc<Registry>>,
    stages: Vec<LiveStage>,
    items: Vec<LiveItem>,
    capacity: usize,
) -> LiveReport {
    assert!(!stages.is_empty(), "live pipeline needs stages");
    assert!(capacity > 0, "channel capacity must be positive");
    let n = stages.len();
    let live = registry.map(|r| r.stage("live"));
    let counters: Vec<Arc<Counter>> = (0..n).map(|_| Arc::new(Counter::new())).collect();
    let dropped = Arc::new(Counter::new());
    let failed = Arc::new(Counter::new());

    let (first_tx, mut prev_rx) = bounded::<LiveItem>(capacity);
    let mut handles = Vec::new();
    for (i, stage) in stages.into_iter().enumerate() {
        let (tx, rx) = bounded::<LiveItem>(capacity);
        let taps = StageTaps {
            out: counters[i].clone(),
            dropped: dropped.clone(),
            failed: failed.clone(),
            emit: live.as_ref().map(|s| {
                (
                    s.counter(&format!("{}.out", stage.name)),
                    s.counter("dropped"),
                    s.counter("failed"),
                )
            }),
        };
        handles.push(thread::spawn(move || {
            stage_loop(stage, prev_rx, tx, taps);
        }));
        prev_rx = rx;
    }
    let sink_rx: Receiver<LiveItem> = prev_rx;
    let emit_delivered = live
        .as_ref()
        .map(|s| (s.counter("delivered"), s.counter("delivered_bytes")));

    let t0 = Instant::now();
    let feeder = thread::spawn(move || {
        for item in items {
            // lint:allow(no-unwrap): the first stage outlives the feeder, so a hangup is a runtime bug worth a loud stop
            first_tx.send(item).expect("pipeline hung up");
        }
        // Dropping first_tx closes the chain.
    });
    let mut delivered = 0u64;
    let mut delivered_bytes = 0u64;
    for item in sink_rx.iter() {
        delivered += 1;
        delivered_bytes += item.payload.len() as u64;
        if let Some((count, bytes)) = &emit_delivered {
            count.inc();
            bytes.add(item.payload.len() as u64);
        }
    }
    let wall = t0.elapsed();
    // lint:allow(no-unwrap): re-raising feeder panics is run_live's documented panic contract
    feeder.join().expect("feeder panicked");
    for h in handles {
        // lint:allow(no-unwrap): re-raising stage panics is run_live's documented panic contract
        h.join().expect("stage panicked");
    }
    LiveReport {
        delivered,
        dropped: dropped.get(),
        failed: failed.get(),
        wall,
        stage_outputs: counters.iter().map(|c| c.get()).collect(),
        delivered_bytes,
    }
}

fn stage_loop(mut stage: LiveStage, rx: Receiver<LiveItem>, tx: Sender<LiveItem>, taps: StageTaps) {
    for item in rx.iter() {
        match (stage.handler)(item) {
            StageResult::Emit(out) => {
                if let Some(bps) = stage.throttle_bps {
                    let secs = out.payload.len() as f64 * 8.0 / bps;
                    std::thread::sleep(Duration::from_secs_f64(secs));
                }
                taps.out.inc();
                if let Some((out_emit, _, _)) = &taps.emit {
                    out_emit.inc();
                }
                if tx.send(out).is_err() {
                    return; // downstream hung up
                }
            }
            StageResult::Drop => {
                taps.dropped.inc();
                if let Some((_, dropped_emit, _)) = &taps.emit {
                    dropped_emit.inc();
                }
            }
            StageResult::Fail => {
                taps.failed.inc();
                if let Some((_, _, failed_emit)) = &taps.emit {
                    failed_emit.inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u64, bytes: usize) -> Vec<LiveItem> {
        (0..n)
            .map(|id| LiveItem {
                id,
                payload: vec![0u8; bytes],
                tag: id,
            })
            .collect()
    }

    #[test]
    fn all_items_flow_through_identity_stage() {
        let stages = vec![LiveStage::compute("id", StageResult::Emit)];
        let report = run_live(stages, items(50, 10), 8);
        assert_eq!(report.delivered, 50);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.failed, 0);
        assert_eq!(report.stage_outputs, vec![50]);
        assert_eq!(report.delivered_bytes, 500);
    }

    #[test]
    fn filtering_stage_drops_items() {
        let stages = vec![LiveStage::compute("even-only", |it: LiveItem| {
            if it.id.is_multiple_of(2) {
                StageResult::Emit(it)
            } else {
                StageResult::Drop
            }
        })];
        let report = run_live(stages, items(10, 1), 4);
        assert_eq!(report.delivered, 5);
        assert_eq!(report.dropped, 5);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn failing_stage_counts_typed_failures() {
        // Every third item "fails to decode"; the rest flow through.
        let stages = vec![LiveStage::compute("flaky", |it: LiveItem| {
            if it.id.is_multiple_of(3) {
                StageResult::Fail
            } else {
                StageResult::Emit(it)
            }
        })];
        let report = run_live(stages, items(9, 1), 4);
        assert_eq!(report.failed, 3);
        assert_eq!(report.delivered, 6);
        assert_eq!(report.dropped, 0, "failures are not policy drops");
    }

    #[test]
    fn stages_compose_in_order() {
        let stages = vec![
            LiveStage::compute("tag+1", |mut it: LiveItem| {
                it.tag += 1;
                StageResult::Emit(it)
            }),
            LiveStage::compute("tag*2", |mut it: LiveItem| {
                it.tag *= 2;
                StageResult::Emit(it)
            }),
        ];
        let report = run_live(stages, items(3, 1), 2);
        assert_eq!(report.delivered, 3);
        // (tag+1)*2 for tag=0,1,2 -> 2,4,6 -- order checked via count only;
        // per-item verification is covered by the integration tests.
        assert_eq!(report.stage_outputs, vec![3, 3]);
    }

    #[test]
    fn throttle_bounds_throughput() {
        // 10 items of 10_000 bytes through a 800_000 bps link ->
        // 0.1 s each -> at least 1 second total.
        let stages = vec![LiveStage::link(crate::topology::WAN_STAGE, 800_000.0)];
        let report = run_live(stages, items(10, 10_000), 2);
        assert!(
            report.wall >= Duration::from_millis(900),
            "throttle too weak: {:?}",
            report.wall
        );
    }

    #[test]
    #[should_panic(expected = "needs stages")]
    fn empty_pipeline_rejected() {
        let _ = run_live(vec![], vec![], 1);
    }

    #[test]
    fn registry_mirrors_stage_activity() {
        let registry = Arc::new(Registry::new());
        let stages = vec![LiveStage::compute("edge", |it: LiveItem| {
            if it.id.is_multiple_of(2) {
                StageResult::Emit(it)
            } else {
                StageResult::Drop
            }
        })];
        let report = run_live_in(&registry, stages, items(10, 4), 4);
        assert_eq!(report.delivered, 5);
        let sample = registry.sample();
        assert_eq!(sample.counters.get("live.edge.out"), Some(&5));
        assert_eq!(sample.counters.get("live.dropped"), Some(&5));
        assert_eq!(sample.counters.get("live.delivered"), Some(&5));
        assert_eq!(sample.counters.get("live.delivered_bytes"), Some(&20));
    }
}
