//! Tandem-queue pipeline simulation.
//!
//! The end-to-end SiEVE deployment is a linear pipeline: camera encode →
//! camera→edge transfer → edge processing → edge→cloud transfer → cloud
//! processing. Each stage is a FIFO single server (exactly how the paper's
//! NiFi operators behave with one concurrent task), so the whole system is a
//! tandem queue and can be simulated exactly by tracking each stage's
//! next-free time — no event heap needed, which keeps multi-million-frame
//! simulations cheap and deterministic.

use serde::{Deserialize, Serialize};

/// What a stage does to one item.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepWork {
    /// Occupy the stage for `secs` of compute.
    Compute {
        /// Service seconds (already adjusted for node speed).
        secs: f64,
    },
    /// Push `bytes` through the stage's link.
    Transfer {
        /// Payload size in bytes.
        bytes: u64,
    },
    /// The item does not use this stage (e.g. a filtered-out frame).
    Skip,
}

/// Description of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StageSpec {
    /// A compute stage; service times come with each item.
    Compute {
        /// Stage name for reports.
        name: String,
    },
    /// A network transfer stage.
    Transfer {
        /// Stage name for reports.
        name: String,
        /// Bandwidth in bits per second.
        bandwidth_bps: f64,
        /// Per-transfer latency in seconds.
        latency_secs: f64,
    },
}

impl StageSpec {
    /// The stage's display name.
    pub fn name(&self) -> &str {
        match self {
            StageSpec::Compute { name } => name,
            StageSpec::Transfer { name, .. } => name,
        }
    }
}

/// One item's passage through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItemResult {
    /// Arrival time at the pipeline entrance (seconds).
    pub arrival: f64,
    /// Completion time at the last stage (seconds).
    pub completion: f64,
}

/// Aggregate outcome of a pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Per-stage busy seconds.
    pub stage_busy_secs: Vec<f64>,
    /// Per-stage item counts (items that did not `Skip` the stage).
    pub stage_items: Vec<u64>,
    /// Per-stage transferred bytes (compute stages report 0).
    pub stage_bytes: Vec<u64>,
    /// Time the last item completed.
    pub makespan_secs: f64,
    /// Number of items pushed through.
    pub items: u64,
}

impl PipelineReport {
    /// Items per second of simulated wall-clock (the paper's Fig 4 metric:
    /// total frames / total time).
    pub fn throughput(&self, total_items: u64) -> f64 {
        if self.makespan_secs <= 0.0 {
            0.0
        } else {
            total_items as f64 / self.makespan_secs
        }
    }
}

/// A linear pipeline of FIFO single-server stages.
#[derive(Debug, Clone)]
pub struct Pipeline {
    stages: Vec<StageSpec>,
    free_at: Vec<f64>,
    report: PipelineReport,
}

impl Pipeline {
    /// Builds a pipeline from stage specs.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty.
    pub fn new(stages: Vec<StageSpec>) -> Self {
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        let n = stages.len();
        Self {
            stages,
            free_at: vec![0.0; n],
            report: PipelineReport {
                stage_busy_secs: vec![0.0; n],
                stage_items: vec![0; n],
                stage_bytes: vec![0; n],
                makespan_secs: 0.0,
                items: 0,
            },
        }
    }

    /// The stage specs.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// Pushes one item through the pipeline.
    ///
    /// `work[i]` describes the item's demand on stage `i`. The item visits
    /// stages in order; `Skip` stages are passed through instantly.
    ///
    /// # Panics
    ///
    /// Panics if `work.len()` differs from the stage count.
    pub fn submit(&mut self, arrival: f64, work: &[StepWork]) -> ItemResult {
        assert_eq!(work.len(), self.stages.len(), "work/stage length mismatch");
        let mut t = arrival;
        for (i, w) in work.iter().enumerate() {
            let service = match (w, &self.stages[i]) {
                (StepWork::Skip, _) => continue,
                (StepWork::Compute { secs }, StageSpec::Compute { .. }) => *secs,
                (
                    StepWork::Transfer { bytes },
                    StageSpec::Transfer {
                        bandwidth_bps,
                        latency_secs,
                        ..
                    },
                ) => {
                    self.report.stage_bytes[i] += bytes;
                    (*bytes as f64 * 8.0) / bandwidth_bps + latency_secs
                }
                (w, s) => panic!("work kind {:?} does not match stage '{}'", w, s.name()),
            };
            let start = t.max(self.free_at[i]);
            let finish = start + service;
            self.free_at[i] = finish;
            self.report.stage_busy_secs[i] += service;
            self.report.stage_items[i] += 1;
            t = finish;
        }
        self.report.items += 1;
        self.report.makespan_secs = self.report.makespan_secs.max(t);
        ItemResult {
            arrival,
            completion: t,
        }
    }

    /// The aggregate report so far.
    pub fn report(&self) -> &PipelineReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> Pipeline {
        Pipeline::new(vec![
            StageSpec::Compute {
                name: "decode".into(),
            },
            StageSpec::Transfer {
                name: crate::topology::WAN_STAGE.into(),
                bandwidth_bps: 8e6, // 1 MB/s
                latency_secs: 0.0,
            },
        ])
    }

    #[test]
    fn single_item_latency_is_sum_of_services() {
        let mut p = two_stage();
        let r = p.submit(
            0.0,
            &[
                StepWork::Compute { secs: 0.5 },
                StepWork::Transfer { bytes: 1_000_000 },
            ],
        );
        assert!((r.completion - 1.5).abs() < 1e-9);
    }

    #[test]
    fn fifo_queueing_at_bottleneck() {
        let mut p = two_stage();
        // Two items arrive together; stage 0 takes 1s each, so the second
        // finishes stage 0 at t=2.
        let work = [
            StepWork::Compute { secs: 1.0 },
            StepWork::Transfer { bytes: 0 },
        ];
        let r1 = p.submit(0.0, &work);
        let r2 = p.submit(0.0, &work);
        assert!((r1.completion - 1.0).abs() < 1e-9);
        assert!((r2.completion - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pipelining_overlaps_stages() {
        let mut p = two_stage();
        // Stage 0: 1s, stage 1: 1s. Two items: total 3s (pipelined), not 4.
        let work = [
            StepWork::Compute { secs: 1.0 },
            StepWork::Transfer { bytes: 1_000_000 },
        ];
        p.submit(0.0, &work);
        let r2 = p.submit(0.0, &work);
        assert!((r2.completion - 3.0).abs() < 1e-9);
    }

    #[test]
    fn skip_stages_cost_nothing() {
        let mut p = two_stage();
        let r = p.submit(2.0, &[StepWork::Skip, StepWork::Skip]);
        assert_eq!(r.completion, 2.0);
        assert_eq!(p.report().stage_items, vec![0, 0]);
        assert_eq!(p.report().items, 1);
    }

    #[test]
    fn report_accumulates_bytes_and_busy_time() {
        let mut p = two_stage();
        for i in 0..4 {
            p.submit(
                i as f64,
                &[
                    StepWork::Compute { secs: 0.1 },
                    StepWork::Transfer { bytes: 500_000 },
                ],
            );
        }
        let rep = p.report();
        assert_eq!(rep.stage_bytes[1], 2_000_000);
        assert!((rep.stage_busy_secs[0] - 0.4).abs() < 1e-9);
        assert_eq!(rep.items, 4);
        assert!(rep.throughput(4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match stage")]
    fn mismatched_work_kind_panics() {
        let mut p = two_stage();
        p.submit(0.0, &[StepWork::Transfer { bytes: 1 }, StepWork::Skip]);
    }

    #[test]
    fn throughput_matches_bottleneck_rate() {
        let mut p = two_stage();
        // 100 items, bottleneck = stage 0 at 10ms -> ~100 items/s.
        for _ in 0..100 {
            p.submit(
                0.0,
                &[
                    StepWork::Compute { secs: 0.01 },
                    StepWork::Transfer { bytes: 1000 },
                ],
            );
        }
        let tput = p.report().throughput(100);
        assert!((tput - 100.0).abs() / 100.0 < 0.1, "throughput {tput}");
    }
}
