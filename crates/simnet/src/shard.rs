//! A bounded multi-lane queue: the mailbox of one scheduler shard.
//!
//! [`crate::live`] wires stages with one back-pressured channel per hop —
//! the right shape for a single stream. A multi-stream runtime needs a
//! different primitive: one worker draining *many* streams fairly, where a
//! noisy stream can neither starve its neighbours (per-lane bounded
//! queues) nor block the producer (non-blocking [`ShardQueue::try_push`]
//! with an explicit [`PushOutcome::Shed`] the caller accounts for —
//! load-shedding is a first-class outcome, distinct from a policy drop).
//!
//! [`ShardQueue`] is that primitive: lanes keyed by `u64`, opened and
//! closed at runtime, a round-robin blocking [`ShardQueue::pop`] for the
//! worker, and a lane-drained notification ([`Popped::LaneFinished`]) so
//! per-stream end-of-stream work (session flush, final accounting) runs on
//! the worker thread in order. `sieve-fleet` builds its sharded scheduler
//! out of one `ShardQueue` per worker.

use std::collections::VecDeque;

use crate::sync::{Condvar, Mutex};

/// Outcome of a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued.
    Queued,
    /// The lane is at capacity; the item was *not* enqueued. The caller
    /// decides what shedding means (count it, retry later, drop).
    Shed,
    /// No such lane (never opened, or already finished).
    NoSuchLane,
    /// The lane was closed; no further items are accepted.
    LaneClosed,
}

/// What a worker gets from one blocking [`ShardQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The next item of lane `key`, round-robin across non-empty lanes.
    Item(u64, T),
    /// Lane `key` was closed and has fully drained; it no longer exists.
    /// Delivered exactly once per closed lane.
    LaneFinished(u64),
}

#[derive(Debug)]
struct Lane<T> {
    queue: VecDeque<T>,
    closed: bool,
}

#[derive(Debug)]
struct State<T> {
    lanes: Vec<(u64, Lane<T>)>,
    /// Round-robin cursor into `lanes`.
    cursor: usize,
    shutdown: bool,
}

impl<T> State<T> {
    fn lane_mut(&mut self, key: u64) -> Option<&mut Lane<T>> {
        self.lanes
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| l)
    }
}

/// A bounded multi-lane queue with round-robin draining; see the module
/// docs. All methods are thread-safe; any number of producers may push
/// concurrently. Pop from **one worker per queue** when end-of-lane
/// ordering matters (as `sieve-fleet` does): with multiple concurrent
/// poppers every item is still delivered exactly once, but
/// [`Popped::LaneFinished`] for a closed lane may be delivered to one
/// popper while another is still processing that lane's final item.
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    lane_capacity: usize,
}

impl<T> ShardQueue<T> {
    /// A queue whose lanes each hold at most `lane_capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `lane_capacity` is zero.
    pub fn new(lane_capacity: usize) -> Self {
        assert!(lane_capacity > 0, "lane capacity must be positive");
        Self {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            lane_capacity,
        }
    }

    /// Opens lane `key`. Returns `false` if the lane already exists or the
    /// queue is shut down.
    pub fn open_lane(&self, key: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown || s.lanes.iter().any(|(k, _)| *k == key) {
            return false;
        }
        s.lanes.push((
            key,
            Lane {
                queue: VecDeque::new(),
                closed: false,
            },
        ));
        true
    }

    /// Closes lane `key`: no further pushes are accepted; once the lane
    /// drains, the worker receives [`Popped::LaneFinished`] and the lane is
    /// gone. Returns `false` for an unknown lane.
    pub fn close_lane(&self, key: u64) -> bool {
        let mut s = self.state.lock();
        let Some(lane) = s.lane_mut(key) else {
            return false;
        };
        lane.closed = true;
        // An already-empty lane becomes poppable (as LaneFinished) now.
        self.available.notify_all();
        true
    }

    /// Pushes without blocking; see [`PushOutcome`] for the cases.
    pub fn try_push(&self, key: u64, item: T) -> PushOutcome {
        let mut s = self.state.lock();
        let capacity = self.lane_capacity;
        let Some(lane) = s.lane_mut(key) else {
            return PushOutcome::NoSuchLane;
        };
        if lane.closed {
            return PushOutcome::LaneClosed;
        }
        if lane.queue.len() >= capacity {
            return PushOutcome::Shed;
        }
        lane.queue.push_back(item);
        self.available.notify_one();
        PushOutcome::Queued
    }

    /// Blocks for the next item (round-robin across non-empty lanes) or
    /// lane-finished notification. Returns `None` once the queue is shut
    /// down *and* every lane has drained and finished — the worker's signal
    /// to exit.
    pub fn pop(&self) -> Option<Popped<T>> {
        let mut s = self.state.lock();
        loop {
            // Scan one full rotation starting at the cursor.
            let n = s.lanes.len();
            for step in 0..n {
                let i = (s.cursor + step) % n;
                let (key, lane) = &mut s.lanes[i];
                let key = *key;
                if let Some(item) = lane.queue.pop_front() {
                    s.cursor = (i + 1) % n;
                    return Some(Popped::Item(key, item));
                }
                if lane.closed {
                    // SEEDED BUG (crates/check-tests mutation suite): drop
                    // the lock between observing the drained closed lane
                    // and removing it. Two concurrent poppers can then both
                    // observe the lane and both deliver LaneFinished(key) —
                    // the race the model checker must catch.
                    #[cfg(sieve_check_seeded_bug)]
                    {
                        drop(s);
                        s = self.state.lock();
                        s.lanes.retain(|(k, _)| *k != key);
                        let n = s.lanes.len();
                        s.cursor = if n == 0 { 0 } else { s.cursor % n };
                        return Some(Popped::LaneFinished(key));
                    }
                    #[cfg(not(sieve_check_seeded_bug))]
                    {
                        s.lanes.remove(i);
                        if !s.lanes.is_empty() {
                            s.cursor = i % s.lanes.len();
                        } else {
                            s.cursor = 0;
                        }
                        return Some(Popped::LaneFinished(key));
                    }
                }
            }
            // Past the scan there are no items and no closed lanes left;
            // since shutdown closes every lane (and refuses new ones), a
            // shut-down queue reaching here has none at all.
            if s.shutdown && s.lanes.is_empty() {
                return None;
            }
            s = self.available.wait(s);
        }
    }

    /// Stops accepting new lanes and (after draining) ends [`ShardQueue::pop`]:
    /// queued items are still delivered, then every remaining lane reports
    /// [`Popped::LaneFinished`], then `pop` returns `None`.
    pub fn shutdown(&self) {
        let mut s = self.state.lock();
        s.shutdown = true;
        for (_, lane) in &mut s.lanes {
            lane.closed = true;
        }
        self.available.notify_all();
    }

    /// Queued items currently in lane `key` (`None` for unknown lanes).
    pub fn depth(&self, key: u64) -> Option<usize> {
        let mut s = self.state.lock();
        s.lane_mut(key).map(|l| l.queue.len())
    }

    /// Queued items across all lanes.
    pub fn total_depth(&self) -> usize {
        let s = self.state.lock();
        s.lanes.iter().map(|(_, l)| l.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_single_lane() {
        let q = ShardQueue::new(4);
        assert!(q.open_lane(7));
        assert_eq!(q.try_push(7, "a"), PushOutcome::Queued);
        assert_eq!(q.try_push(7, "b"), PushOutcome::Queued);
        assert_eq!(q.pop(), Some(Popped::Item(7, "a")));
        assert_eq!(q.pop(), Some(Popped::Item(7, "b")));
        q.close_lane(7);
        assert_eq!(q.pop(), Some(Popped::LaneFinished(7)));
        q.shutdown();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_lane_sheds_without_blocking() {
        let q = ShardQueue::new(2);
        q.open_lane(1);
        assert_eq!(q.try_push(1, 0), PushOutcome::Queued);
        assert_eq!(q.try_push(1, 1), PushOutcome::Queued);
        assert_eq!(q.try_push(1, 2), PushOutcome::Shed);
        assert_eq!(q.depth(1), Some(2));
    }

    #[test]
    fn unknown_and_closed_lanes_are_typed() {
        let q = ShardQueue::new(2);
        assert_eq!(q.try_push(9, 0), PushOutcome::NoSuchLane);
        q.open_lane(9);
        q.close_lane(9);
        assert_eq!(q.try_push(9, 0), PushOutcome::LaneClosed);
        assert!(!q.open_lane(9), "lane keys are unique while live");
    }

    #[test]
    fn round_robin_interleaves_lanes() {
        let q = ShardQueue::new(8);
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..3 {
            q.try_push(1, (1, i));
            q.try_push(2, (2, i));
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            match q.pop() {
                Some(Popped::Item(k, _)) => order.push(k),
                other => panic!("unexpected pop: {other:?}"),
            }
        }
        // Strict alternation: no lane is served twice in a row while the
        // other has items.
        for w in order.windows(2) {
            assert_ne!(w[0], w[1], "round-robin violated: {order:?}");
        }
    }

    #[test]
    fn lane_finished_delivered_exactly_once_per_lane() {
        let q = ShardQueue::new(2);
        q.open_lane(1);
        q.open_lane(2);
        q.try_push(2, "x");
        q.close_lane(1);
        q.close_lane(2);
        let mut finished = Vec::new();
        let mut items = 0;
        loop {
            // Both lanes closed; after draining, pops would block forever —
            // shut down once we've seen everything.
            match q.pop() {
                Some(Popped::Item(_, _)) => items += 1,
                Some(Popped::LaneFinished(k)) => {
                    finished.push(k);
                    if finished.len() == 2 {
                        break;
                    }
                }
                None => break,
            }
        }
        assert_eq!(items, 1);
        finished.sort_unstable();
        assert_eq!(finished, vec![1, 2]);
    }

    #[test]
    fn producer_and_worker_threads_drain_everything() {
        let q = Arc::new(ShardQueue::new(4));
        for lane in 0..4u64 {
            q.open_lane(lane);
        }
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut shed = 0u64;
                for i in 0..400u64 {
                    let lane = i % 4;
                    loop {
                        match q.try_push(lane, i) {
                            PushOutcome::Queued => break,
                            PushOutcome::Shed => {
                                shed += 1;
                                std::thread::yield_now();
                            }
                            other => panic!("unexpected: {other:?}"),
                        }
                    }
                }
                for lane in 0..4u64 {
                    q.close_lane(lane);
                }
                shed
            })
        };
        let mut got = 0u64;
        let mut finished = 0;
        while finished < 4 {
            match q.pop() {
                Some(Popped::Item(_, _)) => got += 1,
                Some(Popped::LaneFinished(_)) => finished += 1,
                None => break,
            }
        }
        let _ = producer.join().expect("producer ok");
        assert_eq!(got, 400, "every queued item reaches the worker");
    }
}
