//! A bounded multi-lane queue: the mailbox of one scheduler shard.
//!
//! [`crate::live`] wires stages with one back-pressured channel per hop —
//! the right shape for a single stream. A multi-stream runtime needs a
//! different primitive: one worker draining *many* streams fairly, where a
//! noisy stream can neither starve its neighbours (per-lane bounded
//! queues) nor block the producer (non-blocking [`ShardQueue::try_push`]
//! with an explicit [`PushOutcome::Shed`] the caller accounts for —
//! load-shedding is a first-class outcome, distinct from a policy drop).
//!
//! [`ShardQueue`] is that primitive: lanes keyed by `u64`, opened and
//! closed at runtime, weighted priority draining for the worker, and a
//! lane-drained notification ([`Popped::LaneFinished`]) so per-stream
//! end-of-stream work (session flush, final accounting) runs on the worker
//! thread in order. `sieve-fleet` builds its sharded scheduler out of one
//! `ShardQueue` per worker.
//!
//! # Priority lanes
//!
//! Every lane carries a weight in `1..=`[`MAX_LANE_WEIGHT`]
//! ([`ShardQueue::set_lane_weight`]); the drain picks the non-empty lane
//! with the greatest *effective priority* `weight + age`, where `age`
//! counts the pops that passed the lane over while it had items and resets
//! to zero on service. The aging term is the anti-starvation guarantee:
//! once a lane has been passed [`MAX_LANE_WEIGHT`] times nothing can
//! outrank it more than once more, so any non-empty lane is served within
//! `MAX_LANE_WEIGHT + lanes` pops regardless of the weight mixture (the
//! bound `sieve-fleet`'s property tests assert). With uniform weights the
//! scheme degenerates to exact round-robin.
//!
//! # Work stealing
//!
//! Two cooperating protocols let an idle worker drain a hot neighbour's
//! queue without ever reordering or double-draining a lane:
//!
//! * **Guarded pops** ([`ShardQueue::try_pop_guarded`] /
//!   [`ShardQueue::complete`]): delivering an item marks its lane *busy*
//!   until the caller completes it, so the lane's frames are processed by
//!   at most one worker at a time — covering the window between removal
//!   and the end of processing that a queue-only lock cannot see.
//! * **Owner-preferred stealing** ([`ShardQueue::try_steal`]): a thief
//!   `try_lock`s the victim's mutex (never waits — the owner always wins
//!   contention), claims the deepest non-busy lane, takes the *front half*
//!   of its items in order (steal-half batching) and marks the lane busy;
//!   the owner skips busy lanes, so the remaining (newer) items wait until
//!   the thief [`ShardQueue::complete`]s the lane. FIFO order per lane is
//!   preserved end to end: stolen items are strictly older than anything
//!   the owner can subsequently pop.
//!
//! [`Popped::LaneFinished`] is only delivered for a non-busy lane, so a
//! stream's end-of-stream flush can never race a thief still draining it.

use std::collections::VecDeque;

use crate::sync::{Condvar, Mutex};

/// Upper bound of a lane's scheduling weight (inclusive).
pub const MAX_LANE_WEIGHT: u32 = 8;

/// Outcome of a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The item was enqueued.
    Queued,
    /// The lane is at capacity; the item was *not* enqueued. The caller
    /// decides what shedding means (count it, retry later, drop).
    Shed,
    /// No such lane (never opened, or already finished).
    NoSuchLane,
    /// The lane was closed; no further items are accepted.
    LaneClosed,
}

/// What a worker gets from one blocking [`ShardQueue::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The next item of lane `key`, by weighted priority across non-empty
    /// lanes.
    Item(u64, T),
    /// Lane `key` was closed and has fully drained; it no longer exists.
    /// Delivered exactly once per closed lane.
    LaneFinished(u64),
}

/// What a worker gets from one non-blocking [`ShardQueue::try_pop_guarded`].
#[derive(Debug, PartialEq, Eq)]
pub enum GuardedPop<T> {
    /// The next item of lane `key`; the lane is now **busy** and must be
    /// released with [`ShardQueue::complete`] after processing.
    Item(u64, T),
    /// Lane `key` was closed, drained and is not busy; it no longer
    /// exists. Delivered exactly once per closed lane.
    LaneFinished(u64),
    /// Nothing poppable right now (queues empty, or every non-empty lane
    /// is busy). Try stealing, or [`ShardQueue::wait_for_work`].
    Empty,
    /// The queue is shut down and fully drained: the worker's exit signal.
    Shutdown,
}

/// Outcome of one owner-preferred [`ShardQueue::try_steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The thief now owns lane `key` (it is marked busy) and holds the
    /// front `items` of its queue, oldest first. The thief MUST process
    /// them in order and then call [`ShardQueue::complete`]`(key, ..)`.
    Batch {
        /// The claimed lane.
        key: u64,
        /// The stolen front batch, oldest first.
        items: Vec<T>,
    },
    /// No stealable lane (everything empty, busy, or the queue is down).
    Empty,
    /// The queue mutex was held — the owner always wins contention; the
    /// thief moves on to the next victim.
    Contended,
}

#[derive(Debug)]
struct Lane<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// Scheduling weight in `1..=MAX_LANE_WEIGHT`.
    weight: u32,
    /// Pops that passed this lane over while it had items; resets on
    /// service. `weight + age` is the effective priority.
    age: u32,
    /// A worker (owner or thief) is processing this lane's items; nobody
    /// else may remove from it and LaneFinished is deferred.
    busy: bool,
}

#[derive(Debug)]
struct State<T> {
    lanes: Vec<(u64, Lane<T>)>,
    /// Rotation cursor breaking priority ties deterministically.
    cursor: usize,
    /// Items queued across all lanes (mirrors the sum of lane depths).
    queued: usize,
    shutdown: bool,
}

impl<T> State<T> {
    fn lane_mut(&mut self, key: u64) -> Option<&mut Lane<T>> {
        self.lanes
            .iter_mut()
            .find(|(k, _)| *k == key)
            .map(|(_, l)| l)
    }

    /// Index of the non-empty, non-busy lane with the greatest effective
    /// priority `weight + age`; ties break toward the higher weight, then
    /// the first lane at or after the cursor.
    fn best_lane(&self) -> Option<usize> {
        let n = self.lanes.len();
        let mut best: Option<(u64, u32, usize)> = None; // (priority, weight, index)
        for step in 0..n {
            let i = (self.cursor + step) % n;
            let (_, lane) = &self.lanes[i];
            if lane.busy || lane.queue.is_empty() {
                continue;
            }
            let priority = u64::from(lane.weight) + u64::from(lane.age);
            let candidate = (priority, lane.weight, i);
            let better = match best {
                None => true,
                Some((bp, bw, _)) => priority > bp || (priority == bp && lane.weight > bw),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Serves lane `i`: removes its front item, resets its age and ages
    /// every other non-empty lane (the pass-over count of the aging term).
    fn serve(&mut self, i: usize) -> (u64, T) {
        let n = self.lanes.len();
        for (j, (_, lane)) in self.lanes.iter_mut().enumerate() {
            if j != i && !lane.queue.is_empty() {
                lane.age = lane.age.saturating_add(1);
            }
        }
        let (key, lane) = &mut self.lanes[i];
        let key = *key;
        lane.age = 0;
        // lint:allow(no-unwrap): best_lane only returns non-empty lanes
        let item = lane.queue.pop_front().expect("served lane is non-empty");
        self.queued -= 1;
        self.cursor = (i + 1) % n;
        (key, item)
    }

    /// Index of a finished lane: closed, drained, not busy.
    fn finished_lane(&self) -> Option<usize> {
        self.lanes
            .iter()
            .position(|(_, l)| l.closed && !l.busy && l.queue.is_empty())
    }

    fn remove_lane(&mut self, i: usize) -> u64 {
        let (key, _) = self.lanes.remove(i);
        let n = self.lanes.len();
        self.cursor = if n == 0 { 0 } else { self.cursor % n };
        key
    }
}

/// A bounded multi-lane queue with weighted-priority draining and an
/// owner-preferred steal protocol; see the module docs. All methods are
/// thread-safe; any number of producers may push concurrently.
///
/// Two drain disciplines are offered:
/// * the blocking [`ShardQueue::pop`], for a single dedicated worker that
///   never shares lanes (no busy marking);
/// * the guarded [`ShardQueue::try_pop_guarded`] / [`ShardQueue::complete`]
///   pair plus [`ShardQueue::try_steal`], for workers that cooperate on
///   one queue — exactly-once delivery *and* per-lane FIFO processing
///   order are guaranteed under any interleaving (model-checked in
///   `crates/check-tests`).
///
/// Do not mix the two disciplines on one queue: the unguarded `pop`
/// ignores busy markings.
#[derive(Debug)]
pub struct ShardQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    lane_capacity: usize,
}

impl<T> ShardQueue<T> {
    /// A queue whose lanes each hold at most `lane_capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `lane_capacity` is zero.
    pub fn new(lane_capacity: usize) -> Self {
        assert!(lane_capacity > 0, "lane capacity must be positive");
        Self {
            state: Mutex::new(State {
                lanes: Vec::new(),
                cursor: 0,
                queued: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            lane_capacity,
        }
    }

    /// Opens lane `key` at weight 1. Returns `false` if the lane already
    /// exists or the queue is shut down.
    pub fn open_lane(&self, key: u64) -> bool {
        let mut s = self.state.lock();
        if s.shutdown || s.lanes.iter().any(|(k, _)| *k == key) {
            return false;
        }
        s.lanes.push((
            key,
            Lane {
                queue: VecDeque::new(),
                closed: false,
                weight: 1,
                age: 0,
                busy: false,
            },
        ));
        true
    }

    /// Closes lane `key`: no further pushes are accepted; once the lane
    /// drains, the worker receives [`Popped::LaneFinished`] and the lane is
    /// gone. Returns `false` for an unknown lane.
    pub fn close_lane(&self, key: u64) -> bool {
        let mut s = self.state.lock();
        let Some(lane) = s.lane_mut(key) else {
            return false;
        };
        lane.closed = true;
        // An already-empty lane becomes poppable (as LaneFinished) now.
        self.available.notify_all();
        true
    }

    /// Sets lane `key`'s scheduling weight, clamped to
    /// `1..=`[`MAX_LANE_WEIGHT`]. Returns `false` for an unknown lane.
    pub fn set_lane_weight(&self, key: u64, weight: u32) -> bool {
        let mut s = self.state.lock();
        let Some(lane) = s.lane_mut(key) else {
            return false;
        };
        lane.weight = weight.clamp(1, MAX_LANE_WEIGHT);
        true
    }

    /// Lane `key`'s current scheduling weight (`None` for unknown lanes).
    pub fn lane_weight(&self, key: u64) -> Option<u32> {
        let mut s = self.state.lock();
        s.lane_mut(key).map(|l| l.weight)
    }

    /// Pushes without blocking; see [`PushOutcome`] for the cases.
    pub fn try_push(&self, key: u64, item: T) -> PushOutcome {
        let mut s = self.state.lock();
        let capacity = self.lane_capacity;
        let Some(lane) = s.lane_mut(key) else {
            return PushOutcome::NoSuchLane;
        };
        if lane.closed {
            return PushOutcome::LaneClosed;
        }
        if lane.queue.len() >= capacity {
            return PushOutcome::Shed;
        }
        lane.queue.push_back(item);
        s.queued += 1;
        self.available.notify_one();
        PushOutcome::Queued
    }

    /// Blocks for the next item (weighted priority across non-empty lanes)
    /// or lane-finished notification. Returns `None` once the queue is
    /// shut down *and* every lane has drained and finished — the worker's
    /// signal to exit.
    ///
    /// This is the single-worker discipline: it ignores busy markings. Use
    /// [`ShardQueue::try_pop_guarded`] when workers cooperate on one queue.
    pub fn pop(&self) -> Option<Popped<T>> {
        let mut s = self.state.lock();
        loop {
            if let Some(i) = s.best_lane() {
                let (key, item) = s.serve(i);
                return Some(Popped::Item(key, item));
            }
            if let Some(i) = s.finished_lane() {
                // SEEDED BUG (crates/check-tests/tests/seeded_bug.rs):
                // drop the lock between observing the drained lane and
                // removing it — two poppers can both deliver LaneFinished
                // for the same lane.
                #[cfg(sieve_check_seeded_bug)]
                {
                    let key = s.lanes[i].0;
                    drop(s);
                    s = self.state.lock();
                    s.lanes.retain(|(k, _)| *k != key);
                    let n = s.lanes.len();
                    s.cursor = if n == 0 { 0 } else { s.cursor % n };
                    return Some(Popped::LaneFinished(key));
                }
                #[cfg(not(sieve_check_seeded_bug))]
                {
                    return Some(Popped::LaneFinished(s.remove_lane(i)));
                }
            }
            // Past the scan there are no items and no closed lanes left;
            // since shutdown closes every lane (and refuses new ones), a
            // shut-down queue reaching here has none at all.
            if s.shutdown && s.lanes.is_empty() {
                return None;
            }
            s = self.available.wait(s);
        }
    }

    /// Non-blocking cooperative pop. Delivering an item marks its lane
    /// busy — the caller must [`ShardQueue::complete`] the lane after
    /// processing, and until then no other worker (owner or thief) can
    /// remove from it, which is what keeps per-lane processing FIFO.
    pub fn try_pop_guarded(&self) -> GuardedPop<T> {
        let mut s = self.state.lock();
        if let Some(i) = s.best_lane() {
            let (key, item) = s.serve(i);
            // lint:allow(no-unwrap): the lane just served exists
            s.lane_mut(key).expect("served lane exists").busy = true;
            return GuardedPop::Item(key, item);
        }
        if let Some(i) = s.finished_lane() {
            return GuardedPop::LaneFinished(s.remove_lane(i));
        }
        if s.shutdown && s.lanes.is_empty() {
            return GuardedPop::Shutdown;
        }
        GuardedPop::Empty
    }

    /// Releases lane `key` after processing the items taken by
    /// [`ShardQueue::try_pop_guarded`] or [`ShardQueue::try_steal`],
    /// optionally installing a new scheduling weight in the same critical
    /// section. Wakes waiting workers (the lane may now be poppable or
    /// finishable). No-op for unknown lanes (the lane finished while the
    /// caller still held items of a *different* generation cannot happen:
    /// finish is deferred while busy).
    pub fn complete(&self, key: u64, weight: Option<u32>) {
        let mut s = self.state.lock();
        if let Some(lane) = s.lane_mut(key) {
            lane.busy = false;
            if let Some(w) = weight {
                lane.weight = w.clamp(1, MAX_LANE_WEIGHT);
            }
        }
        self.available.notify_all();
    }

    /// Owner-preferred steal attempt: `try_lock` the queue (never wait),
    /// claim the deepest non-busy non-empty lane, and take the front
    /// `ceil(depth/2)` items (capped at `max_items`), oldest first. The
    /// lane is marked busy until the thief [`ShardQueue::complete`]s it;
    /// the owner skips it meanwhile, so everything it still holds is newer
    /// than the stolen batch — per-lane FIFO order survives the theft.
    pub fn try_steal(&self, max_items: usize) -> Steal<T> {
        if max_items == 0 {
            return Steal::Empty;
        }
        #[cfg(not(sieve_check_seeded_steal_bug))]
        {
            let Some(mut s) = self.state.try_lock() else {
                return Steal::Contended;
            };
            let Some(i) = s
                .lanes
                .iter()
                .enumerate()
                .filter(|(_, (_, l))| !l.busy && !l.queue.is_empty())
                .max_by_key(|(_, (_, l))| l.queue.len())
                .map(|(i, _)| i)
            else {
                return Steal::Empty;
            };
            let (key, lane) = &mut s.lanes[i];
            let key = *key;
            let take = lane.queue.len().div_ceil(2).min(max_items);
            let items: Vec<T> = lane.queue.drain(..take).collect();
            lane.busy = true;
            s.queued -= items.len();
            Steal::Batch { key, items }
        }
        // SEEDED BUG (crates/check-tests steal suite): release the lock
        // between *selecting* the victim lane and *draining* it, without
        // re-checking the busy claim. Two thieves can then both select the
        // same lane and both believe they own it — concurrent drains whose
        // processing interleaves out of FIFO order, the double-steal race
        // the model checker must catch.
        #[cfg(sieve_check_seeded_steal_bug)]
        {
            let Some(s) = self.state.try_lock() else {
                return Steal::Contended;
            };
            let Some((key, take)) = s
                .lanes
                .iter()
                .filter(|(_, l)| !l.busy && !l.queue.is_empty())
                .max_by_key(|(_, l)| l.queue.len())
                .map(|(k, l)| (*k, l.queue.len().div_ceil(2).min(max_items)))
            else {
                return Steal::Empty;
            };
            drop(s);
            let mut s = self.state.lock();
            let Some(lane) = s.lane_mut(key) else {
                return Steal::Empty;
            };
            let take = take.min(lane.queue.len());
            let items: Vec<T> = lane.queue.drain(..take).collect();
            lane.busy = true; // clobbers a concurrent thief's claim
            s.queued -= items.len();
            Steal::Batch { key, items }
        }
    }

    /// Blocks until the queue *may* have work for a cooperative worker
    /// (an item, a finishable lane, or shutdown) — or returns immediately
    /// if it already does. Spurious returns are fine: callers loop on
    /// [`ShardQueue::try_pop_guarded`].
    pub fn wait_for_work(&self) {
        let s = self.state.lock();
        let poppable = s.best_lane().is_some()
            || s.finished_lane().is_some()
            || (s.shutdown && s.lanes.is_empty());
        if !poppable {
            drop(self.available.wait(s));
        }
    }

    /// Wakes every worker blocked in [`ShardQueue::wait_for_work`] or
    /// [`ShardQueue::pop`] without changing any state — the cross-shard
    /// hint a backlogged producer uses to rouse idle thieves.
    pub fn nudge(&self) {
        self.available.notify_all();
    }

    /// Whether at least a full lane's worth of items is queued — the
    /// watermark at which producers nudge idle neighbours to come steal.
    pub fn backlogged(&self) -> bool {
        self.state.lock().queued >= self.lane_capacity
    }

    /// Stops accepting new lanes and (after draining) ends [`ShardQueue::pop`]:
    /// queued items are still delivered, then every remaining lane reports
    /// [`Popped::LaneFinished`], then `pop` returns `None`.
    pub fn shutdown(&self) {
        let mut s = self.state.lock();
        s.shutdown = true;
        for (_, lane) in &mut s.lanes {
            lane.closed = true;
        }
        self.available.notify_all();
    }

    /// Queued items currently in lane `key` (`None` for unknown lanes).
    pub fn depth(&self, key: u64) -> Option<usize> {
        let mut s = self.state.lock();
        s.lane_mut(key).map(|l| l.queue.len())
    }

    /// Queued items across all lanes.
    pub fn total_depth(&self) -> usize {
        self.state.lock().queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_single_lane() {
        let q = ShardQueue::new(4);
        assert!(q.open_lane(7));
        assert_eq!(q.try_push(7, "a"), PushOutcome::Queued);
        assert_eq!(q.try_push(7, "b"), PushOutcome::Queued);
        assert_eq!(q.pop(), Some(Popped::Item(7, "a")));
        assert_eq!(q.pop(), Some(Popped::Item(7, "b")));
        q.close_lane(7);
        assert_eq!(q.pop(), Some(Popped::LaneFinished(7)));
        q.shutdown();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_lane_sheds_without_blocking() {
        let q = ShardQueue::new(2);
        q.open_lane(1);
        assert_eq!(q.try_push(1, 0), PushOutcome::Queued);
        assert_eq!(q.try_push(1, 1), PushOutcome::Queued);
        assert_eq!(q.try_push(1, 2), PushOutcome::Shed);
        assert_eq!(q.depth(1), Some(2));
        assert!(q.backlogged(), "a full lane is past the nudge watermark");
    }

    #[test]
    fn unknown_and_closed_lanes_are_typed() {
        let q = ShardQueue::new(2);
        assert_eq!(q.try_push(9, 0), PushOutcome::NoSuchLane);
        q.open_lane(9);
        q.close_lane(9);
        assert_eq!(q.try_push(9, 0), PushOutcome::LaneClosed);
        assert!(!q.open_lane(9), "lane keys are unique while live");
    }

    #[test]
    fn round_robin_interleaves_lanes_at_equal_weight() {
        let q = ShardQueue::new(8);
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..3 {
            q.try_push(1, (1, i));
            q.try_push(2, (2, i));
        }
        let mut order = Vec::new();
        for _ in 0..6 {
            match q.pop() {
                Some(Popped::Item(k, _)) => order.push(k),
                other => panic!("unexpected pop: {other:?}"),
            }
        }
        // Strict alternation: no lane is served twice in a row while the
        // other has items.
        for w in order.windows(2) {
            assert_ne!(w[0], w[1], "round-robin violated: {order:?}");
        }
    }

    #[test]
    fn heavier_lane_gets_the_larger_service_share() {
        let q = ShardQueue::new(64);
        q.open_lane(1);
        q.open_lane(2);
        q.set_lane_weight(1, MAX_LANE_WEIGHT);
        q.set_lane_weight(2, 1);
        for i in 0..32 {
            q.try_push(1, i);
            q.try_push(2, i);
        }
        let mut served = [0usize; 2];
        for _ in 0..24 {
            match q.pop() {
                Some(Popped::Item(k, _)) => served[k as usize - 1] += 1,
                other => panic!("unexpected pop: {other:?}"),
            }
        }
        assert!(
            served[0] > served[1],
            "weight-{MAX_LANE_WEIGHT} lane out-served by weight-1: {served:?}"
        );
        assert!(
            served[1] >= 2,
            "aging must keep serving the light lane: {served:?}"
        );
    }

    #[test]
    fn guarded_pop_marks_busy_and_complete_releases() {
        let q = ShardQueue::new(4);
        q.open_lane(1);
        q.try_push(1, 10);
        q.try_push(1, 11);
        let GuardedPop::Item(1, 10) = q.try_pop_guarded() else {
            panic!("expected first item");
        };
        // Lane busy: nothing else may drain it.
        assert_eq!(q.try_pop_guarded(), GuardedPop::Empty);
        assert_eq!(q.try_steal(8), Steal::Empty);
        q.complete(1, None);
        let GuardedPop::Item(1, 11) = q.try_pop_guarded() else {
            panic!("expected second item");
        };
        q.complete(1, Some(5));
        assert_eq!(q.lane_weight(1), Some(5));
    }

    #[test]
    fn lane_finished_deferred_while_busy() {
        let q = ShardQueue::new(4);
        q.open_lane(1);
        q.try_push(1, 0);
        let GuardedPop::Item(1, 0) = q.try_pop_guarded() else {
            panic!("expected the item");
        };
        q.close_lane(1);
        // Busy: the finish must wait for the processor.
        assert_eq!(q.try_pop_guarded(), GuardedPop::Empty);
        q.complete(1, None);
        assert_eq!(q.try_pop_guarded(), GuardedPop::LaneFinished(1));
        q.shutdown();
        assert_eq!(q.try_pop_guarded(), GuardedPop::Shutdown);
    }

    #[test]
    fn steal_takes_front_half_of_deepest_lane() {
        let q = ShardQueue::new(8);
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..6 {
            q.try_push(1, (1, i));
        }
        q.try_push(2, (2, 0));
        let Steal::Batch { key, items } = q.try_steal(8) else {
            panic!("expected a batch");
        };
        assert_eq!(key, 1, "steals the deepest lane");
        assert_eq!(items, vec![(1, 0), (1, 1), (1, 2)], "front half, in order");
        assert_eq!(q.depth(1), Some(3));
        // The claimed lane is off-limits; the other lane still pops.
        let GuardedPop::Item(2, _) = q.try_pop_guarded() else {
            panic!("lane 2 must still be poppable");
        };
        q.complete(2, None);
        q.complete(1, None);
        let GuardedPop::Item(1, (1, 3)) = q.try_pop_guarded() else {
            panic!("owner resumes at the first unstolen item");
        };
        q.complete(1, None);
    }

    #[test]
    fn steal_respects_max_items_and_empty_queue() {
        let q = ShardQueue::<u32>::new(8);
        q.open_lane(1);
        assert_eq!(q.try_steal(4), Steal::Empty);
        for i in 0..8 {
            q.try_push(1, i);
        }
        let Steal::Batch { items, .. } = q.try_steal(2) else {
            panic!("expected a batch");
        };
        assert_eq!(items, vec![0, 1], "cap wins over half");
        q.complete(1, None);
        assert_eq!(q.try_steal(0), Steal::Empty);
    }

    #[test]
    fn lane_finished_delivered_exactly_once_per_lane() {
        let q = ShardQueue::new(2);
        q.open_lane(1);
        q.open_lane(2);
        q.try_push(2, "x");
        q.close_lane(1);
        q.close_lane(2);
        let mut finished = Vec::new();
        let mut items = 0;
        loop {
            // Both lanes closed; after draining, pops would block forever —
            // shut down once we've seen everything.
            match q.pop() {
                Some(Popped::Item(_, _)) => items += 1,
                Some(Popped::LaneFinished(k)) => {
                    finished.push(k);
                    if finished.len() == 2 {
                        break;
                    }
                }
                None => break,
            }
        }
        assert_eq!(items, 1);
        finished.sort_unstable();
        assert_eq!(finished, vec![1, 2]);
    }

    #[test]
    fn producer_and_worker_threads_drain_everything() {
        let q = Arc::new(ShardQueue::new(4));
        for lane in 0..4u64 {
            q.open_lane(lane);
        }
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut shed = 0u64;
                for i in 0..400u64 {
                    let lane = i % 4;
                    loop {
                        match q.try_push(lane, i) {
                            PushOutcome::Queued => break,
                            PushOutcome::Shed => {
                                shed += 1;
                                std::thread::yield_now();
                            }
                            other => panic!("unexpected: {other:?}"),
                        }
                    }
                }
                for lane in 0..4u64 {
                    q.close_lane(lane);
                }
                shed
            })
        };
        let mut got = 0u64;
        let mut finished = 0;
        while finished < 4 {
            match q.pop() {
                Some(Popped::Item(_, _)) => got += 1,
                Some(Popped::LaneFinished(_)) => finished += 1,
                None => break,
            }
        }
        let _ = producer.join().expect("producer ok");
        assert_eq!(got, 400, "every queued item reaches the worker");
    }

    #[test]
    fn guarded_worker_and_thief_drain_everything_in_lane_order() {
        let q = Arc::new(ShardQueue::new(64));
        q.open_lane(1);
        q.open_lane(2);
        for i in 0..100u64 {
            assert_eq!(q.try_push(1 + (i % 2), i), PushOutcome::Queued);
        }
        q.close_lane(1);
        q.close_lane(2);
        q.shutdown();
        let log = Arc::new(Mutex::new(Vec::new()));
        let thief = {
            let (q, log) = (q.clone(), log.clone());
            std::thread::spawn(move || loop {
                match q.try_steal(8) {
                    Steal::Batch { key, items } => {
                        for v in items {
                            log.lock().push((key, v));
                        }
                        q.complete(key, None);
                    }
                    Steal::Contended => std::thread::yield_now(),
                    Steal::Empty => return,
                }
            })
        };
        loop {
            match q.try_pop_guarded() {
                GuardedPop::Item(key, v) => {
                    log.lock().push((key, v));
                    q.complete(key, None);
                }
                GuardedPop::LaneFinished(_) => {}
                GuardedPop::Empty => std::thread::yield_now(),
                GuardedPop::Shutdown => break,
            }
        }
        thief.join().expect("thief ok");
        let log = log.lock();
        assert_eq!(log.len(), 100, "every item exactly once");
        for lane in [1u64, 2] {
            let seq: Vec<u64> = log
                .iter()
                .filter(|(k, _)| *k == lane)
                .map(|&(_, v)| v)
                .collect();
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(seq, sorted, "lane {lane} processed out of order");
        }
    }
}
