//! Measuring real per-operation costs to feed the simulator.
//!
//! Fig 4/5 of the paper report a 2.16-million-frame experiment; replaying
//! that with real compute would take hours, so the harness measures each
//! operator's *actual* cost on this machine (median of repeated runs) and
//! replays those costs through the tandem-queue simulator. This keeps the
//! relative magnitudes — decode vs seek vs NN inference — honest.

// lint:allow-file(no-wall-clock): calibration's whole job is measuring real wall-clock costs

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Measures the median wall-clock seconds of `op` over `iters` runs
/// (after one warm-up run).
///
/// # Panics
///
/// Panics if `iters == 0`.
pub fn measure_secs<F: FnMut()>(iters: usize, mut op: F) -> f64 {
    assert!(iters > 0, "need at least one iteration");
    op(); // warm-up
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            op();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// A named table of per-operation costs in seconds.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostProfile {
    costs: BTreeMap<String, f64>,
}

impl CostProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an operation cost.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn set(&mut self, op: impl Into<String>, secs: f64) {
        assert!(secs.is_finite() && secs >= 0.0, "cost must be non-negative");
        self.costs.insert(op.into(), secs);
    }

    /// The cost of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` was never measured — a missing calibration is a
    /// harness bug, not a runtime condition.
    pub fn get(&self, op: &str) -> f64 {
        *self
            .costs
            .get(op)
            .unwrap_or_else(|| panic!("operation '{op}' not calibrated"))
    }

    /// The cost of `op`, or `None`.
    pub fn try_get(&self, op: &str) -> Option<f64> {
        self.costs.get(op).copied()
    }

    /// Iterates over `(name, secs)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.costs.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of calibrated operations.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when nothing has been calibrated.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_time() {
        let secs = measure_secs(3, || {
            let mut x = 0u64;
            for i in 0..10_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
        });
        assert!(secs >= 0.0);
        assert!(secs < 1.0, "tiny loop should be far under a second");
    }

    #[test]
    fn measure_scales_with_work() {
        // Memory-bound work so the optimizer cannot collapse the loop and
        // the 100x size difference shows up reliably in wall-clock.
        let work = |n: usize| {
            let mut v = vec![1u64; n];
            move || {
                for i in 1..v.len() {
                    v[i] = v[i].wrapping_add(v[i - 1] ^ i as u64);
                }
                std::hint::black_box(&v);
            }
        };
        let small = measure_secs(5, work(10_000));
        let large = measure_secs(5, work(1_000_000));
        assert!(
            large > small,
            "100x work must take longer: {large} vs {small}"
        );
    }

    #[test]
    fn profile_set_get() {
        let mut p = CostProfile::new();
        p.set("decode", 0.008);
        p.set("seek", 0.0000004);
        assert_eq!(p.get("decode"), 0.008);
        assert_eq!(p.try_get("nope"), None);
        assert_eq!(p.len(), 2);
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["decode", "seek"]);
    }

    #[test]
    #[should_panic(expected = "not calibrated")]
    fn missing_op_panics() {
        CostProfile::new().get("missing");
    }

    #[test]
    fn profile_serde_roundtrip() {
        let mut p = CostProfile::new();
        p.set("a", 1.5);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: CostProfile = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(p, back);
    }
}
