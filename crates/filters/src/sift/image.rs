//! Floating-point grayscale images for the SIFT pipeline.

use sieve_video::Plane;

/// A single-channel f32 image.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Builds from raw data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_data(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "image data length mismatch");
        Self {
            width,
            height,
            data,
        }
    }

    /// Converts a `u8` luma plane to float.
    pub fn from_luma(plane: &Plane) -> Self {
        Self {
            width: plane.width(),
            height: plane.height(),
            data: plane.data().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw samples, row-major.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Sample with edge clamping.
    pub fn get(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as usize;
        let cy = y.clamp(0, self.height as i64 - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Separable Gaussian blur with standard deviation `sigma`.
    pub fn gaussian_blur(&self, sigma: f32) -> GrayImage {
        if sigma <= 0.0 {
            return self.clone();
        }
        let radius = (sigma * 3.0).ceil() as i64;
        let mut kernel = Vec::with_capacity((2 * radius + 1) as usize);
        let denom = 2.0 * sigma * sigma;
        for i in -radius..=radius {
            kernel.push((-(i * i) as f32 / denom).exp());
        }
        let sum: f32 = kernel.iter().sum();
        for k in kernel.iter_mut() {
            *k /= sum;
        }
        // Horizontal pass.
        let mut tmp = vec![0f32; self.data.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let mut acc = 0f32;
                for (ki, k) in kernel.iter().enumerate() {
                    let sx = x as i64 + ki as i64 - radius;
                    acc += k * self.get(sx, y as i64);
                }
                tmp[y * self.width + x] = acc;
            }
        }
        let tmp_img = GrayImage::from_data(self.width, self.height, tmp);
        // Vertical pass.
        let mut out = vec![0f32; self.data.len()];
        for y in 0..self.height {
            for x in 0..self.width {
                let mut acc = 0f32;
                for (ki, k) in kernel.iter().enumerate() {
                    let sy = y as i64 + ki as i64 - radius;
                    acc += k * tmp_img.get(x as i64, sy);
                }
                out[y * self.width + x] = acc;
            }
        }
        GrayImage::from_data(self.width, self.height, out)
    }

    /// Halves the resolution by 2x2 averaging.
    pub fn downsample2(&self) -> GrayImage {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = vec![0f32; w * h];
        if self.width >= 2 && self.height >= 2 {
            // Every 2x2 window is fully interior (2x+1 <= width-1 and
            // likewise for rows), so each output row is a straight kernel
            // call over two source rows.
            for y in 0..h {
                let top = &self.data[(2 * y) * self.width..][..self.width];
                let bottom = &self.data[(2 * y + 1) * self.width..][..self.width];
                sieve_video::kernels::avg2x2_f32(top, bottom, &mut out[y * w..][..w]);
            }
        } else {
            // Degenerate 1-pixel-wide/tall images need edge clamping.
            for y in 0..h {
                for x in 0..w {
                    let s = (self.get(2 * x as i64, 2 * y as i64)
                        + self.get(2 * x as i64 + 1, 2 * y as i64))
                        + (self.get(2 * x as i64, 2 * y as i64 + 1)
                            + self.get(2 * x as i64 + 1, 2 * y as i64 + 1));
                    out[y * w + x] = s * 0.25;
                }
            }
        }
        GrayImage::from_data(w, h, out)
    }

    /// Pixel-wise difference `self - other` (used for DoG levels).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn subtract(&self, other: &GrayImage) -> GrayImage {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image size mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        GrayImage::from_data(self.width, self.height, data)
    }

    /// Gradient magnitude and orientation (radians in `[-pi, pi]`) at
    /// `(x, y)` via central differences.
    pub fn gradient(&self, x: i64, y: i64) -> (f32, f32) {
        let dx = self.get(x + 1, y) - self.get(x - 1, y);
        let dy = self.get(x, y + 1) - self.get(x, y - 1);
        ((dx * dx + dy * dy).sqrt(), dy.atan2(dx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(w: usize, h: usize) -> GrayImage {
        let data = (0..w * h).map(|i| (i % w) as f32).collect();
        GrayImage::from_data(w, h, data)
    }

    #[test]
    fn blur_preserves_mean() {
        let img = ramp(32, 32);
        let blurred = img.gaussian_blur(1.5);
        let m0: f32 = img.data().iter().sum::<f32>() / 1024.0;
        let m1: f32 = blurred.data().iter().sum::<f32>() / 1024.0;
        assert!((m0 - m1).abs() < 0.5);
    }

    #[test]
    fn blur_reduces_variance() {
        // Checkerboard has maximal high-frequency energy.
        let data: Vec<f32> = (0..32 * 32)
            .map(|i| {
                if (i / 32 + i % 32) % 2 == 0 {
                    0.0
                } else {
                    255.0
                }
            })
            .collect();
        let img = GrayImage::from_data(32, 32, data);
        let var = |im: &GrayImage| {
            let mean: f32 = im.data().iter().sum::<f32>() / im.data().len() as f32;
            im.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / im.data().len() as f32
        };
        let blurred = img.gaussian_blur(2.0);
        assert!(var(&blurred) < var(&img) / 4.0);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let img = ramp(16, 16);
        assert_eq!(img.gaussian_blur(0.0), img);
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = ramp(32, 20);
        let d = img.downsample2();
        assert_eq!((d.width(), d.height()), (16, 10));
    }

    #[test]
    fn subtract_self_is_zero() {
        let img = ramp(8, 8);
        let z = img.subtract(&img);
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_of_horizontal_ramp_points_right() {
        let img = ramp(16, 16);
        let (mag, ori) = img.gradient(8, 8);
        assert!(mag > 0.0);
        assert!(ori.abs() < 1e-6, "orientation should be 0 (pointing +x)");
    }

    #[test]
    fn clamped_access() {
        let img = ramp(8, 8);
        assert_eq!(img.get(-5, 0), img.get(0, 0));
        assert_eq!(img.get(100, 100), img.get(7, 7));
    }
}
