//! Descriptor matching with Lowe's ratio test.

use super::descriptor::Descriptor;

/// Matching parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// Lowe ratio: a match is accepted when the best distance is below
    /// `ratio` times the second-best distance.
    pub ratio: f32,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self { ratio: 0.8 }
    }
}

/// A correspondence between descriptor `from` in the previous frame and
/// descriptor `to` in the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index into the previous frame's descriptors.
    pub from: usize,
    /// Index into the current frame's descriptors.
    pub to: usize,
}

/// Brute-force nearest-neighbour matching from `prev` to `cur` with the
/// ratio test.
pub fn match_descriptors(
    prev: &[Descriptor],
    cur: &[Descriptor],
    config: &MatchConfig,
) -> Vec<Match> {
    let mut matches = Vec::new();
    if cur.is_empty() {
        return matches;
    }
    for (i, d) in prev.iter().enumerate() {
        let mut best = f32::INFINITY;
        let mut second = f32::INFINITY;
        let mut best_j = 0usize;
        for (j, c) in cur.iter().enumerate() {
            let dist = d.distance_sq(c);
            if dist < best {
                second = best;
                best = dist;
                best_j = j;
            } else if dist < second {
                second = dist;
            }
        }
        // Ratio test on squared distances: ratio^2.
        if cur.len() == 1 || best < config.ratio * config.ratio * second {
            matches.push(Match {
                from: i,
                to: best_j,
            });
        }
    }
    matches
}

/// The SIFT change score between two frames' descriptor sets: the fraction
/// of previous-frame keypoints that *fail* to find a match. 0 means every
/// feature persisted (same scene); 1 means nothing matched (new scene).
pub fn change_score(prev: &[Descriptor], cur: &[Descriptor], config: &MatchConfig) -> f64 {
    if prev.is_empty() {
        // No structure before: a change is only detectable if structure
        // appeared.
        return if cur.is_empty() { 0.0 } else { 1.0 };
    }
    let matched = match_descriptors(prev, cur, config).len();
    1.0 - matched as f64 / prev.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sift::keypoint::Keypoint;

    fn desc(seed: u64) -> Descriptor {
        let mut values = [0f32; 128];
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for v in values.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
        }
        let norm: f32 = values.iter().map(|x| x * x).sum::<f32>().sqrt();
        for v in values.iter_mut() {
            *v /= norm;
        }
        Descriptor {
            keypoint: Keypoint {
                x: 0.0,
                y: 0.0,
                octave: 0,
                level: 1,
                ox: 0,
                oy: 0,
                response: 1.0,
            },
            values,
        }
    }

    #[test]
    fn identical_sets_fully_match() {
        let set: Vec<Descriptor> = (0..10).map(desc).collect();
        let m = match_descriptors(&set, &set, &MatchConfig::default());
        assert_eq!(m.len(), 10);
        for mm in &m {
            assert_eq!(mm.from, mm.to, "each descriptor matches itself");
        }
        assert_eq!(change_score(&set, &set, &MatchConfig::default()), 0.0);
    }

    #[test]
    fn disjoint_sets_do_not_match() {
        let a: Vec<Descriptor> = (0..8).map(desc).collect();
        let b: Vec<Descriptor> = (100..108).map(desc).collect();
        let score = change_score(&a, &b, &MatchConfig::default());
        assert!(
            score > 0.5,
            "random descriptors should rarely match: {score}"
        );
    }

    #[test]
    fn empty_prev_scores_by_cur_presence() {
        let cfg = MatchConfig::default();
        let b: Vec<Descriptor> = (0..3).map(desc).collect();
        assert_eq!(change_score(&[], &b, &cfg), 1.0);
        assert_eq!(change_score(&[], &[], &cfg), 0.0);
    }

    #[test]
    fn empty_cur_scores_one() {
        let a: Vec<Descriptor> = (0..3).map(desc).collect();
        assert_eq!(change_score(&a, &[], &MatchConfig::default()), 1.0);
    }

    #[test]
    fn partial_overlap_partial_score() {
        let shared: Vec<Descriptor> = (0..5).map(desc).collect();
        let mut cur = shared.clone();
        cur.extend((200..203).map(desc));
        let mut prev = shared;
        prev.extend((300..305).map(desc));
        let score = change_score(&prev, &cur, &MatchConfig::default());
        assert!(
            score > 0.2 && score < 0.9,
            "expected partial score, got {score}"
        );
    }

    #[test]
    fn ratio_test_rejects_ambiguous() {
        // Two nearly identical candidates in cur: the ratio test should
        // reject the match as ambiguous.
        let a = vec![desc(1)];
        let mut c1 = desc(1);
        c1.values[0] += 0.01;
        let mut c2 = desc(1);
        c2.values[0] += 0.012;
        let cur = vec![c1, c2];
        let m = match_descriptors(&a, &cur, &MatchConfig { ratio: 0.8 });
        assert!(m.is_empty(), "ambiguous match must be rejected");
    }
}
