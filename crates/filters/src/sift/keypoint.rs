//! Keypoint detection: local extrema of the DoG stack.

use super::pyramid::Pyramid;

/// A detected keypoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keypoint {
    /// x position in input-image coordinates.
    pub x: f32,
    /// y position in input-image coordinates.
    pub y: f32,
    /// Octave index within the pyramid.
    pub octave: usize,
    /// DoG level within the octave at which the extremum was found.
    pub level: usize,
    /// x position in octave coordinates.
    pub ox: usize,
    /// y position in octave coordinates.
    pub oy: usize,
    /// DoG response (signed); magnitude reflects contrast.
    pub response: f32,
}

/// Detection parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeypointConfig {
    /// Minimum |DoG| response; suppresses low-contrast noise extrema.
    pub contrast_threshold: f32,
    /// Maximum keypoints kept per frame (strongest first). Bounds matching
    /// cost on busy frames.
    pub max_keypoints: usize,
    /// Edge rejection: maximum allowed ratio of principal curvatures (as in
    /// Lowe's 2004 paper, expressed as `(r+1)^2/r`). `0` disables the test.
    pub edge_ratio: f32,
}

impl Default for KeypointConfig {
    fn default() -> Self {
        Self {
            contrast_threshold: 3.0,
            max_keypoints: 256,
            edge_ratio: 10.0,
        }
    }
}

/// Finds DoG extrema: a pixel whose |response| exceeds the contrast
/// threshold and which is a strict maximum or minimum of its 3x3x3 scale-
/// space neighbourhood.
pub fn detect(pyramid: &Pyramid, config: &KeypointConfig) -> Vec<Keypoint> {
    let mut keypoints = Vec::new();
    for (oi, octave) in pyramid.octaves.iter().enumerate() {
        // The DoG stack is shallow (3 levels by default), so extrema are
        // sought at every level, comparing against whichever neighbouring
        // levels exist. Classic SIFT restricts to interior levels; with a
        // shallow stack that would discard most blob responses.
        for li in 0..octave.dogs.len() {
            let below = li.checked_sub(1).map(|i| &octave.dogs[i]);
            let here = &octave.dogs[li];
            let above = octave.dogs.get(li + 1);
            let (w, h) = (here.width(), here.height());
            for y in 1..h.saturating_sub(1) {
                for x in 1..w.saturating_sub(1) {
                    let v = here.get(x as i64, y as i64);
                    if v.abs() < config.contrast_threshold {
                        continue;
                    }
                    if !is_extremum(below, here, above, x as i64, y as i64, v) {
                        continue;
                    }
                    if config.edge_ratio > 0.0
                        && is_edge(here, x as i64, y as i64, config.edge_ratio)
                    {
                        continue;
                    }
                    keypoints.push(Keypoint {
                        x: (x * octave.downscale) as f32,
                        y: (y * octave.downscale) as f32,
                        octave: oi,
                        level: li,
                        ox: x,
                        oy: y,
                        response: v,
                    });
                }
            }
        }
    }
    // Strongest first; cap.
    keypoints.sort_by(|a, b| {
        b.response
            .abs()
            .partial_cmp(&a.response.abs())
            .expect("responses are finite")
    });
    keypoints.truncate(config.max_keypoints);
    keypoints
}

fn is_extremum(
    below: Option<&super::image::GrayImage>,
    here: &super::image::GrayImage,
    above: Option<&super::image::GrayImage>,
    x: i64,
    y: i64,
    v: f32,
) -> bool {
    let mut is_max = true;
    let mut is_min = true;
    let levels = [(below, false), (Some(here), true), (above, false)];
    for (img, center) in levels {
        let Some(img) = img else { continue };
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                if center && dx == 0 && dy == 0 {
                    continue;
                }
                let n = img.get(x + dx, y + dy);
                if n >= v {
                    is_max = false;
                }
                if n <= v {
                    is_min = false;
                }
                if !is_max && !is_min {
                    return false;
                }
            }
        }
    }
    is_max || is_min
}

/// Lowe's edge test: reject keypoints on straight edges using the ratio of
/// the Hessian's trace squared to its determinant.
fn is_edge(dog: &super::image::GrayImage, x: i64, y: i64, r: f32) -> bool {
    let dxx = dog.get(x + 1, y) + dog.get(x - 1, y) - 2.0 * dog.get(x, y);
    let dyy = dog.get(x, y + 1) + dog.get(x, y - 1) - 2.0 * dog.get(x, y);
    let dxy = (dog.get(x + 1, y + 1) - dog.get(x - 1, y + 1) - dog.get(x + 1, y - 1)
        + dog.get(x - 1, y - 1))
        / 4.0;
    let trace = dxx + dyy;
    let det = dxx * dyy - dxy * dxy;
    if det <= 0.0 {
        return true;
    }
    trace * trace / det > (r + 1.0) * (r + 1.0) / r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sift::image::GrayImage;
    use crate::sift::pyramid::PyramidConfig;

    fn blob_image(w: usize, h: usize, blobs: &[(usize, usize)]) -> GrayImage {
        let mut data = vec![40.0f32; w * h];
        for &(cx, cy) in blobs {
            for y in 0..h {
                for x in 0..w {
                    let d2 =
                        ((x as f32 - cx as f32).powi(2) + (y as f32 - cy as f32).powi(2)) / 18.0;
                    data[y * w + x] += 180.0 * (-d2).exp();
                }
            }
        }
        GrayImage::from_data(w, h, data)
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = GrayImage::from_data(64, 64, vec![100.0; 64 * 64]);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        assert!(detect(&p, &KeypointConfig::default()).is_empty());
    }

    #[test]
    fn blobs_are_detected_near_their_centres() {
        let img = blob_image(96, 96, &[(24, 24), (70, 60)]);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        let kps = detect(&p, &KeypointConfig::default());
        assert!(!kps.is_empty(), "blobs must produce keypoints");
        for &(cx, cy) in &[(24.0f32, 24.0f32), (70.0, 60.0)] {
            let near = kps
                .iter()
                .any(|k| ((k.x - cx).powi(2) + (k.y - cy).powi(2)).sqrt() < 12.0);
            assert!(near, "no keypoint near blob at ({cx},{cy}): {kps:?}");
        }
    }

    #[test]
    fn max_keypoints_cap_respected() {
        let blobs: Vec<(usize, usize)> = (0..20)
            .map(|i| (10 + (i % 5) * 18, 10 + (i / 5) * 18))
            .collect();
        let img = blob_image(112, 96, &blobs);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        let cfg = KeypointConfig {
            max_keypoints: 4,
            ..KeypointConfig::default()
        };
        let kps = detect(&p, &cfg);
        assert!(kps.len() <= 4);
    }

    #[test]
    fn keypoints_sorted_by_strength() {
        let img = blob_image(96, 96, &[(30, 30), (66, 66)]);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        let kps = detect(&p, &KeypointConfig::default());
        for w in kps.windows(2) {
            assert!(w[0].response.abs() >= w[1].response.abs());
        }
    }

    #[test]
    fn higher_contrast_threshold_fewer_keypoints() {
        let img = blob_image(96, 96, &[(30, 30), (66, 66), (48, 70)]);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        let count = |t: f32| {
            let cfg = KeypointConfig {
                contrast_threshold: t,
                ..KeypointConfig::default()
            };
            detect(&p, &cfg).len()
        };
        assert!(count(1.0) >= count(8.0));
    }
}
