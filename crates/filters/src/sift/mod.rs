//! SIFT-lite: scale-space keypoints, 128-d descriptors, ratio-test matching.
//!
//! A from-scratch implementation of the parts of SIFT (Lowe 2004) that the
//! paper's baseline uses: detect keypoints in each decoded frame, match them
//! against the previous frame, and declare a change when the matched
//! fraction drops. Rotation invariance is omitted (fixed cameras); see
//! `DESIGN.md` for the substitution note.
//!
//! The pipeline is deliberately *expensive per frame* — pyramid construction,
//! per-keypoint descriptors, brute-force matching — because its cost is part
//! of what the paper measures (Table III: SIFT is the slowest baseline).

pub mod descriptor;
pub mod image;
pub mod keypoint;
pub mod matcher;
pub mod pyramid;

use sieve_video::Frame;

use crate::detector::ChangeDetector;
use descriptor::{describe, Descriptor};
use image::GrayImage;
use keypoint::{detect, KeypointConfig};
use matcher::MatchConfig;
use pyramid::{Pyramid, PyramidConfig};

/// End-to-end SIFT feature extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SiftConfig {
    /// Scale-space parameters.
    pub pyramid: PyramidConfig,
    /// Keypoint detection parameters.
    pub keypoints: KeypointConfig,
    /// Matching parameters.
    pub matching: MatchConfig,
}

/// Extracts SIFT descriptors from a frame's luma plane.
pub fn extract(frame: &Frame, config: &SiftConfig) -> Vec<Descriptor> {
    let img = GrayImage::from_luma(frame.y());
    let pyramid = Pyramid::build(&img, &config.pyramid);
    let kps = detect(&pyramid, &config.keypoints);
    describe(&pyramid, &kps)
}

/// SIFT-matching change detector. Caches the previous frame's descriptors so
/// each frame is described once.
#[derive(Debug, Clone, Default)]
pub struct SiftDetector {
    config: SiftConfig,
    prev_features: Option<Vec<Descriptor>>,
}

impl SiftDetector {
    /// Creates a detector with default parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a detector with explicit parameters.
    pub fn with_config(config: SiftConfig) -> Self {
        Self {
            config,
            prev_features: None,
        }
    }
}

impl ChangeDetector for SiftDetector {
    fn name(&self) -> &'static str {
        "SIFT"
    }

    fn change_score(&mut self, prev: &Frame, cur: &Frame) -> f64 {
        let prev_features = match self.prev_features.take() {
            Some(f) => f,
            None => extract(prev, &self.config),
        };
        let cur_features = extract(cur, &self.config);
        let score = matcher::change_score(&prev_features, &cur_features, &self.config.matching);
        self.prev_features = Some(cur_features);
        score
    }

    fn reset(&mut self) {
        self.prev_features = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_video::{Frame, Resolution};

    fn scene_frame(seed: u64, with_object: bool) -> Frame {
        let res = Resolution::new(96, 96);
        let mut f = Frame::grey(res);
        for y in 0..96usize {
            for x in 0..96usize {
                // Textured background with some blob structure.
                let v = 90.0
                    + 50.0 * ((x as f32 / 13.0).sin() * (y as f32 / 11.0).cos())
                    + ((x as u64 * 31 + y as u64 * 17 + seed) % 13) as f32;
                f.y_mut().put(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        if with_object {
            for y in 30..60usize {
                for x in 20..70usize {
                    let d2 = ((x as f32 - 45.0).powi(2) + (y as f32 - 45.0).powi(2)) / 120.0;
                    if d2 < 1.5 {
                        f.y_mut().put(x, y, (230.0 * (-d2).exp()).max(160.0) as u8);
                    }
                }
            }
        }
        f
    }

    #[test]
    fn same_scene_scores_low() {
        let mut d = SiftDetector::new();
        let a = scene_frame(0, false);
        let b = scene_frame(0, false);
        let score = d.change_score(&a, &b);
        assert!(score < 0.3, "identical scenes must score low: {score}");
    }

    #[test]
    fn object_entry_scores_higher_than_static() {
        let mut d = SiftDetector::new();
        let bg0 = scene_frame(0, false);
        let bg1 = scene_frame(0, false);
        let with_obj = scene_frame(0, true);
        let static_score = d.change_score(&bg0, &bg1);
        d.reset();
        let entry_score = d.change_score(&bg1, &with_obj);
        assert!(
            entry_score > static_score,
            "object entry ({entry_score}) must exceed static ({static_score})"
        );
    }

    #[test]
    fn cache_matches_fresh_computation() {
        let frames = [
            scene_frame(0, false),
            scene_frame(0, true),
            scene_frame(0, false),
        ];
        // With cache (sequential).
        let mut d = SiftDetector::new();
        let s1 = d.change_score(&frames[0], &frames[1]);
        let s2 = d.change_score(&frames[1], &frames[2]);
        // Without cache.
        let mut d2 = SiftDetector::new();
        let f1 = d2.change_score(&frames[0], &frames[1]);
        d2.reset();
        let f2 = d2.change_score(&frames[1], &frames[2]);
        assert_eq!(s1, f1);
        assert_eq!(s2, f2);
    }

    #[test]
    fn detector_name() {
        assert_eq!(SiftDetector::new().name(), "SIFT");
    }
}
