//! 128-dimensional SIFT descriptors.
//!
//! The standard 4x4 spatial grid with 8 orientation bins, computed on the
//! blurred octave image the keypoint was found in. Rotation invariance is
//! deliberately omitted: the paper's cameras are fixed-angle, so descriptor
//! orientation normalization would only add noise and cost.

use super::image::GrayImage;
use super::keypoint::Keypoint;
use super::pyramid::Pyramid;

/// Descriptor dimensionality (4 x 4 cells x 8 orientation bins).
pub const DESCRIPTOR_LEN: usize = 128;

/// A descriptor paired with its keypoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptor {
    /// The keypoint this descriptor describes.
    pub keypoint: Keypoint,
    /// Unit-normalized 128-d feature vector.
    pub values: [f32; DESCRIPTOR_LEN],
}

impl Descriptor {
    /// Squared Euclidean distance to another descriptor.
    pub fn distance_sq(&self, other: &Descriptor) -> f32 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// Computes descriptors for `keypoints` over `pyramid`.
pub fn describe(pyramid: &Pyramid, keypoints: &[Keypoint]) -> Vec<Descriptor> {
    keypoints
        .iter()
        .filter_map(|kp| {
            let octave = pyramid.octaves.get(kp.octave)?;
            // Use the blur level matching the DoG level.
            let img = octave.images.get(kp.level)?;
            Some(Descriptor {
                keypoint: *kp,
                values: describe_one(img, kp.ox as i64, kp.oy as i64),
            })
        })
        .collect()
}

/// Builds one descriptor from the 16x16 gradient patch centred at `(x, y)`.
fn describe_one(img: &GrayImage, x: i64, y: i64) -> [f32; DESCRIPTOR_LEN] {
    let mut hist = [0f32; DESCRIPTOR_LEN];
    for dy in -8..8i64 {
        for dx in -8..8i64 {
            let (mag, ori) = img.gradient(x + dx, y + dy);
            if mag == 0.0 {
                continue;
            }
            // Spatial cell in the 4x4 grid.
            let cell_x = ((dx + 8) / 4) as usize;
            let cell_y = ((dy + 8) / 4) as usize;
            // Orientation bin in [0, 8).
            let norm = (ori + std::f32::consts::PI) / (2.0 * std::f32::consts::PI);
            let bin = ((norm * 8.0) as usize).min(7);
            // Gaussian spatial weighting centred on the keypoint.
            let w = (-((dx * dx + dy * dy) as f32) / 64.0).exp();
            hist[(cell_y * 4 + cell_x) * 8 + bin] += mag * w;
        }
    }
    normalize(&mut hist);
    // Lowe's illumination clamp: cap at 0.2, renormalize.
    for v in hist.iter_mut() {
        *v = v.min(0.2);
    }
    normalize(&mut hist);
    hist
}

fn normalize(v: &mut [f32; DESCRIPTOR_LEN]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sift::keypoint::{detect, KeypointConfig};
    use crate::sift::pyramid::PyramidConfig;

    fn blob_image(w: usize, h: usize, cx: f32, cy: f32) -> GrayImage {
        let data = (0..w * h)
            .map(|i| {
                let (x, y) = ((i % w) as f32, (i / w) as f32);
                let d2 = ((x - cx).powi(2) + (y - cy).powi(2)) / 18.0;
                40.0 + 180.0 * (-d2).exp()
            })
            .collect();
        GrayImage::from_data(w, h, data)
    }

    fn descriptors_of(img: &GrayImage) -> Vec<Descriptor> {
        let p = Pyramid::build(img, &PyramidConfig::default());
        let kps = detect(&p, &KeypointConfig::default());
        describe(&p, &kps)
    }

    #[test]
    fn descriptors_are_unit_norm() {
        let img = blob_image(96, 96, 40.0, 40.0);
        let descs = descriptors_of(&img);
        assert!(!descs.is_empty());
        for d in &descs {
            let norm: f32 = d.values.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm {norm}");
        }
    }

    #[test]
    fn identical_patches_have_zero_distance() {
        let img = blob_image(96, 96, 40.0, 40.0);
        let descs = descriptors_of(&img);
        let d = &descs[0];
        assert_eq!(d.distance_sq(d), 0.0);
    }

    #[test]
    fn translated_blob_descriptor_matches() {
        // Same blob, different position: strongest descriptor should be
        // nearly identical (translation invariance of the local patch).
        let a = descriptors_of(&blob_image(96, 96, 30.0, 30.0));
        let b = descriptors_of(&blob_image(96, 96, 60.0, 50.0));
        assert!(!a.is_empty() && !b.is_empty());
        let best = a[0]
            .values
            .iter()
            .zip(&b[0].values)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>();
        assert!(best < 0.1, "translated blob should match, dist {best}");
    }

    #[test]
    fn different_structures_have_larger_distance() {
        let blob = descriptors_of(&blob_image(96, 96, 40.0, 40.0));
        // A corner structure instead of a blob.
        let data: Vec<f32> = (0..96 * 96)
            .map(|i| {
                let (x, y) = (i % 96, i / 96);
                if x > 40 && y > 40 {
                    220.0
                } else {
                    40.0
                }
            })
            .collect();
        let corner = descriptors_of(&GrayImage::from_data(96, 96, data));
        if corner.is_empty() {
            return; // corner may be rejected by edge filter; acceptable
        }
        let d_same = blob[0].distance_sq(&blob[0]);
        let d_diff = blob[0].distance_sq(&corner[0]);
        assert!(d_diff > d_same);
    }
}
