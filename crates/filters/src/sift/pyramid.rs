//! Gaussian scale-space pyramid and difference-of-Gaussians stack.

use super::image::GrayImage;

/// Parameters of the scale space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidConfig {
    /// Number of octaves (each halves the resolution). Automatically capped
    /// so the smallest octave stays at least 16 pixels on a side.
    pub octaves: usize,
    /// Base blur applied at each octave.
    pub base_sigma: f32,
    /// Blur multiplier between adjacent scales within an octave.
    pub k: f32,
    /// Number of blurred images per octave (DoG count is one fewer).
    pub scales: usize,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        Self {
            octaves: 3,
            base_sigma: 1.2,
            k: std::f32::consts::SQRT_2,
            scales: 4,
        }
    }
}

/// One octave: the blurred images and their DoG differences.
#[derive(Debug, Clone)]
pub struct Octave {
    /// Blurred images, increasing sigma.
    pub images: Vec<GrayImage>,
    /// `images[i+1] - images[i]` for each adjacent pair.
    pub dogs: Vec<GrayImage>,
    /// Resolution scale relative to the input (1, 2, 4, ...).
    pub downscale: usize,
}

/// The full pyramid.
#[derive(Debug, Clone)]
pub struct Pyramid {
    /// Octaves, from input resolution downwards.
    pub octaves: Vec<Octave>,
}

impl Pyramid {
    /// Builds the scale space of `input`.
    ///
    /// # Panics
    ///
    /// Panics if `config.scales < 3` (keypoint detection needs at least two
    /// DoG levels).
    pub fn build(input: &GrayImage, config: &PyramidConfig) -> Self {
        assert!(config.scales >= 3, "need at least 3 scales per octave");
        let mut octaves = Vec::new();
        let mut base = input.clone();
        let mut downscale = 1usize;
        for _ in 0..config.octaves {
            if base.width() < 16 || base.height() < 16 {
                break;
            }
            let mut images: Vec<GrayImage> = Vec::with_capacity(config.scales);
            let mut sigma = config.base_sigma;
            for s in 0..config.scales {
                let img = if s == 0 {
                    base.gaussian_blur(sigma)
                } else {
                    // Incremental blur: sigma_total grows by factor k each
                    // scale; the increment is sqrt(new^2 - old^2).
                    let prev_sigma = sigma;
                    sigma *= config.k;
                    let inc = (sigma * sigma - prev_sigma * prev_sigma).max(0.0).sqrt();
                    images.last().unwrap().gaussian_blur(inc)
                };
                images.push(img);
            }
            let dogs = images.windows(2).map(|w| w[1].subtract(&w[0])).collect();
            octaves.push(Octave {
                images,
                dogs,
                downscale,
            });
            base = base.downsample2();
            downscale *= 2;
        }
        Self { octaves }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(w: usize, h: usize) -> GrayImage {
        let data = (0..w * h)
            .map(|i| {
                let (x, y) = (i % w, i / w);
                (((x * 13) ^ (y * 7)) % 256) as f32
            })
            .collect();
        GrayImage::from_data(w, h, data)
    }

    #[test]
    fn builds_requested_octaves() {
        let img = textured(128, 128);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        assert_eq!(p.octaves.len(), 3);
        assert_eq!(p.octaves[0].downscale, 1);
        assert_eq!(p.octaves[1].downscale, 2);
        assert_eq!(p.octaves[2].downscale, 4);
    }

    #[test]
    fn octaves_capped_for_small_images() {
        let img = textured(40, 40);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        // 40 -> 20 -> 10(too small): only 2 octaves.
        assert_eq!(p.octaves.len(), 2);
    }

    #[test]
    fn dog_count_is_scales_minus_one() {
        let img = textured(64, 64);
        let cfg = PyramidConfig::default();
        let p = Pyramid::build(&img, &cfg);
        for o in &p.octaves {
            assert_eq!(o.images.len(), cfg.scales);
            assert_eq!(o.dogs.len(), cfg.scales - 1);
        }
    }

    #[test]
    fn flat_image_has_zero_dogs() {
        let img = GrayImage::from_data(64, 64, vec![128.0; 64 * 64]);
        let p = Pyramid::build(&img, &PyramidConfig::default());
        for o in &p.octaves {
            for d in &o.dogs {
                assert!(d.data().iter().all(|v| v.abs() < 1e-3));
            }
        }
    }

    #[test]
    #[should_panic(expected = "3 scales")]
    fn rejects_too_few_scales() {
        let img = textured(64, 64);
        let cfg = PyramidConfig {
            scales: 2,
            ..PyramidConfig::default()
        };
        let _ = Pyramid::build(&img, &cfg);
    }
}
