//! The change-detector abstraction shared by all image-similarity baselines,
//! plus frame selection and threshold calibration.
//!
//! The paper's baselines (NoScope-style) decode *every* frame and compute a
//! similarity score between consecutive frames; frames whose change score
//! exceeds a threshold are "events" and get sent to the NN. The threshold is
//! tuned on a training prefix so each baseline samples the same fraction of
//! frames as SiEVE, making the accuracy comparison fair (Section V-A).

use sieve_video::Frame;

/// A per-frame-pair change scorer. Implementations are stateless with
/// respect to the video (each call considers exactly one pair), but may
/// cache per-frame features internally — SIFT keeps the previous frame's
/// keypoints to avoid recomputing them.
pub trait ChangeDetector {
    /// Short name used in tables ("MSE", "SIFT").
    fn name(&self) -> &'static str;

    /// Change score between consecutive decoded frames; larger = more
    /// change. Scores must be non-negative and comparable across a video.
    fn change_score(&mut self, prev: &Frame, cur: &Frame) -> f64;

    /// Clears any cached per-frame state (call between videos).
    fn reset(&mut self) {}
}

/// Computes the change score of every consecutive pair in `frames`.
/// `scores[i]` describes the pair `(i-1, i)`; index 0 has no pair, so the
/// returned vector has `frames.len() - 1` entries (empty input gives empty
/// output).
pub fn score_sequence<D: ChangeDetector + ?Sized>(detector: &mut D, frames: &[Frame]) -> Vec<f64> {
    detector.reset();
    frames
        .windows(2)
        .map(|w| detector.change_score(&w[0], &w[1]))
        .collect()
}

/// Selects frames given pairwise `scores` (as returned by
/// [`score_sequence`]) and a `threshold`: frame 0 is always selected, and
/// frame `i+1` is selected when `scores[i] > threshold`.
pub fn select_frames(scores: &[f64], threshold: f64) -> Vec<usize> {
    let mut selected = vec![0usize];
    for (i, &s) in scores.iter().enumerate() {
        if s > threshold {
            selected.push(i + 1);
        }
    }
    selected
}

/// Finds the threshold at which [`select_frames`] selects as close as
/// possible to `target_fraction` of the `total_frames` (including the always
/// selected frame 0).
///
/// Returns the threshold. With ties, fewer frames are preferred (the
/// threshold is set just above the k-th largest score).
///
/// # Panics
///
/// Panics if `target_fraction` is not in `(0, 1]`.
pub fn calibrate_threshold(scores: &[f64], total_frames: usize, target_fraction: f64) -> f64 {
    assert!(
        target_fraction > 0.0 && target_fraction <= 1.0,
        "target fraction must be in (0, 1]"
    );
    let want = ((total_frames as f64 * target_fraction).round() as usize).max(1);
    // Frame 0 is free; we need `want - 1` additional frames.
    let k = want - 1;
    if k == 0 {
        // Threshold above the maximum score selects only frame 0.
        return scores.iter().cloned().fold(0.0f64, f64::max) + 1.0;
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("scores must not be NaN"));
    if k >= sorted.len() {
        // Want everything: any threshold below the minimum.
        return sorted.last().copied().unwrap_or(0.0) - 1.0;
    }
    // Select scores strictly greater than the k-th largest (0-indexed k-1).
    let kth = sorted[k - 1];
    let next = sorted[k];
    if next < kth {
        // Midpoint keeps exactly k frames selected.
        (kth + next) / 2.0
    } else {
        // Ties: selecting exactly k is impossible; go just below kth to
        // include the tied group (closest achievable from above).
        kth - (kth.abs() * 1e-9 + 1e-12)
    }
}

/// Uniform sampling baseline: selects every `interval`-th frame. This is the
/// paper's "Uniform Sampling" end-to-end baseline; it has no change score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformSampler {
    interval: usize,
}

impl UniformSampler {
    /// Creates a sampler selecting frames `0, interval, 2*interval, ...`.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        assert!(interval > 0, "interval must be positive");
        Self { interval }
    }

    /// An interval that yields approximately `count` samples out of
    /// `total_frames` (used to match SiEVE's I-frame count, as the paper
    /// does "for fair comparison").
    pub fn matching_count(total_frames: usize, count: usize) -> Self {
        let interval = (total_frames / count.max(1)).max(1);
        Self::new(interval)
    }

    /// The sampling interval.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Selected frame indices for a video of `total_frames`.
    pub fn select(&self, total_frames: usize) -> Vec<usize> {
        (0..total_frames).step_by(self.interval).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_frames_includes_zero() {
        let selected = select_frames(&[0.0, 5.0, 1.0], 2.0);
        assert_eq!(selected, vec![0, 2]);
    }

    #[test]
    fn select_frames_empty_scores() {
        assert_eq!(select_frames(&[], 1.0), vec![0]);
    }

    #[test]
    fn calibrate_hits_exact_target() {
        let scores: Vec<f64> = (0..99).map(|i| i as f64).collect(); // frames: 100
        let t = calibrate_threshold(&scores, 100, 0.10);
        let selected = select_frames(&scores, t);
        assert_eq!(selected.len(), 10);
    }

    #[test]
    fn calibrate_with_ties_prefers_inclusion() {
        let scores = vec![5.0, 5.0, 5.0, 1.0];
        let t = calibrate_threshold(&scores, 5, 0.4); // want 2 -> k=1, tied at 5.0
        let selected = select_frames(&scores, t);
        assert!(selected.len() >= 2, "tied scores included: {selected:?}");
    }

    #[test]
    fn calibrate_minimum_selects_only_first() {
        let scores = vec![3.0, 2.0, 1.0];
        let t = calibrate_threshold(&scores, 1000, 0.001);
        assert_eq!(select_frames(&scores, t), vec![0]);
    }

    #[test]
    fn calibrate_full_fraction_selects_everything() {
        let scores = vec![3.0, 2.0, 1.0];
        let t = calibrate_threshold(&scores, 4, 1.0);
        assert_eq!(select_frames(&scores, t).len(), 4);
    }

    #[test]
    #[should_panic(expected = "target fraction")]
    fn calibrate_rejects_zero_fraction() {
        calibrate_threshold(&[1.0], 10, 0.0);
    }

    #[test]
    fn uniform_sampler_counts() {
        let s = UniformSampler::new(30);
        let sel = s.select(300);
        assert_eq!(sel.len(), 10);
        assert_eq!(sel[0], 0);
        assert_eq!(sel[9], 270);
    }

    #[test]
    fn uniform_matching_count() {
        let s = UniformSampler::matching_count(3000, 30);
        let n = s.select(3000).len();
        assert!((25..=35).contains(&n), "expected ~30 samples, got {n}");
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn uniform_rejects_zero() {
        let _ = UniformSampler::new(0);
    }
}
