//! # sieve-filters — image-similarity baselines
//!
//! The NoScope-style frame filters the paper compares SiEVE against:
//!
//! * [`MseDetector`] — pixel-wise mean squared error between consecutive
//!   decoded frames;
//! * [`SiftDetector`] — SIFT keypoint matching (from-scratch scale-space
//!   pyramid, DoG keypoints, 128-d descriptors, Lowe ratio test);
//! * [`UniformSampler`] — fixed-interval sampling.
//!
//! All of these require *fully decoding every frame* before scoring — the
//! cost that SiEVE's I-frame seeking avoids. [`calibrate_threshold`] tunes a
//! detector's threshold on a training prefix so it samples the same fraction
//! of frames as SiEVE, reproducing the paper's fair-comparison methodology.
//!
//! ```
//! use sieve_filters::{ChangeDetector, MseDetector, score_sequence, select_frames,
//!                     calibrate_threshold};
//! use sieve_video::{Frame, Resolution};
//!
//! let res = Resolution::new(32, 32);
//! let mut frames = vec![Frame::grey(res); 10];
//! for v in frames[5].y_mut().data_mut().iter_mut() { *v = 20; } // a "change"
//! let mut det = MseDetector::new();
//! let scores = score_sequence(&mut det, &frames);
//! let t = calibrate_threshold(&scores, frames.len(), 0.3);
//! let picked = select_frames(&scores, t);
//! assert!(picked.contains(&5));
//! ```

pub mod detector;
pub mod mse;
pub mod select;
pub mod sift;

pub use detector::{
    calibrate_threshold, score_sequence, select_frames, ChangeDetector, UniformSampler,
};
pub use mse::{mse_luma, MseDetector};
pub use select::{
    selector_for, AdaptiveChangeSession, Budget, ChangeSelector, MseSelector, SiftSelector,
    UniformSelector,
};
pub use sift::{SiftConfig, SiftDetector};
