//! Mean-squared-error frame differencing — the cheapest NoScope-style
//! baseline.
//!
//! The score is the pixel-wise mean squared difference between consecutive
//! luma planes. It is fast per pair but (a) requires both frames to be fully
//! decoded, and (b) cannot distinguish coherent background motion (water,
//! foliage, exposure changes) from a new object — the failure mode that
//! makes it lose to motion-estimation-based scenecut detection on the
//! rippling datasets, exactly as the paper reports.

use sieve_video::Frame;

use crate::detector::ChangeDetector;

/// Pixel-wise mean squared error detector over the luma plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MseDetector;

impl MseDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        Self
    }
}

/// Mean squared error between the luma planes of two frames.
///
/// # Panics
///
/// Panics if the resolutions differ.
pub fn mse_luma(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(
        a.resolution(),
        b.resolution(),
        "MSE requires equal resolutions"
    );
    let pa = a.y().data();
    let pb = b.y().data();
    // The integer sum of squared differences is exact, and converting it to
    // f64 is too for any realistic plane (the sum stays far below 2^53), so
    // this matches the naive per-pixel f64 accumulation bit for bit.
    sieve_video::kernels::sse_u8(pa, pb) as f64 / pa.len() as f64
}

impl ChangeDetector for MseDetector {
    fn name(&self) -> &'static str {
        "MSE"
    }

    fn change_score(&mut self, prev: &Frame, cur: &Frame) -> f64 {
        mse_luma(prev, cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_video::{Frame, Resolution};

    #[test]
    fn identical_frames_score_zero() {
        let f = Frame::grey(Resolution::new(32, 32));
        let mut d = MseDetector::new();
        assert_eq!(d.change_score(&f, &f), 0.0);
    }

    #[test]
    fn score_grows_with_difference() {
        let res = Resolution::new(32, 32);
        let a = Frame::grey(res);
        let mut small = a.clone();
        for i in 0..64 {
            small.y_mut().data_mut()[i] = 140;
        }
        let mut big = a.clone();
        for v in big.y_mut().data_mut().iter_mut() {
            *v = 10;
        }
        let mut d = MseDetector::new();
        let s_small = d.change_score(&a, &small);
        let s_big = d.change_score(&a, &big);
        assert!(s_small > 0.0);
        assert!(s_big > s_small);
    }

    #[test]
    fn known_value() {
        let res = Resolution::new(16, 16);
        let a = Frame::filled(res, 100, 128, 128);
        let b = Frame::filled(res, 110, 128, 128);
        assert!((mse_luma(&a, &b) - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "equal resolutions")]
    fn mismatched_resolutions_panic() {
        let a = Frame::grey(Resolution::new(16, 16));
        let b = Frame::grey(Resolution::new(32, 32));
        let _ = mse_luma(&a, &b);
    }

    #[test]
    fn symmetric() {
        let res = Resolution::new(16, 16);
        let a = Frame::filled(res, 90, 128, 128);
        let b = Frame::filled(res, 200, 128, 128);
        assert_eq!(mse_luma(&a, &b), mse_luma(&b, &a));
    }
}
