//! [`FrameSelector`] adapters for the image-similarity baselines.
//!
//! These plug the NoScope-style filters into `sieve-core`'s unified
//! analysis layer: each adapter fully decodes the stream (the cost the
//! paper charges these baselines), applies its policy, and hands the
//! selected frames to the generic driver. Adding a baseline to the whole
//! system is: implement [`FrameSelector`] here, add a
//! `sieve_core::pipeline::Baseline` registry row for its cost model.

use sieve_core::{FrameSelector, SieveError};
use sieve_video::{EncodedVideo, Frame};

use crate::detector::{
    calibrate_threshold, score_sequence, select_frames, ChangeDetector, UniformSampler,
};
use crate::mse::MseDetector;
use crate::sift::SiftDetector;

/// How a threshold baseline picks its operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Use a fixed absolute change-score threshold (e.g. tuned offline on a
    /// training prefix, the paper's deployment setting).
    Threshold(f64),
    /// Calibrate the threshold on this video so that approximately this
    /// fraction of frames is selected (the paper's matched-sampling
    /// comparison setting).
    Fraction(f64),
}

/// Uniform sampling as a frame selector: decode everything, keep every
/// `interval`-th frame.
#[derive(Debug, Clone, Copy)]
pub struct UniformSelector {
    sampler: UniformSampler,
}

impl UniformSelector {
    /// Selects every `interval`-th frame.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        Self {
            sampler: UniformSampler::new(interval),
        }
    }

    /// Matches a target selection count for a known video length (the
    /// paper's budget-matched comparison).
    pub fn matching_count(total_frames: usize, count: usize) -> Self {
        Self {
            sampler: UniformSampler::matching_count(total_frames, count),
        }
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &UniformSampler {
        &self.sampler
    }
}

impl FrameSelector for UniformSelector {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        let frames = video.decode_all()?;
        Ok(self
            .sampler
            .select(frames.len())
            .into_iter()
            .map(|i| (i, frames[i].clone()))
            .collect())
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        // The *indices* of uniform sampling need no decoding, but the cost
        // model still charges the full decode (P-frames chain); see
        // `SelectorKind::Uniform`.
        Ok(self.sampler.select(video.frame_count()))
    }
}

/// A change-detector baseline (MSE, SIFT, or any [`ChangeDetector`]) as a
/// frame selector: decode everything, score consecutive pairs, select
/// frames whose change exceeds the budgeted threshold.
#[derive(Debug)]
pub struct ChangeSelector<D: ChangeDetector> {
    detector: D,
    budget: Budget,
    name: &'static str,
}

impl<D: ChangeDetector> ChangeSelector<D> {
    /// Wraps `detector` with a selection budget.
    pub fn new(detector: D, budget: Budget) -> Self {
        Self {
            detector,
            budget,
            name: "",
        }
    }

    fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }
}

impl<D: ChangeDetector> FrameSelector for ChangeSelector<D> {
    fn name(&self) -> &'static str {
        if self.name.is_empty() {
            self.detector.name()
        } else {
            self.name
        }
    }

    fn select(&mut self, video: &EncodedVideo) -> Result<Vec<(usize, Frame)>, SieveError> {
        let frames = video.decode_all()?;
        Ok(self
            .score_and_select(&frames)?
            .into_iter()
            .map(|i| (i, frames[i].clone()))
            .collect())
    }

    fn select_indices(&mut self, video: &EncodedVideo) -> Result<Vec<usize>, SieveError> {
        // Decode and score, but skip cloning the selected frames — callers
        // that only need indices (the live driver's up-front policy pass)
        // would otherwise pay a full-resolution clone per selection.
        let frames = video.decode_all()?;
        self.score_and_select(&frames)
    }
}

impl<D: ChangeDetector> ChangeSelector<D> {
    /// Scores the decoded stream and applies the budgeted threshold.
    fn score_and_select(&mut self, frames: &[Frame]) -> Result<Vec<usize>, SieveError> {
        if frames.is_empty() {
            return Ok(Vec::new());
        }
        let scores = score_sequence(&mut self.detector, frames);
        let threshold = match self.budget {
            Budget::Threshold(t) => t,
            Budget::Fraction(f) => {
                if !(0.0..=1.0).contains(&f) || f == 0.0 {
                    return Err(SieveError::selector(format!(
                        "target fraction {f} outside (0, 1]"
                    )));
                }
                calibrate_threshold(&scores, frames.len(), f)
            }
        };
        Ok(select_frames(&scores, threshold))
    }
}

/// MSE differencing as a frame selector.
pub type MseSelector = ChangeSelector<MseDetector>;

impl MseSelector {
    /// MSE with the given budget.
    pub fn mse(budget: Budget) -> Self {
        ChangeSelector::new(MseDetector::new(), budget).with_name("mse")
    }
}

/// SIFT matching as a frame selector.
pub type SiftSelector = ChangeSelector<SiftDetector>;

impl SiftSelector {
    /// SIFT with the given budget.
    pub fn sift(budget: Budget) -> Self {
        ChangeSelector::new(SiftDetector::new(), budget).with_name("sift")
    }
}

/// Builds the boxed selector for a simulated baseline's
/// [`sieve_core::SelectorKind`] — the runtime half of the baseline
/// registry. `budget` applies to threshold baselines; `uniform_interval`
/// to uniform sampling.
pub fn selector_for(
    kind: sieve_core::SelectorKind,
    budget: Budget,
    uniform_interval: usize,
) -> Box<dyn FrameSelector> {
    match kind {
        sieve_core::SelectorKind::IFrame => Box::new(sieve_core::IFrameSelector::new()),
        sieve_core::SelectorKind::Uniform => Box::new(UniformSelector::new(uniform_interval)),
        sieve_core::SelectorKind::Mse => Box::new(MseSelector::mse(budget)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::analyze;
    use sieve_nn::OracleDetector;
    use sieve_video::{EncoderConfig, Resolution};

    fn sample_video(frames: usize) -> EncodedVideo {
        let res = Resolution::new(48, 32);
        EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(8, 0),
            (0..frames).map(move |i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 7) % 200) as u8);
                    }
                }
                if i >= frames / 2 {
                    // A "scene change" halfway.
                    for y in 8..24usize {
                        for x in 8..40usize {
                            f.y_mut().put(x, y, 240);
                        }
                    }
                }
                f
            }),
        )
    }

    #[test]
    fn uniform_selector_picks_every_kth() {
        let v = sample_video(20);
        let mut sel = UniformSelector::new(5);
        assert_eq!(sel.select_indices(&v).unwrap(), vec![0, 5, 10, 15]);
        let picked = sel.select(&v).unwrap();
        assert_eq!(picked.len(), 4);
        assert!(sel.requires_full_decode());
    }

    #[test]
    fn mse_selector_finds_the_cut() {
        let v = sample_video(20);
        let mut sel = MseSelector::mse(Budget::Fraction(0.1));
        let indices = sel.select_indices(&v).unwrap();
        assert!(indices.contains(&0), "frame 0 always selected");
        assert!(
            indices.contains(&10),
            "the scene change at frame 10 must be selected: {indices:?}"
        );
    }

    #[test]
    fn mse_selector_rejects_bad_fraction() {
        let v = sample_video(8);
        let mut sel = MseSelector::mse(Budget::Fraction(0.0));
        assert!(matches!(sel.select(&v), Err(SieveError::Selector(_))));
    }

    #[test]
    fn threshold_budget_is_deployable() {
        let v = sample_video(20);
        // Calibrate on this video, then redeploy the absolute threshold.
        let frames = v.decode_all().unwrap();
        let scores = score_sequence(&mut MseDetector::new(), &frames);
        let t = calibrate_threshold(&scores, frames.len(), 0.1);
        let mut sel = MseSelector::mse(Budget::Threshold(t));
        let indices = sel.select_indices(&v).unwrap();
        assert_eq!(indices, select_frames(&scores, t));
    }

    #[test]
    fn adapters_run_through_generic_driver() {
        let v = sample_video(24);
        let labels = vec![sieve_datasets_label(); 24];
        let mut oracle = OracleDetector::new(labels);
        for mut sel in [
            selector_for(sieve_core::SelectorKind::IFrame, Budget::Fraction(0.2), 6),
            selector_for(sieve_core::SelectorKind::Uniform, Budget::Fraction(0.2), 6),
            selector_for(sieve_core::SelectorKind::Mse, Budget::Fraction(0.2), 6),
        ] {
            let result = analyze(&v, &mut sel, &mut oracle).expect("analysis");
            assert!(!result.selected.is_empty(), "{} selected none", sel.name());
            assert_eq!(result.predicted.len(), 24);
        }
    }

    fn sieve_datasets_label() -> sieve_datasets::LabelSet {
        sieve_datasets::LabelSet::empty()
    }
}
