//! [`FrameSelector`] adapters for the image-similarity baselines.
//!
//! These plug the NoScope-style filters into `sieve-core`'s streaming
//! selection layer. Each adapter is a session factory:
//!
//! * [`UniformSelector`] decides every frame from its index alone — its
//!   session never touches pixels, though the cost model still charges the
//!   full decode (P-frames chain, so *reaching* a sampled frame means
//!   decoding up to it);
//! * [`ChangeSelector`] (MSE, SIFT, any [`ChangeDetector`]) requests pixels
//!   per frame ([`Decision::NeedsDecode`]), scores against the previous
//!   frame — the only decoded state a session holds — and keeps frames
//!   whose change exceeds the budgeted threshold.
//!
//! Fraction budgets ([`Budget::Fraction`]) need the whole video's score
//! distribution; [`FrameSelector::prepare`] resolves them to an absolute
//! threshold in one streaming scoring pass (the paper's offline
//! calibration), after which sessions replay the resolved operating point
//! on-line. [`Budget::TargetRate`] is the *deployable* counterpart: an
//! [`AdaptiveChangeSession`] tracks the score distribution as it streams
//! (EWMA + P² quantile) and retargets its threshold continuously, so a
//! live edge hits a requested sampling rate with no offline pass at all.
//! The batched [`FrameSelector::calibrate`] /
//! [`FrameSelector::calibrate_fractions`] overrides score once and sweep
//! every requested operating point in memory — Fig 3's one-decode
//! calibration. Adding a baseline to the whole system is: implement the
//! session factory here and give it a [`SelectorCost`] shape.

use std::sync::Arc;

use sieve_core::{
    CalibrationCurve, CalibrationPoint, Decision, EncodedFrameMeta, FrameSelector, RateController,
    SelectorCost, SelectorSession, SieveError,
};
use sieve_video::{Decoder, EncodedVideo, Frame};

use crate::detector::{calibrate_threshold, select_frames, ChangeDetector, UniformSampler};
use crate::mse::MseDetector;
use crate::sift::SiftDetector;

/// How a threshold baseline picks its operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Budget {
    /// Use a fixed absolute change-score threshold (e.g. tuned offline on a
    /// training prefix, the paper's deployment setting). Streams fully
    /// on-line.
    Threshold(f64),
    /// Calibrate the threshold on this video so that approximately this
    /// fraction of frames is selected (the paper's matched-sampling
    /// comparison setting). Resolved by [`FrameSelector::prepare`].
    Fraction(f64),
    /// Continuously retarget the threshold *on-line* so the achieved
    /// sampling rate tracks this fraction, with no offline calibration pass
    /// at all: sessions maintain a streaming score distribution (EWMA + P²
    /// quantile, see [`sieve_core::RateController`]) and adapt as frames
    /// arrive — the budget shape a live edge that never sees the whole
    /// video can actually deploy. Sessions are [`AdaptiveChangeSession`]s.
    TargetRate(f64),
}

/// Uniform sampling as a frame selector: keep every `interval`-th frame.
#[derive(Debug, Clone, Copy)]
pub struct UniformSelector {
    sampler: UniformSampler,
}

impl UniformSelector {
    /// Selects every `interval`-th frame.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0`.
    pub fn new(interval: usize) -> Self {
        Self {
            sampler: UniformSampler::new(interval),
        }
    }

    /// Matches a target selection count for a known video length (the
    /// paper's budget-matched comparison).
    pub fn matching_count(total_frames: usize, count: usize) -> Self {
        Self {
            sampler: UniformSampler::matching_count(total_frames, count),
        }
    }

    /// The underlying sampler.
    pub fn sampler(&self) -> &UniformSampler {
        &self.sampler
    }
}

impl FrameSelector for UniformSelector {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn cost_model(&self) -> SelectorCost {
        // The *indices* need no pixels, but reaching a sampled frame in a
        // P-frame chain means full-decoding up to it.
        SelectorCost::full_stream_decode()
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        Box::new(UniformSession {
            interval: self.sampler.interval(),
        })
    }
}

/// The streaming side of [`UniformSelector`]: an index-only decision.
struct UniformSession {
    interval: usize,
}

impl SelectorSession for UniformSession {
    fn observe(
        &mut self,
        index: usize,
        _meta: &EncodedFrameMeta,
        _frame: Option<&Frame>,
    ) -> Decision {
        if index.is_multiple_of(self.interval) {
            Decision::Keep
        } else {
            Decision::Drop
        }
    }
}

/// A change-detector baseline (MSE, SIFT, or any [`ChangeDetector`]) as a
/// streaming frame selector: score each decoded frame against its
/// predecessor, keep frames whose change exceeds the budgeted threshold.
#[derive(Debug)]
pub struct ChangeSelector<D: ChangeDetector> {
    detector: D,
    budget: Budget,
    name: &'static str,
    resolved: Option<Resolved>,
}

/// The operating point [`FrameSelector::prepare`] resolved for one video:
/// an absolute threshold, plus the scoring pass that produced it (replayed
/// by sessions so the calibration decode is never repeated).
#[derive(Debug, Clone)]
struct Resolved {
    threshold: f64,
    scores: Option<Arc<Vec<f64>>>,
}

impl<D: ChangeDetector> ChangeSelector<D> {
    /// Wraps `detector` with a selection budget.
    pub fn new(detector: D, budget: Budget) -> Self {
        Self {
            detector,
            budget,
            name: "",
            resolved: None,
        }
    }

    fn with_name(mut self, name: &'static str) -> Self {
        self.name = name;
        self
    }

    /// The configured budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// One streaming scoring pass: decode each frame, score it against its
    /// predecessor, hold only that predecessor. `scores[i]` describes the
    /// pair `(i, i+1)`, matching [`crate::detector::score_sequence`].
    fn scores(&mut self, video: &EncodedVideo) -> Result<Vec<f64>, SieveError> {
        let mut decoder = Decoder::new(video.resolution(), video.quality());
        self.detector.reset();
        let mut prev: Option<Frame> = None;
        let mut scores = Vec::with_capacity(video.frame_count().saturating_sub(1));
        for ef in video.frames() {
            let frame = decoder.decode_frame(ef)?;
            if let Some(p) = &prev {
                scores.push(self.detector.change_score(p, &frame));
            }
            prev = Some(frame);
        }
        Ok(scores)
    }

    fn validate_fraction(f: f64) -> Result<(), SieveError> {
        if !(0.0..=1.0).contains(&f) || f == 0.0 {
            return Err(SieveError::selector(format!(
                "target fraction {f} outside (0, 1]"
            )));
        }
        Ok(())
    }
}

impl<D: ChangeDetector + Clone + Send + 'static> FrameSelector for ChangeSelector<D> {
    fn name(&self) -> &'static str {
        if self.name.is_empty() {
            self.detector.name()
        } else {
            self.name
        }
    }

    fn cost_model(&self) -> SelectorCost {
        SelectorCost::full_stream_decode().with_pairwise_compare()
    }

    fn target_rate(&self) -> Option<f64> {
        match self.budget {
            Budget::TargetRate(r) => Some(r),
            Budget::Threshold(_) | Budget::Fraction(_) => None,
        }
    }

    fn prepare(&mut self, video: &EncodedVideo) -> Result<(), SieveError> {
        self.resolved = match self.budget {
            Budget::Threshold(t) => Some(Resolved {
                threshold: t,
                scores: None,
            }),
            Budget::Fraction(f) => {
                Self::validate_fraction(f)?;
                let scores = self.scores(video)?;
                let threshold = calibrate_threshold(&scores, video.frame_count(), f);
                Some(Resolved {
                    threshold,
                    scores: Some(Arc::new(scores)),
                })
            }
            // On-line adaptation: nothing to resolve — sessions carry their
            // own streaming distribution. Validate the rate eagerly so batch
            // drivers fail before decoding anything.
            Budget::TargetRate(r) => {
                Self::validate_fraction(r)?;
                None
            }
        };
        Ok(())
    }

    fn session(&self) -> Box<dyn SelectorSession> {
        // On-line adaptation never depends on `prepare`: every session is a
        // fresh controller, so a fleet can open sessions for streams it
        // will never see in full.
        if let Budget::TargetRate(r) = self.budget {
            return match AdaptiveChangeSession::new(self.detector.clone(), r) {
                Ok(session) => Box::new(session),
                Err(e) => Box::new(UnresolvedSession {
                    reason: e.to_string(),
                }),
            };
        }
        match &self.resolved {
            // Calibrated on this video: replay the scoring pass, no decoded
            // state at all.
            Some(Resolved {
                threshold,
                scores: Some(scores),
            }) => Box::new(ReplaySession {
                threshold: *threshold,
                scores: scores.clone(),
            }),
            // Absolute threshold: fully on-line, previous frame as the only
            // state.
            Some(Resolved {
                threshold,
                scores: None,
            }) => Box::new(ChangeSession::new(self.detector.clone(), *threshold)),
            None => match self.budget {
                Budget::Threshold(t) => Box::new(ChangeSession::new(self.detector.clone(), t)),
                // A fraction budget streamed without `prepare` has no
                // operating point; the session surfaces that in `finish`.
                Budget::Fraction(_) => Box::new(UnresolvedSession {
                    reason: "fraction budget requires FrameSelector::prepare before streaming"
                        .to_string(),
                }),
                Budget::TargetRate(_) => {
                    unreachable!("TargetRate sessions are built before the resolved match")
                }
            },
        }
    }

    fn calibrate(
        &mut self,
        video: &EncodedVideo,
        thresholds: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        let scores = self.scores(video)?;
        Ok(CalibrationCurve {
            points: thresholds
                .iter()
                .map(|&t| CalibrationPoint {
                    target: t,
                    threshold: t,
                    selected: select_frames(&scores, t),
                })
                .collect(),
        })
    }

    fn calibrate_fractions(
        &mut self,
        video: &EncodedVideo,
        fractions: &[f64],
    ) -> Result<CalibrationCurve, SieveError> {
        let scores = self.scores(video)?;
        let n = video.frame_count();
        let points = fractions
            .iter()
            .map(|&f| {
                Self::validate_fraction(f)?;
                let threshold = calibrate_threshold(&scores, n, f);
                Ok(CalibrationPoint {
                    target: f,
                    threshold,
                    selected: select_frames(&scores, threshold),
                })
            })
            .collect::<Result<Vec<_>, SieveError>>()?;
        Ok(CalibrationCurve { points })
    }
}

/// The on-line streaming side of [`ChangeSelector`]: request pixels, score
/// against the previous frame (the only decoded frame a session ever
/// holds), keep on change above the threshold. The first observed frame is
/// always kept.
struct ChangeSession<D: ChangeDetector> {
    detector: D,
    threshold: f64,
    prev: Option<Frame>,
}

impl<D: ChangeDetector> ChangeSession<D> {
    fn new(mut detector: D, threshold: f64) -> Self {
        detector.reset();
        Self {
            detector,
            threshold,
            prev: None,
        }
    }
}

impl<D: ChangeDetector + Send> SelectorSession for ChangeSession<D> {
    fn observe(
        &mut self,
        _index: usize,
        _meta: &EncodedFrameMeta,
        frame: Option<&Frame>,
    ) -> Decision {
        let Some(frame) = frame else {
            return Decision::NeedsDecode;
        };
        let keep = match self.prev.take() {
            None => true,
            Some(p) => self.detector.change_score(&p, frame) > self.threshold,
        };
        self.prev = Some(frame.clone());
        if keep {
            Decision::Keep
        } else {
            Decision::Drop
        }
    }
}

/// Replays a calibration scoring pass as per-frame decisions: no pixels,
/// no decoded state. Used after [`FrameSelector::prepare`] resolved a
/// fraction budget on the same video.
struct ReplaySession {
    threshold: f64,
    scores: Arc<Vec<f64>>,
}

impl SelectorSession for ReplaySession {
    fn observe(
        &mut self,
        index: usize,
        _meta: &EncodedFrameMeta,
        _frame: Option<&Frame>,
    ) -> Decision {
        let keep = match index.checked_sub(1) {
            None => true, // frame 0 is always selected
            // Frames past the calibrated stream (driver/preparation
            // mismatch) are kept: shipping an extra frame is recoverable,
            // silently losing an event is not.
            Some(pair) => self.scores.get(pair).is_none_or(|&s| s > self.threshold),
        };
        if keep {
            Decision::Keep
        } else {
            Decision::Drop
        }
    }
}

/// The session behind an unusable budget (an unprepared fraction, an
/// invalid target rate): selects nothing and reports the reason at end of
/// stream.
struct UnresolvedSession {
    reason: String,
}

impl SelectorSession for UnresolvedSession {
    fn observe(
        &mut self,
        _index: usize,
        _meta: &EncodedFrameMeta,
        _frame: Option<&Frame>,
    ) -> Decision {
        Decision::Drop
    }

    fn finish(&mut self) -> Result<(), SieveError> {
        Err(SieveError::selector(self.reason.clone()))
    }
}

/// The on-line *adaptive* streaming session behind [`Budget::TargetRate`]:
/// scores each decoded frame against its predecessor (the only decoded
/// state held) and thresholds at a continuously retargeted operating point
/// — a [`RateController`] tracking the score distribution with an EWMA and
/// a P² streaming quantile so the achieved sampling rate converges to the
/// target with *no* offline `prepare` pass. The first observed frame is
/// always kept (and counted toward the achieved rate).
pub struct AdaptiveChangeSession<D: ChangeDetector> {
    detector: D,
    controller: RateController,
    prev: Option<Frame>,
}

impl<D: ChangeDetector> AdaptiveChangeSession<D> {
    /// A fresh session targeting `rate` (fraction of frames kept) in
    /// `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SieveError::Selector`] for a rate outside `(0, 1]`.
    pub fn new(mut detector: D, rate: f64) -> Result<Self, SieveError> {
        detector.reset();
        Ok(Self {
            detector,
            controller: RateController::new(rate)?,
            prev: None,
        })
    }

    /// The controller's requested sampling rate.
    pub fn target_rate(&self) -> f64 {
        self.controller.target()
    }

    /// Fraction of observed frames kept so far.
    pub fn achieved_rate(&self) -> f64 {
        self.controller.achieved_rate()
    }

    /// The threshold the next score will be compared against.
    pub fn threshold(&self) -> f64 {
        self.controller.threshold()
    }
}

impl<D: ChangeDetector + Send> SelectorSession for AdaptiveChangeSession<D> {
    fn observe(
        &mut self,
        _index: usize,
        _meta: &EncodedFrameMeta,
        frame: Option<&Frame>,
    ) -> Decision {
        let Some(frame) = frame else {
            return Decision::NeedsDecode;
        };
        let keep = match self.prev.take() {
            None => {
                self.controller.note_forced_keep();
                true
            }
            Some(p) => self
                .controller
                .observe(self.detector.change_score(&p, frame)),
        };
        self.prev = Some(frame.clone());
        if keep {
            Decision::Keep
        } else {
            Decision::Drop
        }
    }
}

/// MSE differencing as a frame selector.
pub type MseSelector = ChangeSelector<MseDetector>;

impl MseSelector {
    /// MSE with the given budget.
    pub fn mse(budget: Budget) -> Self {
        ChangeSelector::new(MseDetector::new(), budget).with_name("mse")
    }
}

/// SIFT matching as a frame selector.
pub type SiftSelector = ChangeSelector<SiftDetector>;

impl SiftSelector {
    /// SIFT with the given budget.
    pub fn sift(budget: Budget) -> Self {
        ChangeSelector::new(SiftDetector::new(), budget).with_name("sift")
    }
}

/// Builds the boxed selector for a simulated baseline's
/// [`sieve_core::SelectorKind`] — the runtime half of the baseline
/// registry. `budget` applies to threshold baselines; `uniform_interval`
/// to uniform sampling.
pub fn selector_for(
    kind: sieve_core::SelectorKind,
    budget: Budget,
    uniform_interval: usize,
) -> Box<dyn FrameSelector> {
    match kind {
        sieve_core::SelectorKind::IFrame => Box::new(sieve_core::IFrameSelector::new()),
        sieve_core::SelectorKind::Uniform => Box::new(UniformSelector::new(uniform_interval)),
        sieve_core::SelectorKind::Mse => Box::new(MseSelector::mse(budget)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::score_sequence;
    use sieve_core::analyze;
    use sieve_nn::OracleDetector;
    use sieve_video::{EncoderConfig, Resolution};

    fn sample_video(frames: usize) -> EncodedVideo {
        let res = Resolution::new(48, 32);
        EncodedVideo::encode(
            res,
            30,
            EncoderConfig::new(8, 0),
            (0..frames).map(move |i| {
                let mut f = Frame::grey(res);
                for y in 0..32usize {
                    for x in 0..48usize {
                        f.y_mut().put(x, y, ((x * 3 + y * 7) % 200) as u8);
                    }
                }
                if i >= frames / 2 {
                    // A "scene change" halfway.
                    for y in 8..24usize {
                        for x in 8..40usize {
                            f.y_mut().put(x, y, 240);
                        }
                    }
                }
                f
            }),
        )
    }

    #[test]
    fn uniform_selector_picks_every_kth() {
        let v = sample_video(20);
        let mut sel = UniformSelector::new(5);
        assert_eq!(sel.select_indices(&v).unwrap(), vec![0, 5, 10, 15]);
        let picked = sel.select(&v).unwrap();
        assert_eq!(picked.len(), 4);
        assert!(sel.requires_full_decode());
    }

    #[test]
    fn mse_selector_finds_the_cut() {
        let v = sample_video(20);
        let mut sel = MseSelector::mse(Budget::Fraction(0.1));
        let indices = sel.select_indices(&v).unwrap();
        assert!(indices.contains(&0), "frame 0 always selected");
        assert!(
            indices.contains(&10),
            "the scene change at frame 10 must be selected: {indices:?}"
        );
    }

    #[test]
    fn mse_selector_rejects_bad_fraction() {
        let v = sample_video(8);
        let mut sel = MseSelector::mse(Budget::Fraction(0.0));
        assert!(matches!(sel.select(&v), Err(SieveError::Selector(_))));
    }

    #[test]
    fn unprepared_fraction_session_errors_in_finish() {
        let sel = MseSelector::mse(Budget::Fraction(0.1));
        let mut session = sel.session();
        assert!(matches!(session.finish(), Err(SieveError::Selector(_))));
    }

    #[test]
    fn threshold_budget_is_deployable() {
        let v = sample_video(20);
        // Calibrate on this video, then redeploy the absolute threshold.
        let frames = v.decode_all().unwrap();
        let scores = score_sequence(&mut MseDetector::new(), &frames);
        let t = calibrate_threshold(&scores, frames.len(), 0.1);
        let mut sel = MseSelector::mse(Budget::Threshold(t));
        let indices = sel.select_indices(&v).unwrap();
        assert_eq!(indices, select_frames(&scores, t));
    }

    #[test]
    fn streaming_session_matches_batch_selection() {
        let v = sample_video(24);
        for budget in [Budget::Threshold(30.0), Budget::Fraction(0.25)] {
            let mut sel = MseSelector::mse(budget);
            let batch = sel.select_indices(&v).unwrap();
            // Drive a session by hand with a stateful decoder, as a live
            // edge would.
            sel.prepare(&v).unwrap();
            let mut session = sel.session();
            let mut decoder = Decoder::new(v.resolution(), v.quality());
            let mut kept = Vec::new();
            for (i, ef) in v.frames().iter().enumerate() {
                let meta = EncodedFrameMeta::of(ef);
                let frame = decoder.decode_frame(ef).unwrap();
                let decision = match session.observe(i, &meta, None) {
                    Decision::NeedsDecode => session.observe(i, &meta, Some(&frame)),
                    d => d,
                };
                if decision == Decision::Keep {
                    kept.push(i);
                }
            }
            session.finish().unwrap();
            assert_eq!(kept, batch, "session/batch divergence under {budget:?}");
        }
    }

    #[test]
    fn calibrate_sweeps_many_thresholds_in_one_pass() {
        let v = sample_video(20);
        let frames = v.decode_all().unwrap();
        let scores = score_sequence(&mut MseDetector::new(), &frames);
        let thresholds = [0.0, 10.0, 1e9];
        let curve = MseSelector::mse(Budget::Threshold(0.0))
            .calibrate(&v, &thresholds)
            .unwrap();
        assert_eq!(curve.points.len(), 3);
        for (p, &t) in curve.points.iter().zip(&thresholds) {
            assert_eq!(p.selected, select_frames(&scores, t));
        }
        // Everything passes a zero threshold... and a huge one keeps only
        // frame 0.
        assert_eq!(curve.points[2].selected, vec![0]);
    }

    #[test]
    fn calibrate_fractions_matches_fraction_budget() {
        let v = sample_video(20);
        let curve = MseSelector::mse(Budget::Threshold(0.0))
            .calibrate_fractions(&v, &[0.1, 0.5])
            .unwrap();
        for p in &curve.points {
            let mut sel = MseSelector::mse(Budget::Fraction(p.target));
            assert_eq!(sel.select_indices(&v).unwrap(), p.selected);
        }
    }

    #[test]
    fn target_rate_streams_without_prepare() {
        // The on-line budget needs no whole-video pass: a raw session
        // (opened without `prepare`, as a fleet does) tracks the target.
        let v = sample_video(60);
        let sel = MseSelector::mse(Budget::TargetRate(0.25));
        let mut session = sel.session();
        let mut decoder = Decoder::new(v.resolution(), v.quality());
        let mut kept = 0usize;
        for (i, ef) in v.frames().iter().enumerate() {
            let meta = EncodedFrameMeta::of(ef);
            let frame = decoder.decode_frame(ef).unwrap();
            let decision = match session.observe(i, &meta, None) {
                Decision::NeedsDecode => session.observe(i, &meta, Some(&frame)),
                d => d,
            };
            if decision == Decision::Keep {
                kept += 1;
            }
        }
        session.finish().expect("on-line budget finishes cleanly");
        assert!(kept > 0, "adaptive session kept nothing");
        assert!(kept < 60, "adaptive session kept everything");
    }

    #[test]
    fn target_rate_rejects_bad_rate() {
        let v = sample_video(8);
        let mut sel = MseSelector::mse(Budget::TargetRate(0.0));
        assert!(matches!(sel.select(&v), Err(SieveError::Selector(_))));
        // Even without prepare, a raw session surfaces the bad rate.
        let session_err = MseSelector::mse(Budget::TargetRate(1.5)).session().finish();
        assert!(matches!(session_err, Err(SieveError::Selector(_))));
    }

    #[test]
    fn adaptive_session_reports_rates() {
        let mut s = AdaptiveChangeSession::new(MseDetector::new(), 0.5).unwrap();
        assert!((s.target_rate() - 0.5).abs() < 1e-12);
        let res = Resolution::new(32, 32);
        let meta = EncodedFrameMeta {
            frame_type: sieve_video::FrameType::I,
            payload_len: 0,
        };
        // First frame: always kept.
        assert_eq!(s.observe(0, &meta, None), Decision::NeedsDecode);
        assert_eq!(s.observe(0, &meta, Some(&Frame::grey(res))), Decision::Keep);
        assert!((s.achieved_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_models_match_simulator_registry() {
        // The simulator's SelectorKind rows must name exactly the cost
        // models the real FrameSelector implementations own — the "one
        // cost source" invariant the core crate cannot test itself.
        for kind in [
            sieve_core::SelectorKind::IFrame,
            sieve_core::SelectorKind::Uniform,
            sieve_core::SelectorKind::Mse,
        ] {
            let sel = selector_for(kind, Budget::Fraction(0.1), 5);
            assert_eq!(sel.cost_model(), kind.cost_model(), "{kind:?}");
        }
    }

    #[test]
    fn adapters_run_through_generic_driver() {
        let v = sample_video(24);
        let labels = vec![sieve_datasets_label(); 24];
        let mut oracle = OracleDetector::new(labels);
        for mut sel in [
            selector_for(sieve_core::SelectorKind::IFrame, Budget::Fraction(0.2), 6),
            selector_for(sieve_core::SelectorKind::Uniform, Budget::Fraction(0.2), 6),
            selector_for(sieve_core::SelectorKind::Mse, Budget::Fraction(0.2), 6),
        ] {
            let result = analyze(&v, &mut sel, &mut oracle).expect("analysis");
            assert!(!result.selected.is_empty(), "{} selected none", sel.name());
            assert_eq!(result.predicted.len(), 24);
        }
    }

    fn sieve_datasets_label() -> sieve_datasets::LabelSet {
        sieve_datasets::LabelSet::empty()
    }
}
