//! Object classes and per-frame label sets.
//!
//! The paper's five datasets cover cars, buses, trucks, persons and boats.
//! A frame's ground truth is the *set* of classes visible in it; an **event**
//! is a maximal run of frames with the same label set (Section IV of the
//! paper defines events exactly this way).

use serde::{Deserialize, Serialize};

/// An object class that can appear in a scene.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjectClass {
    /// Passenger car.
    Car,
    /// Bus.
    Bus,
    /// Truck.
    Truck,
    /// Pedestrian.
    Person,
    /// Boat.
    Boat,
}

impl ObjectClass {
    /// All supported classes.
    pub const ALL: [ObjectClass; 5] = [
        ObjectClass::Car,
        ObjectClass::Bus,
        ObjectClass::Truck,
        ObjectClass::Person,
        ObjectClass::Boat,
    ];

    /// Stable bit index used by [`LabelSet`].
    pub fn bit(self) -> u8 {
        match self {
            ObjectClass::Car => 0,
            ObjectClass::Bus => 1,
            ObjectClass::Truck => 2,
            ObjectClass::Person => 3,
            ObjectClass::Boat => 4,
        }
    }

    /// Inverse of [`ObjectClass::bit`].
    pub fn from_bit(bit: u8) -> Option<ObjectClass> {
        Self::ALL.into_iter().find(|c| c.bit() == bit)
    }

    /// Typical width:height aspect ratio of the rendered sprite.
    pub fn aspect(self) -> f32 {
        match self {
            ObjectClass::Car => 1.8,
            ObjectClass::Bus => 2.8,
            ObjectClass::Truck => 2.4,
            ObjectClass::Person => 0.45,
            ObjectClass::Boat => 2.2,
        }
    }

    /// Relative size multiplier against the dataset's base object scale
    /// (buses are bigger than cars, people smaller, etc.).
    pub fn size_factor(self) -> f32 {
        match self {
            ObjectClass::Car => 1.2,
            ObjectClass::Bus => 1.6,
            ObjectClass::Truck => 1.4,
            ObjectClass::Person => 0.8,
            ObjectClass::Boat => 1.1,
        }
    }
}

impl std::fmt::Display for ObjectClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ObjectClass::Car => "car",
            ObjectClass::Bus => "bus",
            ObjectClass::Truck => "truck",
            ObjectClass::Person => "person",
            ObjectClass::Boat => "boat",
        };
        write!(f, "{s}")
    }
}

/// The set of object classes visible in a frame, stored as a 5-bit mask.
///
/// ```
/// use sieve_datasets::{LabelSet, ObjectClass};
/// let mut l = LabelSet::empty();
/// assert!(l.is_empty());
/// l.insert(ObjectClass::Car);
/// l.insert(ObjectClass::Person);
/// assert!(l.contains(ObjectClass::Car));
/// assert_eq!(l.to_string(), "car+person");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LabelSet(u8);

impl LabelSet {
    /// The empty set ("no label" in the paper's terms).
    pub fn empty() -> Self {
        Self(0)
    }

    /// A set with one class.
    pub fn single(class: ObjectClass) -> Self {
        Self(1 << class.bit())
    }

    /// Builds a set from classes.
    pub fn from_classes<I: IntoIterator<Item = ObjectClass>>(classes: I) -> Self {
        let mut s = Self::empty();
        for c in classes {
            s.insert(c);
        }
        s
    }

    /// True if no class is present.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Number of classes present.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Adds a class.
    pub fn insert(&mut self, class: ObjectClass) {
        self.0 |= 1 << class.bit();
    }

    /// Removes a class.
    pub fn remove(&mut self, class: ObjectClass) {
        self.0 &= !(1 << class.bit());
    }

    /// Membership test.
    pub fn contains(&self, class: ObjectClass) -> bool {
        self.0 & (1 << class.bit()) != 0
    }

    /// Iterator over the classes present, in bit order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectClass> + '_ {
        ObjectClass::ALL
            .into_iter()
            .filter(move |c| self.contains(*c))
    }

    /// The raw bitmask (stable encoding, useful as an NN class id).
    pub fn bits(&self) -> u8 {
        self.0
    }

    /// Rebuilds from a raw bitmask, ignoring unknown bits.
    pub fn from_bits(bits: u8) -> Self {
        Self(bits & 0b1_1111)
    }
}

impl std::fmt::Display for LabelSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "(none)");
        }
        let mut first = true;
        for c in self.iter() {
            if !first {
                write!(f, "+")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<ObjectClass> for LabelSet {
    fn from_iter<I: IntoIterator<Item = ObjectClass>>(iter: I) -> Self {
        Self::from_classes(iter)
    }
}

/// A maximal run of frames sharing one label set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Index of the first frame of the event.
    pub start: usize,
    /// Number of frames in the event.
    pub len: usize,
    /// The label set shared by every frame of the event.
    pub labels: LabelSet,
}

impl Event {
    /// Index one past the last frame of the event.
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Segments a per-frame label sequence into events (maximal constant runs).
///
/// ```
/// use sieve_datasets::{segment_events, LabelSet, ObjectClass};
/// let car = LabelSet::single(ObjectClass::Car);
/// let none = LabelSet::empty();
/// let frames = vec![none, none, car, car, car, none];
/// let events = segment_events(&frames);
/// assert_eq!(events.len(), 3);
/// assert_eq!(events[1].start, 2);
/// assert_eq!(events[1].len, 3);
/// ```
pub fn segment_events(labels: &[LabelSet]) -> Vec<Event> {
    let mut events = Vec::new();
    let mut i = 0;
    while i < labels.len() {
        let l = labels[i];
        let start = i;
        while i < labels.len() && labels[i] == l {
            i += 1;
        }
        events.push(Event {
            start,
            len: i - start,
            labels: l,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_all_classes() {
        for c in ObjectClass::ALL {
            assert_eq!(ObjectClass::from_bit(c.bit()), Some(c));
        }
        assert_eq!(ObjectClass::from_bit(7), None);
    }

    #[test]
    fn labelset_insert_remove() {
        let mut l = LabelSet::empty();
        l.insert(ObjectClass::Boat);
        l.insert(ObjectClass::Car);
        assert_eq!(l.len(), 2);
        l.remove(ObjectClass::Boat);
        assert!(!l.contains(ObjectClass::Boat));
        assert!(l.contains(ObjectClass::Car));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn labelset_bits_roundtrip() {
        let l = LabelSet::from_classes([ObjectClass::Bus, ObjectClass::Person]);
        assert_eq!(LabelSet::from_bits(l.bits()), l);
        // Unknown bits are masked off.
        assert_eq!(LabelSet::from_bits(0xFF).len(), 5);
    }

    #[test]
    fn labelset_display() {
        assert_eq!(LabelSet::empty().to_string(), "(none)");
        let l = LabelSet::from_classes([ObjectClass::Car, ObjectClass::Truck]);
        assert_eq!(l.to_string(), "car+truck");
    }

    #[test]
    fn empty_sequence_has_no_events() {
        assert!(segment_events(&[]).is_empty());
    }

    #[test]
    fn single_run_is_one_event() {
        let car = LabelSet::single(ObjectClass::Car);
        let ev = segment_events(&[car; 5]);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].start, 0);
        assert_eq!(ev[0].len, 5);
        assert_eq!(ev[0].end(), 5);
    }

    #[test]
    fn events_partition_the_sequence() {
        let a = LabelSet::empty();
        let b = LabelSet::single(ObjectClass::Person);
        let seq = vec![a, b, b, a, a, b];
        let events = segment_events(&seq);
        let total: usize = events.iter().map(|e| e.len).sum();
        assert_eq!(total, seq.len());
        // Adjacent events always differ in labels.
        for w in events.windows(2) {
            assert_ne!(w[0].labels, w[1].labels);
        }
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn from_iterator() {
        let l: LabelSet = [ObjectClass::Car, ObjectClass::Car, ObjectClass::Boat]
            .into_iter()
            .collect();
        assert_eq!(l.len(), 2);
    }
}
