//! Object arrival schedules.
//!
//! A schedule is a list of object *instances* — class, spawn/despawn frame,
//! trajectory — drawn from a seeded renewal process: exponential gaps between
//! arrivals and exponential dwell times, clamped to minimums so every event
//! is long enough to be detectable at the dataset frame rate. Instances
//! appear fully visible and disappear instantly, matching the paper's notion
//! of an event boundary ("a new object entered the scene").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::labels::{LabelSet, ObjectClass};

/// One object's lifetime and trajectory within a video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectInstance {
    /// Class rendered and labelled.
    pub class: ObjectClass,
    /// First frame in which the object is visible.
    pub spawn: usize,
    /// First frame in which the object is gone (exclusive end).
    pub despawn: usize,
    /// Centre x position at spawn, in pixels.
    pub x0: f32,
    /// Centre y position at spawn, in pixels.
    pub y0: f32,
    /// Horizontal velocity in pixels/frame.
    pub vx: f32,
    /// Vertical velocity in pixels/frame.
    pub vy: f32,
    /// Sprite width in pixels.
    pub width: f32,
    /// Sprite height in pixels.
    pub height: f32,
    /// Per-instance texture seed so two cars do not look identical.
    pub texture_seed: u64,
    /// Approach/departure duration in frames: the object fades in over the
    /// `ramp` frames before `spawn` and fades out over the `ramp` frames
    /// from `despawn`, modelling an object arriving from the distance
    /// rather than materializing. Ground truth flips at `spawn`/`despawn`
    /// (where the object reaches/leaves full detectability), so the
    /// sharpest visual change coincides exactly with the event boundary.
    pub ramp: usize,
}

impl ObjectInstance {
    /// True if the object is visible in `frame`.
    pub fn visible_at(&self, frame: usize) -> bool {
        frame >= self.spawn && frame < self.despawn
    }

    /// Centre position at `frame` (no bounds clamping).
    pub fn position_at(&self, frame: usize) -> (f32, f32) {
        let dt = frame.saturating_sub(self.spawn) as f32;
        (self.x0 + self.vx * dt, self.y0 + self.vy * dt)
    }

    /// Rendering presence at `frame`: `0.0` when the object leaves no
    /// pixels, `1.0` while it is fully present (and labelled), and a value
    /// in `(0, 1)` during the approach/departure ramps around its labelled
    /// lifetime. The renderer maps ramp values to a reduced sprite
    /// contrast, so the jump to full contrast lands exactly on the label
    /// flip at `spawn` (and the drop at `despawn`).
    pub fn presence(&self, frame: usize) -> f32 {
        if self.visible_at(frame) {
            return 1.0;
        }
        if self.ramp == 0 {
            return 0.0;
        }
        let span = (self.ramp + 1) as f32;
        if frame < self.spawn {
            let d = self.spawn - frame;
            if d <= self.ramp {
                return (self.ramp + 1 - d) as f32 / span;
            }
        } else if frame >= self.despawn {
            let d = frame - self.despawn;
            if d < self.ramp {
                return (self.ramp - d) as f32 / span;
            }
        }
        0.0
    }

    /// True if the object leaves any pixels in `frame` (labelled lifetime
    /// plus the approach/departure ramps).
    pub fn renderable_at(&self, frame: usize) -> bool {
        self.presence(frame) > 0.0
    }
}

/// Parameters of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleParams {
    /// Video length in frames.
    pub duration_frames: usize,
    /// Mean gap between consecutive arrivals, in frames.
    pub mean_gap: f64,
    /// Mean time an object stays, in frames.
    pub mean_dwell: f64,
    /// Minimum gap/dwell (keeps events detectable).
    pub min_span: usize,
    /// Maximum number of simultaneously visible objects.
    pub max_concurrent: usize,
}

impl ScheduleParams {
    /// Sensible defaults for a `duration_frames`-long clip at 30 fps: an
    /// arrival roughly every 10 s dwelling ~5 s.
    pub fn with_duration(duration_frames: usize) -> Self {
        Self {
            duration_frames,
            mean_gap: 300.0,
            mean_dwell: 150.0,
            min_span: 20,
            max_concurrent: 2,
        }
    }
}

/// A complete arrival schedule plus derived per-frame ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    params: ScheduleParams,
    instances: Vec<ObjectInstance>,
}

impl Schedule {
    /// Draws a schedule for `classes` within a `width`x`height` scene.
    ///
    /// `base_height` is the nominal object height in pixels (the dataset's
    /// object scale times the frame height); each class modulates it by its
    /// [`ObjectClass::size_factor`].
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or `params.duration_frames == 0`.
    pub fn generate(
        params: ScheduleParams,
        classes: &[ObjectClass],
        width: u32,
        height: u32,
        base_height: f32,
        seed: u64,
    ) -> Self {
        assert!(!classes.is_empty(), "at least one object class required");
        assert!(params.duration_frames > 0, "schedule needs frames");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut instances: Vec<ObjectInstance> = Vec::new();
        let mut t = exp_sample(&mut rng, params.mean_gap).max(params.min_span as f64) as usize;
        while t < params.duration_frames {
            let concurrent = instances.iter().filter(|o| o.visible_at(t)).count();
            if concurrent < params.max_concurrent {
                let class = classes[rng.gen_range(0..classes.len())];
                let dwell =
                    exp_sample(&mut rng, params.mean_dwell).max(params.min_span as f64) as usize;
                let despawn = (t + dwell).min(params.duration_frames);
                let h = (base_height * class.size_factor()).max(4.0);
                let w = (h * class.aspect()).max(4.0);
                // Keep the object inside the picture for its whole lifetime:
                // pick a start and a velocity such that the end position is
                // still inside the margins.
                let margin_x = w / 2.0 + 2.0;
                let margin_y = h / 2.0 + 2.0;
                let x_span = (width as f32 - 2.0 * margin_x).max(1.0);
                let y_span = (height as f32 - 2.0 * margin_y).max(1.0);
                let x0 = margin_x + rng.gen::<f32>() * x_span;
                let y0 = margin_y + rng.gen::<f32>() * y_span;
                let life = (despawn - t).max(1) as f32;
                let vmax_x = (x_span * 0.8) / life;
                let vmax_y = (y_span * 0.3) / life;
                let vx = (rng.gen::<f32>() * 2.0 - 1.0) * vmax_x.min(2.0);
                let vy = (rng.gen::<f32>() * 2.0 - 1.0) * vmax_y.min(0.8);
                // Clamp the start so the end point stays inside.
                let xe = x0 + vx * life;
                let x0 = if xe < margin_x {
                    x0 + (margin_x - xe)
                } else if xe > width as f32 - margin_x {
                    x0 - (xe - (width as f32 - margin_x))
                } else {
                    x0
                };
                let ye = y0 + vy * life;
                let y0 = if ye < margin_y {
                    y0 + (margin_y - ye)
                } else if ye > height as f32 - margin_y {
                    y0 - (ye - (height as f32 - margin_y))
                } else {
                    y0
                };
                instances.push(ObjectInstance {
                    class,
                    spawn: t,
                    despawn,
                    x0,
                    y0,
                    vx,
                    vy,
                    width: w,
                    height: h,
                    texture_seed: rng.gen(),
                    ramp: params.min_span.min(12),
                });
            }
            let gap = exp_sample(&mut rng, params.mean_gap).max(params.min_span as f64) as usize;
            t += gap.max(1);
        }
        Self { params, instances }
    }

    /// The arrival parameters this schedule was drawn with.
    pub fn params(&self) -> &ScheduleParams {
        &self.params
    }

    /// All object instances, ordered by spawn frame.
    pub fn instances(&self) -> &[ObjectInstance] {
        &self.instances
    }

    /// Instances visible in `frame`.
    pub fn visible_at(&self, frame: usize) -> impl Iterator<Item = &ObjectInstance> {
        self.instances.iter().filter(move |o| o.visible_at(frame))
    }

    /// Instances leaving pixels in `frame` — the labelled set plus objects
    /// mid-approach or mid-departure (see [`ObjectInstance::presence`]).
    pub fn renderable_at(&self, frame: usize) -> impl Iterator<Item = &ObjectInstance> {
        self.instances
            .iter()
            .filter(move |o| o.renderable_at(frame))
    }

    /// Per-frame ground-truth label sets for the whole clip.
    pub fn frame_labels(&self) -> Vec<LabelSet> {
        let mut labels = vec![LabelSet::empty(); self.params.duration_frames];
        for inst in &self.instances {
            for l in labels
                .iter_mut()
                .take(inst.despawn.min(self.params.duration_frames))
                .skip(inst.spawn)
            {
                l.insert(inst.class);
            }
        }
        labels
    }
}

/// Exponential sample with the given mean.
fn exp_sample(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::segment_events;

    fn params(frames: usize) -> ScheduleParams {
        ScheduleParams {
            duration_frames: frames,
            mean_gap: 60.0,
            mean_dwell: 40.0,
            min_span: 10,
            max_concurrent: 2,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Schedule::generate(params(2000), &[ObjectClass::Car], 320, 200, 32.0, 7);
        let b = Schedule::generate(params(2000), &[ObjectClass::Car], 320, 200, 32.0, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Schedule::generate(params(2000), &[ObjectClass::Car], 320, 200, 32.0, 7);
        let b = Schedule::generate(params(2000), &[ObjectClass::Car], 320, 200, 32.0, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn instances_stay_in_bounds() {
        let s = Schedule::generate(
            params(3000),
            &[ObjectClass::Car, ObjectClass::Bus],
            320,
            200,
            30.0,
            42,
        );
        assert!(!s.instances().is_empty());
        for inst in s.instances() {
            for f in [inst.spawn, inst.despawn - 1] {
                let (x, y) = inst.position_at(f);
                assert!((0.0..=320.0).contains(&x), "x out of bounds: {x}");
                assert!((0.0..=200.0).contains(&y), "y out of bounds: {y}");
            }
        }
    }

    #[test]
    fn concurrency_cap_respected() {
        let mut p = params(3000);
        p.max_concurrent = 1;
        p.mean_gap = 20.0;
        p.mean_dwell = 200.0;
        let s = Schedule::generate(p, &[ObjectClass::Person], 320, 200, 20.0, 3);
        for f in 0..3000 {
            assert!(s.visible_at(f).count() <= 1, "frame {f} over cap");
        }
    }

    #[test]
    fn labels_match_instances() {
        let s = Schedule::generate(params(2000), &[ObjectClass::Boat], 320, 200, 24.0, 9);
        let labels = s.frame_labels();
        assert_eq!(labels.len(), 2000);
        for (f, l) in labels.iter().enumerate() {
            let expect: LabelSet = s.visible_at(f).map(|o| o.class).collect();
            assert_eq!(*l, expect, "frame {f}");
        }
    }

    #[test]
    fn produces_multiple_events() {
        let s = Schedule::generate(params(6000), &[ObjectClass::Car], 320, 200, 30.0, 11);
        let events = segment_events(&s.frame_labels());
        assert!(
            events.len() >= 5,
            "expected a handful of events in 6000 frames, got {}",
            events.len()
        );
    }

    #[test]
    fn min_span_enforced_on_dwell() {
        let s = Schedule::generate(params(5000), &[ObjectClass::Car], 320, 200, 30.0, 5);
        for inst in s.instances() {
            let life = inst.despawn - inst.spawn;
            // Instances truncated by the end of the video may be shorter.
            if inst.despawn < 5000 {
                assert!(life >= 10, "dwell {life} below min_span");
            }
        }
    }
}
