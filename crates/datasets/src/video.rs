//! A complete synthetic video: schedule + renderer + ground truth.

use serde::{Deserialize, Serialize};
use sieve_video::{Frame, Resolution};

use crate::labels::{segment_events, Event, LabelSet, ObjectClass};
use crate::scene::{Renderer, SceneConfig};
use crate::schedule::{Schedule, ScheduleParams};

/// Full description of a synthetic camera feed, sufficient to regenerate
/// every frame and its ground truth deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Scene rendering parameters.
    pub scene: SceneConfig,
    /// Object arrival process.
    pub schedule: ScheduleParams,
    /// Classes that can appear.
    pub classes: Vec<ObjectClass>,
    /// Nominal object height as a fraction of the frame height (the paper's
    /// "close-up vs far" distinction that drives per-camera tuning).
    pub object_scale: f32,
}

/// A generated synthetic video with on-demand frame rendering.
///
/// ```
/// use sieve_datasets::{SyntheticVideo, VideoConfig, SceneConfig, ObjectClass};
/// use sieve_datasets::schedule::ScheduleParams;
/// use sieve_video::Resolution;
///
/// let cfg = VideoConfig {
///     scene: SceneConfig::calm(Resolution::new(96, 64), 1),
///     schedule: ScheduleParams::with_duration(120),
///     classes: vec![ObjectClass::Car],
///     object_scale: 0.25,
/// };
/// let video = SyntheticVideo::generate(cfg);
/// assert_eq!(video.frame_count(), 120);
/// let f = video.frame(0);
/// assert_eq!(f.resolution(), Resolution::new(96, 64));
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticVideo {
    config: VideoConfig,
    renderer: Renderer,
    schedule: Schedule,
    labels: Vec<LabelSet>,
}

impl SyntheticVideo {
    /// Generates the schedule and background for `config`.
    pub fn generate(config: VideoConfig) -> Self {
        let base_height = config.object_scale * config.scene.resolution.height() as f32;
        let schedule = Schedule::generate(
            config.schedule,
            &config.classes,
            config.scene.resolution.width(),
            config.scene.resolution.height(),
            base_height,
            config.scene.seed ^ 0x5C4E_D01E,
        );
        let labels = schedule.frame_labels();
        let renderer = Renderer::new(config.scene.clone());
        Self {
            config,
            renderer,
            schedule,
            labels,
        }
    }

    /// The configuration this video was generated from.
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// Resolution shortcut.
    pub fn resolution(&self) -> Resolution {
        self.config.scene.resolution
    }

    /// Frames per second shortcut.
    pub fn fps(&self) -> u32 {
        self.config.scene.fps
    }

    /// Number of frames.
    pub fn frame_count(&self) -> usize {
        self.config.schedule.duration_frames
    }

    /// The arrival schedule (object instances).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Renders frame `index` (deterministic, random access).
    ///
    /// # Panics
    ///
    /// Panics if `index >= frame_count()`.
    pub fn frame(&self, index: usize) -> Frame {
        assert!(index < self.frame_count(), "frame index out of range");
        let visible: Vec<_> = self.schedule.renderable_at(index).collect();
        self.renderer.render(index, &visible)
    }

    /// Iterator over all frames in display order.
    pub fn frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (0..self.frame_count()).map(move |i| self.frame(i))
    }

    /// Ground-truth label set per frame.
    pub fn labels(&self) -> &[LabelSet] {
        &self.labels
    }

    /// Ground-truth events (maximal constant-label runs).
    pub fn events(&self) -> Vec<Event> {
        segment_events(&self.labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_video(seed: u64) -> SyntheticVideo {
        let mut scene = SceneConfig::calm(Resolution::new(96, 64), seed);
        scene.noise_sigma = 1.0;
        let cfg = VideoConfig {
            scene,
            schedule: ScheduleParams {
                duration_frames: 300,
                mean_gap: 60.0,
                mean_dwell: 50.0,
                min_span: 15,
                max_concurrent: 1,
            },
            classes: vec![ObjectClass::Car],
            object_scale: 0.25,
        };
        SyntheticVideo::generate(cfg)
    }

    #[test]
    fn frame_count_and_labels_align() {
        let v = small_video(3);
        assert_eq!(v.labels().len(), v.frame_count());
        assert_eq!(v.frames().count(), v.frame_count());
    }

    #[test]
    fn deterministic_regeneration() {
        let a = small_video(3);
        let b = small_video(3);
        assert_eq!(a.frame(37), b.frame(37));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn events_cover_video() {
        let v = small_video(4);
        let events = v.events();
        let total: usize = events.iter().map(|e| e.len).sum();
        assert_eq!(total, v.frame_count());
        assert!(!events.is_empty());
    }

    #[test]
    fn labelled_frames_contain_object_pixels() {
        let v = small_video(5);
        // Find a frame with a car and compare against the label-free render.
        let Some(idx) = v.labels().iter().position(|l| !l.is_empty()) else {
            panic!("expected at least one event in 300 frames");
        };
        let with = v.frame(idx);
        // Render same frame without objects via a fresh renderer.
        let empty = Renderer::new(v.config().scene.clone()).render(idx, &[]);
        assert_ne!(with, empty);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn frame_out_of_range_panics() {
        let v = small_video(6);
        let _ = v.frame(10_000);
    }
}
