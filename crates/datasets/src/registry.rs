//! The dataset registry: synthetic analogues of the paper's Table I.
//!
//! | Paper dataset  | Objects            | Resolution | Labels | Our analogue |
//! |----------------|--------------------|------------|--------|--------------|
//! | Jackson square | car, bus, truck    | 600x400    | yes    | close-up vehicles, calm background |
//! | Coral reef     | person             | 1280x720   | yes    | small figures, rippling water background |
//! | Venice         | boat               | 1920x1080  | yes    | small boats shot from far, strong ripple |
//! | Taipei         | car, person        | 1920x1080  | no     | mixed traffic, flicker (used unlabelled) |
//! | Amsterdam      | car, person        | 1280x720   | no     | road intersection (used unlabelled) |
//!
//! The paper records 8 h per labelled dataset (4 h train + 4 h eval) at
//! 30 fps. Rendering hours of full-HD video is pointless on a laptop-scale
//! reproduction, so each dataset supports three [`DatasetScale`]s; the
//! *relative* structure (events per minute, object scale, dynamics) is
//! preserved and frame counts are always reported next to results.

use serde::{Deserialize, Serialize};
use sieve_video::Resolution;

use crate::labels::ObjectClass;
use crate::scene::SceneConfig;
use crate::schedule::ScheduleParams;
use crate::video::{SyntheticVideo, VideoConfig};

/// How large a rendition of a dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetScale {
    /// A few hundred frames at reduced resolution — unit/integration tests.
    Tiny,
    /// A couple of thousand frames at reduced resolution — quick harness
    /// runs.
    Small,
    /// Tens of thousands of frames at the paper's resolution — bench runs.
    Full,
}

impl DatasetScale {
    /// Duration in frames at this scale.
    pub fn duration_frames(&self) -> usize {
        match self {
            DatasetScale::Tiny => 600,
            DatasetScale::Small => 3_000,
            DatasetScale::Full => 27_000, // 15 minutes at 30 fps
        }
    }

    /// Resolution divisor applied to the paper resolution (tiny/small scale
    /// down to keep codec work tractable in debug builds).
    fn shrink(&self, paper: Resolution) -> Resolution {
        let div = match self {
            DatasetScale::Tiny => 5,
            DatasetScale::Small => 4,
            DatasetScale::Full => 2,
        };
        // Round to multiples of 16 for clean macroblock tiling.
        let w = ((paper.width() / div / 16).max(4)) * 16;
        let h = ((paper.height() / div / 16).max(3)) * 16;
        Resolution::new(w, h)
    }
}

/// Identifier of one of the five paper datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetId {
    /// "Jackson town square" — vehicles, close-up, labelled.
    JacksonSquare,
    /// "Coral reef" — people in an aquarium, labelled.
    CoralReef,
    /// "Venice" — boats in the lagoon, labelled.
    Venice,
    /// "Taipei" — vehicles and people, unlabelled.
    Taipei,
    /// "Amsterdam" — road intersection, unlabelled.
    Amsterdam,
}

impl DatasetId {
    /// All five datasets in Table I order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::JacksonSquare,
        DatasetId::CoralReef,
        DatasetId::Venice,
        DatasetId::Taipei,
        DatasetId::Amsterdam,
    ];

    /// The three datasets with ground-truth labels.
    pub const LABELLED: [DatasetId; 3] = [
        DatasetId::JacksonSquare,
        DatasetId::CoralReef,
        DatasetId::Venice,
    ];
}

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DatasetId::JacksonSquare => "Jackson square",
            DatasetId::CoralReef => "Coral reef",
            DatasetId::Venice => "Venice",
            DatasetId::Taipei => "Taipei",
            DatasetId::Amsterdam => "Amsterdam",
        };
        write!(f, "{s}")
    }
}

/// Static description of a dataset (the row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub id: DatasetId,
    /// Object classes that appear.
    pub classes: Vec<ObjectClass>,
    /// The resolution quoted in the paper.
    pub paper_resolution: Resolution,
    /// Frames per second.
    pub fps: u32,
    /// Whether ground-truth labels are available (Table I "labels?" column).
    pub has_labels: bool,
    /// Nominal object height as a fraction of frame height.
    pub object_scale: f32,
    /// Background ripple amplitude in pixels (water/foliage).
    pub ripple_amplitude: f32,
    /// Camera jitter amplitude in pixels at the paper resolution.
    pub jitter_amplitude: f32,
    /// Sensor noise sigma.
    pub noise_sigma: f32,
    /// Global flicker amplitude.
    pub flicker_amplitude: f32,
    /// Mean arrival gap in seconds.
    pub mean_gap_secs: f64,
    /// Mean dwell in seconds.
    pub mean_dwell_secs: f64,
    /// Maximum simultaneously visible objects.
    pub max_concurrent: usize,
    /// Human description (Table I's description column). Not serialized:
    /// it is static prose recoverable from [`DatasetSpec::of`].
    #[serde(skip)]
    pub description: &'static str,
    /// Deterministic seed for this dataset.
    pub seed: u64,
}

/// Derives one stream's RNG seed from a fleet-wide seed and the stream's
/// id (SplitMix64-style finalizer over the pair). Multi-stream runs seed
/// every synthetic stream through this, so the rendered frames depend only
/// on `(fleet_seed, stream_id)` — never on worker scheduling, join order
/// or shard count — and any stream of a fleet run can be regenerated in
/// isolation.
pub fn stream_seed(fleet_seed: u64, stream_id: u64) -> u64 {
    let mut z = fleet_seed
        .rotate_left(17)
        .wrapping_add(stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DatasetSpec {
    /// The spec of dataset `id`, reseeded for stream `stream_id` of a
    /// fleet run: same event statistics and dynamics as
    /// [`DatasetSpec::of`], but an independent, reproducible realisation
    /// per `(fleet_seed, stream_id)` pair — see [`stream_seed`].
    pub fn for_stream(id: DatasetId, fleet_seed: u64, stream_id: u64) -> Self {
        let mut spec = Self::of(id);
        spec.seed = stream_seed(fleet_seed ^ spec.seed, stream_id);
        spec
    }

    /// The spec of dataset `id`.
    pub fn of(id: DatasetId) -> Self {
        match id {
            DatasetId::JacksonSquare => Self {
                id,
                classes: vec![ObjectClass::Car, ObjectClass::Bus, ObjectClass::Truck],
                paper_resolution: Resolution::new(600, 400),
                fps: 30,
                has_labels: true,
                object_scale: 0.30,
                ripple_amplitude: 0.0,
                jitter_amplitude: 6.0,
                noise_sigma: 1.5,
                flicker_amplitude: 1.0,
                mean_gap_secs: 9.0,
                mean_dwell_secs: 5.0,
                max_concurrent: 2,
                description: "vehicles going back and forth in a public square",
                seed: 0x1ACC_5045,
            },
            DatasetId::CoralReef => Self {
                id,
                classes: vec![ObjectClass::Person],
                paper_resolution: Resolution::new(1280, 720),
                fps: 30,
                has_labels: true,
                object_scale: 0.40,
                ripple_amplitude: 3.0,
                jitter_amplitude: 2.0,
                noise_sigma: 1.2,
                flicker_amplitude: 1.5,
                mean_gap_secs: 6.0,
                mean_dwell_secs: 4.0,
                max_concurrent: 2,
                description: "people watching coral reefs in an aquarium",
                seed: 0xC0AA_15EE,
            },
            DatasetId::Venice => Self {
                id,
                classes: vec![ObjectClass::Boat],
                paper_resolution: Resolution::new(1920, 1080),
                fps: 30,
                has_labels: true,
                object_scale: 0.14,
                ripple_amplitude: 10.0,
                jitter_amplitude: 4.0,
                noise_sigma: 1.2,
                flicker_amplitude: 1.0,
                mean_gap_secs: 14.0,
                mean_dwell_secs: 8.0,
                max_concurrent: 2,
                description: "boats moving in the lagoon",
                seed: 0x7E41_CEAA,
            },
            DatasetId::Taipei => Self {
                id,
                classes: vec![ObjectClass::Car, ObjectClass::Person],
                paper_resolution: Resolution::new(1920, 1080),
                fps: 30,
                has_labels: false,
                object_scale: 0.18,
                ripple_amplitude: 0.3,
                jitter_amplitude: 5.0,
                noise_sigma: 2.0,
                flicker_amplitude: 2.0,
                mean_gap_secs: 5.0,
                mean_dwell_secs: 4.0,
                max_concurrent: 3,
                description: "vehicles and people in a public square in Taipei",
                seed: 0x7A1B_E100,
            },
            DatasetId::Amsterdam => Self {
                id,
                classes: vec![ObjectClass::Car, ObjectClass::Person],
                paper_resolution: Resolution::new(1280, 720),
                fps: 30,
                has_labels: false,
                object_scale: 0.16,
                ripple_amplitude: 0.2,
                jitter_amplitude: 4.0,
                noise_sigma: 1.5,
                flicker_amplitude: 1.5,
                mean_gap_secs: 6.0,
                mean_dwell_secs: 5.0,
                max_concurrent: 3,
                description: "road intersections in Amsterdam",
                seed: 0xA857_E9DA,
            },
        }
    }

    /// All five specs in Table I order.
    pub fn all() -> Vec<DatasetSpec> {
        DatasetId::ALL.into_iter().map(Self::of).collect()
    }

    /// The resolution used at `scale`.
    pub fn resolution_at(&self, scale: DatasetScale) -> Resolution {
        scale.shrink(self.paper_resolution)
    }

    /// Builds the full video configuration at `scale`.
    pub fn video_config(&self, scale: DatasetScale) -> VideoConfig {
        let resolution = self.resolution_at(scale);
        // Object and ripple sizes follow the resolution shrink so the scene
        // keeps its proportions.
        let scene = SceneConfig {
            resolution,
            fps: self.fps,
            noise_sigma: self.noise_sigma,
            ripple_amplitude: self.ripple_amplitude * resolution.height() as f32
                / self.paper_resolution.height() as f32
                * 1.5,
            ripple_wavelength: (resolution.height() as f32).max(48.0),
            flicker_amplitude: self.flicker_amplitude,
            flicker_period: self.fps as f32 * 8.0,
            jitter_amplitude: self.jitter_amplitude * resolution.height() as f32
                / self.paper_resolution.height() as f32
                * 1.5,
            seed: self.seed,
        };
        // Tiny/Small renditions compress inter-event time so short clips
        // still contain a useful number of events; event *structure* (the
        // ratio of dwell to gap, object sizes, dynamics) is preserved.
        let compress = match scale {
            DatasetScale::Tiny => 4.0,
            DatasetScale::Small => 2.0,
            DatasetScale::Full => 1.0,
        };
        let schedule = ScheduleParams {
            duration_frames: scale.duration_frames(),
            mean_gap: self.mean_gap_secs * self.fps as f64 / compress,
            mean_dwell: self.mean_dwell_secs * self.fps as f64 / compress,
            min_span: self.fps as usize / 2,
            max_concurrent: self.max_concurrent,
        };
        VideoConfig {
            scene,
            schedule,
            classes: self.classes.clone(),
            object_scale: self.object_scale,
        }
    }

    /// Generates the synthetic video at `scale`.
    pub fn generate(&self, scale: DatasetScale) -> SyntheticVideo {
        SyntheticVideo::generate(self.video_config(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_datasets_match_table_i() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 5);
        assert_eq!(
            all.iter().filter(|s| s.has_labels).count(),
            3,
            "three labelled datasets per Table I"
        );
        let jackson = &all[0];
        assert_eq!(jackson.paper_resolution, Resolution::new(600, 400));
        assert_eq!(jackson.classes.len(), 3);
        let venice = &all[2];
        assert_eq!(venice.classes, vec![ObjectClass::Boat]);
        assert_eq!(venice.paper_resolution, Resolution::new(1920, 1080));
    }

    #[test]
    fn scales_shrink_resolution() {
        let spec = DatasetSpec::of(DatasetId::Venice);
        let tiny = spec.resolution_at(DatasetScale::Tiny);
        let full = spec.resolution_at(DatasetScale::Full);
        assert!(tiny.width() < full.width());
        assert_eq!(tiny.width() % 16, 0);
        assert_eq!(full.height() % 16, 0);
    }

    #[test]
    fn object_scales_reflect_camera_distance() {
        // Jackson is close-up (big vehicles), Venice far (small boats).
        let jackson = DatasetSpec::of(DatasetId::JacksonSquare);
        let venice = DatasetSpec::of(DatasetId::Venice);
        assert!(jackson.object_scale > 2.0 * venice.object_scale);
    }

    #[test]
    fn tiny_generation_has_events() {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let v = spec.generate(DatasetScale::Tiny);
        assert_eq!(v.frame_count(), DatasetScale::Tiny.duration_frames());
        let events = v.events();
        assert!(
            events.len() >= 2,
            "tiny dataset should still contain events, got {}",
            events.len()
        );
    }

    #[test]
    fn stream_seeds_are_deterministic_and_spread() {
        assert_eq!(stream_seed(1, 2), stream_seed(1, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(1, 3));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 2));
        assert_ne!(stream_seed(1, 2), stream_seed(2, 1), "pair order matters");
        // Sequential stream ids must not collapse to nearby seeds.
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(9, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "no collisions across a 64-stream fleet");
    }

    #[test]
    fn for_stream_varies_realisation_not_structure() {
        let base = DatasetSpec::of(DatasetId::CoralReef);
        let s0 = DatasetSpec::for_stream(DatasetId::CoralReef, 11, 0);
        let s1 = DatasetSpec::for_stream(DatasetId::CoralReef, 11, 1);
        assert_ne!(s0.seed, s1.seed);
        assert_ne!(s0.seed, base.seed);
        // Everything but the seed is the Table I row.
        assert_eq!(s0.classes, base.classes);
        assert_eq!(s0.paper_resolution, base.paper_resolution);
        assert_eq!(s0.mean_gap_secs, base.mean_gap_secs);
        // Different realisations render different frames...
        let v0 = s0.generate(DatasetScale::Tiny);
        let v1 = s1.generate(DatasetScale::Tiny);
        assert_ne!(v0.frame(0), v1.frame(0));
        // ...and regeneration is exact.
        let again =
            DatasetSpec::for_stream(DatasetId::CoralReef, 11, 0).generate(DatasetScale::Tiny);
        assert_eq!(v0.frame(33), again.frame(33));
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetId::JacksonSquare.to_string(), "Jackson square");
        assert_eq!(DatasetId::CoralReef.to_string(), "Coral reef");
    }
}
