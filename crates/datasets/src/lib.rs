//! # sieve-datasets — synthetic surveillance datasets with ground truth
//!
//! Deterministic stand-ins for the five video datasets of the SiEVE paper's
//! Table I. Real streams are unavailable offline, and the evaluation only
//! depends on event structure (when objects enter/leave), object scale
//! (close-up vs far view) and background dynamics (water ripple, flicker,
//! noise) — all of which the generator controls directly. See `DESIGN.md`
//! for the substitution argument.
//!
//! ```
//! use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
//!
//! let spec = DatasetSpec::of(DatasetId::JacksonSquare);
//! let video = spec.generate(DatasetScale::Tiny);
//! assert_eq!(video.labels().len(), video.frame_count());
//! let events = video.events();
//! assert!(!events.is_empty());
//! ```

pub mod labels;
pub mod registry;
pub mod scene;
pub mod schedule;
pub mod video;

pub use labels::{segment_events, Event, LabelSet, ObjectClass};
pub use registry::{stream_seed, DatasetId, DatasetScale, DatasetSpec};
pub use scene::{Background, Renderer, SceneConfig};
pub use schedule::{ObjectInstance, Schedule, ScheduleParams};
pub use video::{SyntheticVideo, VideoConfig};
