//! Deterministic scene rendering: background, dynamics, object sprites.
//!
//! Every pixel of every frame is a pure function of `(dataset seed, frame
//! index, x, y)`, so frames can be generated on demand in any order without
//! storing raw video. The renderer models the phenomena that differentiate
//! the paper's detectors:
//!
//! * **textured static background** — gives the encoder a non-trivial intra
//!   cost and the baselines a meaningful signal floor;
//! * **ripple** — a coherent, locally-translational displacement of the
//!   background (water, foliage). Motion estimation compensates it; plain
//!   pixel differencing (MSE) does not, which is exactly why the paper finds
//!   scenecut-based detection more robust;
//! * **flicker** — slow global luma oscillation (exposure/lighting);
//! * **sensor noise** — per-frame i.i.d. noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sieve_video::{Frame, Plane, Resolution};

use crate::labels::ObjectClass;
use crate::schedule::ObjectInstance;

/// Everything needed to render a synthetic camera feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Frame resolution.
    pub resolution: Resolution,
    /// Frames per second (metadata only; dynamics are per-frame).
    pub fps: u32,
    /// Standard deviation of per-frame sensor noise, in luma levels.
    pub noise_sigma: f32,
    /// Peak background displacement in pixels (water/foliage movement).
    pub ripple_amplitude: f32,
    /// Spatial wavelength of the ripple in pixels.
    pub ripple_wavelength: f32,
    /// Peak global luma offset of the flicker.
    pub flicker_amplitude: f32,
    /// Flicker period in frames.
    pub flicker_period: f32,
    /// Peak camera jitter in pixels: a slow global translation of the whole
    /// scene (wind on the camera mount). Motion estimation compensates it;
    /// pixel differencing does not — the classic failure mode of MSE-style
    /// filters on outdoor feeds.
    pub jitter_amplitude: f32,
    /// Seed for the background texture and noise streams.
    pub seed: u64,
}

impl SceneConfig {
    /// A quiet indoor-ish scene with mild noise and no ripple.
    pub fn calm(resolution: Resolution, seed: u64) -> Self {
        Self {
            resolution,
            fps: 30,
            noise_sigma: 1.5,
            ripple_amplitude: 0.0,
            ripple_wavelength: 64.0,
            flicker_amplitude: 0.0,
            flicker_period: 240.0,
            jitter_amplitude: 0.0,
            seed,
        }
    }
}

/// 64-bit mix hash (splitmix64 finalizer); the basis of all per-pixel
/// pseudo-randomness.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from three coordinates and a seed.
fn hash_unit(seed: u64, a: u64, b: u64, c: u64) -> f32 {
    let h = mix(seed ^ mix(a).wrapping_mul(3) ^ mix(b).wrapping_mul(5) ^ mix(c).wrapping_mul(7));
    (h >> 40) as f32 / (1u64 << 24) as f32
}

/// Approximately Gaussian noise (sum of two uniforms, triangular) with the
/// requested sigma.
fn noise_sample(seed: u64, x: u64, y: u64, frame: u64, sigma: f32) -> f32 {
    if sigma <= 0.0 {
        return 0.0;
    }
    let u1 = hash_unit(seed, x, y, frame.wrapping_mul(2));
    let u2 = hash_unit(seed, x, y, frame.wrapping_mul(2) + 1);
    // Triangular distribution with variance 1/6 per uniform pair.
    (u1 + u2 - 1.0) * sigma * 2.449 // sqrt(6)
}

/// The static background: value-noise texture plus gentle gradients, in all
/// three planes.
#[derive(Debug, Clone, PartialEq)]
pub struct Background {
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Background {
    /// Generates the background for a scene.
    pub fn generate(cfg: &SceneConfig) -> Self {
        let w = cfg.resolution.width() as usize;
        let h = cfg.resolution.height() as usize;
        let cell = 16usize;
        let lat_w = w / cell + 2;
        let lat_h = h / cell + 2;
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBAC4_6E55);
        let lattice: Vec<f32> = (0..lat_w * lat_h).map(|_| rng.gen::<f32>()).collect();
        let sample_lattice = |lx: usize, ly: usize| -> f32 {
            lattice[(ly.min(lat_h - 1)) * lat_w + lx.min(lat_w - 1)]
        };
        let mut y = vec![0u8; w * h];
        for py in 0..h {
            for px in 0..w {
                let fx = px as f32 / cell as f32;
                let fy = py as f32 / cell as f32;
                let (ix, iy) = (fx as usize, fy as usize);
                let (tx, ty) = (fx - ix as f32, fy - iy as f32);
                // Smoothstep-interpolated lattice noise.
                let sx = tx * tx * (3.0 - 2.0 * tx);
                let sy = ty * ty * (3.0 - 2.0 * ty);
                let n00 = sample_lattice(ix, iy);
                let n10 = sample_lattice(ix + 1, iy);
                let n01 = sample_lattice(ix, iy + 1);
                let n11 = sample_lattice(ix + 1, iy + 1);
                let smooth = n00 * (1.0 - sx) * (1.0 - sy)
                    + n10 * sx * (1.0 - sy)
                    + n01 * (1.0 - sx) * sy
                    + n11 * sx * sy;
                let fine = hash_unit(cfg.seed, px as u64, py as u64, 0) - 0.5;
                let grad = 20.0 * (py as f32 / h as f32);
                let val = 96.0 + 56.0 * smooth + 18.0 * fine + grad;
                y[py * w + px] = val.clamp(0.0, 255.0) as u8;
            }
        }
        // Structural edges: building silhouettes and curb lines. Real
        // surveillance backgrounds are full of sharp static edges; under
        // camera jitter they translate rigidly — integer motion search
        // compensates them for free — but they decorrelate pixel
        // differencing, producing MSE spikes on the order of an object
        // entering the scene. Without them the background is so smooth that
        // jitter is invisible to MSE, which no real feed is.
        let bar_count = 8 + (rng.gen::<u64>() % 5) as usize;
        for _ in 0..bar_count {
            let offset = (rng.gen::<f32>() - 0.5) * 90.0;
            if rng.gen::<f32>() < 0.6 {
                // Vertical silhouette.
                let bw = (3 + rng.gen::<u64>() % 12) as usize;
                let x0 = (rng.gen::<f32>() * w.saturating_sub(bw) as f32) as usize;
                for py in 0..h {
                    for px in x0..(x0 + bw).min(w) {
                        let cur = y[py * w + px] as f32;
                        y[py * w + px] = (cur + offset).clamp(16.0, 240.0) as u8;
                    }
                }
            } else {
                // Horizontal curb / ledge line.
                let bh = (2 + rng.gen::<u64>() % 6) as usize;
                let y0 = (rng.gen::<f32>() * h.saturating_sub(bh) as f32) as usize;
                for py in y0..(y0 + bh).min(h) {
                    for px in 0..w {
                        let cur = y[py * w + px] as f32;
                        y[py * w + px] = (cur + offset).clamp(16.0, 240.0) as u8;
                    }
                }
            }
        }
        let (cw, ch) = (w / 2, h / 2);
        let mut u = vec![0u8; cw * ch];
        let mut v = vec![0u8; cw * ch];
        for py in 0..ch {
            for px in 0..cw {
                let su = hash_unit(cfg.seed ^ 1, (px / 8) as u64, (py / 8) as u64, 0) - 0.5;
                let sv = hash_unit(cfg.seed ^ 2, (px / 8) as u64, (py / 8) as u64, 0) - 0.5;
                u[py * cw + px] = (124.0 + su * 10.0) as u8;
                v[py * cw + px] = (126.0 + sv * 10.0) as u8;
            }
        }
        Self {
            y: Plane::from_data(w, h, y),
            u: Plane::from_data(cw, ch, u),
            v: Plane::from_data(cw, ch, v),
        }
    }
}

/// Renders frames of a configured scene with a set of object instances.
#[derive(Debug, Clone)]
pub struct Renderer {
    cfg: SceneConfig,
    background: Background,
}

impl Renderer {
    /// Builds a renderer (generates the background once).
    pub fn new(cfg: SceneConfig) -> Self {
        let background = Background::generate(&cfg);
        Self { cfg, background }
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.cfg
    }

    /// Camera jitter displacement at frame `index`, in whole pixels: a sum
    /// of incommensurate sinusoids (smooth, bounded, deterministic).
    pub fn jitter_at(&self, index: usize) -> (i64, i64) {
        if self.cfg.jitter_amplitude <= 0.0 {
            return (0, 0);
        }
        let a = self.cfg.jitter_amplitude;
        let t = index as f32;
        let p1 = hash_unit(self.cfg.seed ^ 0x7177E4, 1, 0, 0) * std::f32::consts::TAU;
        let p2 = hash_unit(self.cfg.seed ^ 0x7177E4, 2, 0, 0) * std::f32::consts::TAU;
        let jx = a * ((0.23 * t + p1).sin() + 0.5 * (0.041 * t + p2).sin());
        let jy = 0.6 * a * ((0.19 * t + p2).sin() + 0.5 * (0.057 * t + p1).sin());
        // Quantize to even pixel counts: the encoder's scenecut lookahead
        // runs at half resolution with integer motion search, so odd shifts
        // would alias into half-pixel displacements it cannot compensate.
        // Real encoders use sub-pel motion search instead; quantizing the
        // jitter models the same compensability without implementing it.
        (2 * (jx / 2.0).round() as i64, 2 * (jy / 2.0).round() as i64)
    }

    /// Renders frame `index` with the given visible objects.
    pub fn render(&self, index: usize, objects: &[&ObjectInstance]) -> Frame {
        let res = self.cfg.resolution;
        let w = res.width() as usize;
        let h = res.height() as usize;
        let mut frame = Frame::grey(res);
        let t = index as f32;
        let (jx, jy) = self.jitter_at(index);
        let flicker = if self.cfg.flicker_amplitude > 0.0 {
            self.cfg.flicker_amplitude
                * (2.0 * std::f32::consts::PI * t / self.cfg.flicker_period).sin()
        } else {
            0.0
        };
        // Background with ripple displacement, flicker and sensor noise.
        let ripple_on = self.cfg.ripple_amplitude > 0.0;
        for py in 0..h {
            let dx = if ripple_on {
                self.cfg.ripple_amplitude
                    * (2.0
                        * std::f32::consts::PI
                        * (py as f32 / self.cfg.ripple_wavelength + t * 0.05))
                        .sin()
            } else {
                0.0
            };
            let dxi = dx.round() as i64;
            for px in 0..w {
                let base = self
                    .background
                    .y
                    .sample_clamped(px as i64 - dxi - jx, py as i64 - jy)
                    as f32;
                let n = noise_sample(
                    self.cfg.seed,
                    px as u64,
                    py as u64,
                    index as u64,
                    self.cfg.noise_sigma,
                );
                frame
                    .y_mut()
                    .put(px, py, (base + flicker + n).clamp(0.0, 255.0) as u8);
            }
        }
        let (cw, ch) = (w / 2, h / 2);
        for py in 0..ch {
            for px in 0..cw {
                let u = self
                    .background
                    .u
                    .sample_clamped(px as i64 - jx / 2, py as i64 - jy / 2);
                let v = self
                    .background
                    .v
                    .sample_clamped(px as i64 - jx / 2, py as i64 - jy / 2);
                frame.u_mut().put(px, py, u);
                frame.v_mut().put(px, py, v);
            }
        }
        // Objects on top (they ride the same camera, so they jitter too).
        for obj in objects {
            self.draw_object(&mut frame, index, obj, jx, jy);
        }
        frame
    }

    fn draw_object(&self, frame: &mut Frame, index: usize, obj: &ObjectInstance, jx: i64, jy: i64) {
        // Approach/departure contrast: during the ramp around the labelled
        // lifetime the sprite is alpha-blended at reduced contrast (an
        // object arriving from the distance / receding into it), then
        // snaps to full contrast exactly at the label flip. The graded part
        // keeps per-frame change below scenecut sensitivity; the snap is
        // what a tuned scenecut threshold detects — and being a fraction of
        // the full sprite contrast, it is quadratically attenuated for MSE
        // differencing, which is why pixel filters under-perform here just
        // as they do on real footage.
        const APPROACH_ALPHA: f32 = 0.35;
        let presence = obj.presence(index);
        if presence <= 0.0 {
            return;
        }
        let alpha = if presence >= 1.0 {
            1.0
        } else {
            APPROACH_ALPHA * presence
        };
        let (cx, cy) = obj.position_at(index);
        // Quantize the rendered position to even pixels so the sprite
        // translates rigidly frame to frame and stays integer-aligned in
        // the encoder's half-resolution lookahead. Sub-pixel (or odd-pixel)
        // positions would make the texture shimmer as it resamples —
        // residual energy an integer motion search cannot compensate —
        // whereas real video pipelines handle sub-pel motion with sub-pel
        // search. Same modelling argument as the even-pixel quantization in
        // [`Renderer::jitter_at`].
        let quant_even = |v: f32| 2.0 * (v / 2.0).round();
        let (cx, cy) = (quant_even(cx + jx as f32), quant_even(cy + jy as f32));
        let hw = obj.width / 2.0;
        let hh = obj.height / 2.0;
        let x_min = (cx - hw).floor().max(0.0) as usize;
        let x_max = ((cx + hw).ceil() as usize).min(frame.resolution().width() as usize);
        let y_min = (cy - hh).floor().max(0.0) as usize;
        let y_max = ((cy + hh).ceil() as usize).min(frame.resolution().height() as usize);
        let (body, stripe, u_c, v_c) = class_palette(obj.class, obj.texture_seed);
        let elliptical = matches!(obj.class, ObjectClass::Person | ObjectClass::Boat);
        for py in y_min..y_max {
            for px in x_min..x_max {
                // Object-local coordinates (move rigidly with the object).
                let lx = px as f32 - (cx - hw);
                let ly = py as f32 - (cy - hh);
                if elliptical {
                    let nx = (lx - hw) / hw;
                    let ny = (ly - hh) / hh;
                    if nx * nx + ny * ny > 1.0 {
                        continue;
                    }
                }
                // Rigid texture: stripes plus hash detail in local coords.
                let stripe_on = ((lx / 4.0) as i64 + (ly / 6.0) as i64) % 2 == 0;
                let detail = hash_unit(obj.texture_seed, lx as u64, ly as u64, 0) * 24.0 - 12.0;
                let val = if stripe_on { stripe } else { body } as f32 + detail;
                let cur = frame.y().sample(px, py) as f32;
                let blended = cur + (val - cur) * alpha;
                frame.y_mut().put(px, py, blended.clamp(0.0, 255.0) as u8);
                let cur_u = frame.u().sample(px / 2, py / 2) as f32;
                let cur_v = frame.v().sample(px / 2, py / 2) as f32;
                frame
                    .u_mut()
                    .put(px / 2, py / 2, (cur_u + (u_c as f32 - cur_u) * alpha) as u8);
                frame
                    .v_mut()
                    .put(px / 2, py / 2, (cur_v + (v_c as f32 - cur_v) * alpha) as u8);
            }
        }
    }
}

/// Class-specific sprite palette: body luma, stripe luma, chroma U/V.
fn class_palette(class: ObjectClass, texture_seed: u64) -> (u8, u8, u8, u8) {
    let jitter = (mix(texture_seed) % 33) as i16 - 16;
    let adj = |v: i16| (v + jitter).clamp(0, 255) as u8;
    match class {
        ObjectClass::Car => (adj(210), adj(180), 100, 160),
        ObjectClass::Bus => (adj(190), adj(230), 90, 120),
        ObjectClass::Truck => (adj(70), adj(110), 140, 110),
        // Body and stripe lumas are kept on the same side of the background
        // mean (~130) so sprites stay visible after box downsampling (a
        // half-tone pattern would average back into the background).
        ObjectClass::Person => (adj(50), adj(95), 120, 145),
        ObjectClass::Boat => (adj(235), adj(190), 160, 100),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> SceneConfig {
        SceneConfig {
            resolution: Resolution::new(96, 64),
            fps: 30,
            noise_sigma: 1.5,
            ripple_amplitude: 1.5,
            ripple_wavelength: 32.0,
            flicker_amplitude: 2.0,
            flicker_period: 120.0,
            jitter_amplitude: 1.0,
            seed,
        }
    }

    fn instance() -> ObjectInstance {
        ObjectInstance {
            class: ObjectClass::Car,
            spawn: 10,
            despawn: 50,
            x0: 48.0,
            y0: 32.0,
            vx: 0.5,
            vy: 0.0,
            width: 24.0,
            height: 12.0,
            texture_seed: 99,
            ramp: 0,
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = Renderer::new(cfg(5));
        let inst = instance();
        let a = r.render(12, &[&inst]);
        let b = r.render(12, &[&inst]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_frames_differ_by_noise() {
        let r = Renderer::new(cfg(5));
        let a = r.render(0, &[]);
        let b = r.render(1, &[]);
        assert_ne!(a, b);
        // But only mildly: mean abs diff should be around noise level.
        let mad: f64 = a
            .y()
            .data()
            .iter()
            .zip(b.y().data())
            .map(|(&x, &y)| (x as f64 - y as f64).abs())
            .sum::<f64>()
            / a.y().data().len() as f64;
        assert!(mad < 8.0, "noise too strong: {mad}");
    }

    #[test]
    fn object_changes_pixels_substantially() {
        let r = Renderer::new(cfg(5));
        let inst = instance();
        let empty = r.render(12, &[]);
        let with_obj = r.render(12, &[&inst]);
        let changed = empty
            .y()
            .data()
            .iter()
            .zip(with_obj.y().data())
            .filter(|(&a, &b)| (a as i32 - b as i32).abs() > 20)
            .count();
        let area = (inst.width * inst.height) as usize;
        assert!(
            changed > area / 3,
            "object should visibly change ~its area: changed {changed}, area {area}"
        );
    }

    #[test]
    fn object_texture_moves_rigidly() {
        // The same object at two times must have identical local texture:
        // sample the centre pixel value at both times.
        let mut c = cfg(5);
        c.noise_sigma = 0.0;
        c.ripple_amplitude = 0.0;
        c.flicker_amplitude = 0.0;
        let r = Renderer::new(c);
        let mut inst = instance();
        inst.vx = 1.0;
        let f0 = r.render(10, &[&inst]);
        let f1 = r.render(14, &[&inst]);
        // Centre at t=10 is (48,32); at t=14 it is (52,32).
        assert_eq!(
            f0.y().sample(48, 32),
            f1.y().sample(52, 32),
            "texture must translate with the object"
        );
    }

    #[test]
    fn background_deterministic_per_seed() {
        let a = Background::generate(&cfg(1));
        let b = Background::generate(&cfg(1));
        let c = Background::generate(&cfg(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ripple_displaces_background() {
        let mut base = cfg(5);
        base.noise_sigma = 0.0;
        base.flicker_amplitude = 0.0;
        base.ripple_amplitude = 3.0;
        let r = Renderer::new(base);
        let a = r.render(0, &[]);
        let b = r.render(10, &[]);
        assert_ne!(a, b, "ripple must move the background over time");
    }

    #[test]
    fn classes_have_distinct_palettes() {
        let mut seen = std::collections::HashSet::new();
        for c in ObjectClass::ALL {
            let (body, stripe, u, v) = class_palette(c, 0);
            seen.insert((body, stripe, u, v));
        }
        assert_eq!(seen.len(), ObjectClass::ALL.len());
    }
}
