//! The lint rules and the workspace driver.
//!
//! Five token-level rules, each scoped to the paths where its invariant is
//! load-bearing (scopes are listed in the rule table below and in the
//! README). Test code (`tests/` directories and `#[cfg(test)]` items) and
//! `shims/` are exempt everywhere; individual sites are waived with
//! `// lint:allow(rule): reason` and whole files with
//! `// lint:allow-file(rule): reason` — a missing reason is itself a lint
//! error.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Scanned};

/// One rule violation (or malformed marker) at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (or `lint-marker` for malformed markers).
    pub rule: &'static str,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// How a rule recognises a violation in cleaned source text.
enum Matcher {
    /// `.name(` — a method call on some receiver (whitespace-tolerant).
    MethodCall(&'static [&'static str]),
    /// A literal path/identifier substring with identifier boundaries.
    Tokens(&'static [&'static str]),
}

struct Rule {
    name: &'static str,
    message: &'static str,
    matcher: Matcher,
    in_scope: fn(&str) -> bool,
}

/// The runtime crates whose synchronization must go through a facade —
/// `sieve_simnet::sync`, or `sieve_stats::sync` for the observability
/// plane, which sits below simnet in the dependency graph and carries its
/// own. Each facade's std backend file is waived with `lint:allow-file`.
fn runtime_crate(path: &str) -> bool {
    path.starts_with("crates/simnet/src/")
        || path.starts_with("crates/fleet/src/")
        || path.starts_with("crates/core/src/")
        || path.starts_with("crates/stats/src/")
        || path.starts_with("crates/net/src/")
}

const RULES: &[Rule] = &[
    Rule {
        // Hot paths of the concurrent runtime: the shard queue, the fleet
        // scheduler, and the two files of sieve-core they drive per frame.
        name: "no-unwrap",
        message: "panic in a runtime hot path — return a typed error \
                  (SieveError/FleetError) or justify with lint:allow",
        matcher: Matcher::MethodCall(&["unwrap", "expect"]),
        in_scope: |p| {
            p.starts_with("crates/simnet/src/")
                || p.starts_with("crates/fleet/src/")
                || p.starts_with("crates/stats/src/")
                || p.starts_with("crates/net/src/")
                || p == "crates/core/src/adapt.rs"
                || p == "crates/core/src/live.rs"
        },
    },
    Rule {
        name: "no-std-sync",
        message: "raw std/parking_lot synchronization bypasses the \
                  sieve_simnet::sync facade (and the model checker with it)",
        matcher: Matcher::Tokens(&[
            "std::sync::Mutex",
            "std::sync::RwLock",
            "std::sync::Condvar",
            "std::sync::atomic",
            "parking_lot",
        ]),
        in_scope: runtime_crate,
    },
    Rule {
        name: "no-wall-clock",
        message: "wall clock in a simulator path — simulations must run on \
                  virtual SimTime to stay deterministic (sieve-stats may \
                  only read time at its cfg-gated collector epoch)",
        matcher: Matcher::Tokens(&["Instant::now", "SystemTime"]),
        in_scope: |p| {
            p.starts_with("crates/simnet/src/")
                || p.starts_with("crates/stats/src/")
                || p.starts_with("crates/net/src/")
        },
    },
    Rule {
        // The codec crate sits below the fleet pool facade, so its one
        // scoped-thread site (GOP-parallel encode) carries a justified
        // allow; anything new must too.
        name: "no-raw-spawn",
        message: "raw thread spawn bypasses the sieve_simnet::sync::thread \
                  facade — workers must be schedulable by the model checker",
        matcher: Matcher::Tokens(&["std::thread::spawn", "std::thread::scope"]),
        in_scope: |p| runtime_crate(p) || p.starts_with("crates/video/src/"),
    },
    Rule {
        // SIMD intrinsics are quarantined in the kernels module (which
        // carries a file-wide allow); the rest of the pixel-processing
        // crates stay safe Rust.
        name: "no-unsafe",
        message: "unsafe outside sieve_video::kernels — keep intrinsics \
                  behind the dispatcher and everything else in safe Rust",
        matcher: Matcher::Tokens(&["unsafe"]),
        in_scope: |p| p.starts_with("crates/video/src/") || p.starts_with("crates/filters/src/"),
    },
];

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of whole-token occurrences of `needle` in `text`.
fn token_occurrences(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(p) = text[from..].find(needle) {
        let at = from + p;
        let before_ok = !text[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !text[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + needle.len();
    }
    out
}

/// Occurrences of `.name(` method calls (whitespace-tolerant around the
/// dot and the open paren).
fn method_call_occurrences(text: &str, name: &str) -> Vec<usize> {
    token_occurrences(text, name)
        .into_iter()
        .filter(|&at| {
            let before = text[..at].trim_end();
            let after = text[at + name.len()..].trim_start();
            before.ends_with('.') && after.starts_with('(')
        })
        .collect()
}

/// Runs every in-scope rule over one scanned file.
fn check_file(path: &str, scanned: &Scanned) -> Vec<Finding> {
    let mut findings: Vec<Finding> = scanned
        .marker_errors
        .iter()
        .map(|(line, msg)| Finding {
            path: path.to_string(),
            line: *line,
            rule: "lint-marker",
            message: msg.clone(),
        })
        .collect();
    for rule in RULES {
        if !(rule.in_scope)(path) {
            continue;
        }
        let offsets: Vec<usize> = match &rule.matcher {
            Matcher::MethodCall(names) => names
                .iter()
                .flat_map(|n| method_call_occurrences(&scanned.cleaned, n))
                .collect(),
            Matcher::Tokens(tokens) => tokens
                .iter()
                .flat_map(|t| token_occurrences(&scanned.cleaned, t))
                .collect(),
        };
        for off in offsets {
            let line = lexer::line_of(&scanned.cleaned, off);
            if scanned.in_test_code(line) || scanned.is_allowed(rule.name, line) {
                continue;
            }
            findings.push(Finding {
                path: path.to_string(),
                line,
                rule: rule.name,
                message: rule.message.to_string(),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Recursively collects `.rs` files under `dir`, skipping `target/`,
/// `shims/` and integration-test `tests/` directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "shims" | "tests" | ".git") {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root`; returns every finding.
pub fn run(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    for top in ["crates", "src", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    let mut findings = Vec::new();
    for file in files {
        let Ok(source) = fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let scanned = lexer::scan(&source);
        findings.extend(check_file(&rel, &scanned));
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(path: &str, src: &str) -> Vec<Finding> {
        check_file(path, &lexer::scan(src))
    }

    #[test]
    fn flags_unwrap_in_runtime_path() {
        let f = check(
            "crates/fleet/src/scheduler.rs",
            "fn f() { q.pop().unwrap(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unwrap");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn expect_flagged_whitespace_tolerant() {
        let f = check(
            "crates/simnet/src/shard.rs",
            "fn f() { q.pop()\n    .expect (\"boom\"); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let f = check(
            "crates/fleet/src/scheduler.rs",
            "fn f() { q.pop().unwrap_or(0); x.unwrap_or_else(|| 1); }\n",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_paths_are_ignored() {
        let f = check("crates/video/src/lib.rs", "fn f() { x.unwrap(); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let f = check("crates/fleet/src/scheduler.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_marker_waives_next_line_only() {
        let src = "\
fn f() {
    // lint:allow(no-unwrap): join propagates a worker panic by contract
    h.join().expect(\"worker\");
    g.join().expect(\"worker\");
}
";
        let f = check("crates/fleet/src/scheduler.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "// lint:allow(no-unwrap)\nfn f() {}\n";
        let f = check("crates/fleet/src/scheduler.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lint-marker");
    }

    #[test]
    fn std_sync_and_parking_lot_flagged_outside_facade() {
        let src = "use std::sync::Mutex;\nuse parking_lot::RwLock;\n";
        let f = check("crates/core/src/live.rs", src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "no-std-sync"));
    }

    #[test]
    fn arc_is_not_std_sync_violation() {
        let f = check("crates/core/src/live.rs", "use std::sync::Arc;\n");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn new_scheduler_files_are_in_no_std_sync_scope() {
        // The work-stealing scheduler's satellite modules must stay on
        // the sieve_simnet::sync facade, or the model checker silently
        // loses sight of their locks.
        for path in [
            "crates/fleet/src/scheduler.rs",
            "crates/fleet/src/priority.rs",
            "crates/fleet/src/pool.rs",
            "crates/fleet/src/metrics.rs",
        ] {
            let f = check(path, "use std::sync::Mutex;\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-std-sync", "{path}");
        }
    }

    #[test]
    fn stats_plane_files_are_in_every_runtime_scope() {
        // The observability plane is wired into per-frame hot paths: its
        // sources must stay on its own sync facade, panic-free, and (the
        // collector epoch aside) wall-clock-free, or instrumented code
        // silently drops out of the model checker and the sim guarantees.
        for path in [
            "crates/stats/src/counter.rs",
            "crates/stats/src/histogram.rs",
            "crates/stats/src/registry.rs",
            "crates/stats/src/collector.rs",
        ] {
            let f = check(path, "use std::sync::Mutex;\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-std-sync", "{path}");
            let f = check(path, "fn f() { x.unwrap(); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-unwrap", "{path}");
            let f = check(path, "fn f() { Instant::now(); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-wall-clock", "{path}");
            let f = check(path, "fn f() { std::thread::spawn(|| {}); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-raw-spawn", "{path}");
        }
    }

    #[test]
    fn net_transport_files_are_in_every_runtime_scope() {
        // The WAN transport runs inside the fleet's keep path and marches
        // on virtual SimTime: its sources must stay panic-free, on the
        // sync facade, and off the wall clock, or the channel model stops
        // being deterministic and the model checker loses its locks.
        for path in [
            "crates/net/src/fec.rs",
            "crates/net/src/packet.rs",
            "crates/net/src/channel.rs",
            "crates/net/src/feedback.rs",
            "crates/net/src/uplink.rs",
        ] {
            let f = check(path, "use std::sync::Mutex;\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-std-sync", "{path}");
            let f = check(path, "fn f() { x.unwrap(); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-unwrap", "{path}");
            let f = check(path, "fn f() { Instant::now(); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-wall-clock", "{path}");
            let f = check(path, "fn f() { std::thread::spawn(|| {}); }\n");
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-raw-spawn", "{path}");
        }
    }

    #[test]
    fn wall_clock_flagged_in_simulator() {
        let f = check(
            "crates/simnet/src/des.rs",
            "fn f() { let t = Instant::now(); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-wall-clock");
    }

    #[test]
    fn allow_file_waives_whole_file() {
        let src = "\
// lint:allow-file(no-wall-clock): live runtime measures real time by design
fn a() { Instant::now(); }
fn b() { Instant::now(); }
";
        let f = check("crates/simnet/src/live.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn raw_spawn_flagged() {
        let f = check(
            "crates/fleet/src/scheduler.rs",
            "fn f() { std::thread::spawn(|| {}); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-raw-spawn");
    }

    #[test]
    fn scoped_threads_in_codec_crate_need_a_marker() {
        let f = check(
            "crates/video/src/parallel.rs",
            "fn f() { std::thread::scope(|s| {}); }\n",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "no-raw-spawn");
    }

    #[test]
    fn unsafe_flagged_in_pixel_crates_outside_kernels() {
        for path in ["crates/video/src/motion.rs", "crates/filters/src/mse.rs"] {
            let f = check(
                path,
                "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
            );
            assert_eq!(f.len(), 1, "{path}: {f:?}");
            assert_eq!(f[0].rule, "no-unsafe", "{path}");
        }
    }

    #[test]
    fn kernels_allow_file_waives_no_unsafe() {
        let src = "\
// lint:allow-file(no-unsafe): intrinsics are confined to this module
fn f() { unsafe { core::arch::x86_64::_mm_pause() } }
";
        let f = check("crates/video/src/kernels.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn strings_and_comments_never_flag() {
        let src = "\
// Instant::now() is banned here; x.unwrap() too.
fn f() { let s = \"Instant::now() .unwrap()\"; }
";
        let f = check("crates/simnet/src/des.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }
}
