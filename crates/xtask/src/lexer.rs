//! A minimal Rust source scanner for the lint pass.
//!
//! Produces a *cleaned* copy of a source file — comments, string literals
//! and char literals blanked to spaces, newlines preserved — so the rules
//! can match token text without tripping on prose, plus the `lint:allow`
//! markers harvested from the comments and the line ranges covered by
//! `#[cfg(test)]` items.

/// One `// lint:allow(rule): reason` marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-indexed line the marker comment sits on.
    pub line: usize,
    /// The rule name inside the parentheses.
    pub rule: String,
    /// Whether this is a `lint:allow-file` (whole-file) marker.
    pub file_wide: bool,
}

/// Scan result for one file.
#[derive(Debug)]
pub struct Scanned {
    /// Source with comments/strings/chars blanked; newlines preserved, so
    /// byte offsets and line numbers match the original.
    pub cleaned: String,
    /// Harvested allow markers.
    pub allows: Vec<Allow>,
    /// Malformed markers (missing the `: reason` justification).
    pub marker_errors: Vec<(usize, String)>,
    /// 1-indexed inclusive line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Scanned {
    /// Whether `line` is inside a `#[cfg(test)]` item.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// Whether `rule` is allowed at `line` (file-wide marker, or a line
    /// marker on the same or the immediately preceding line).
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.file_wide || a.line == line || a.line + 1 == line))
    }
}

/// Scans `source`, blanking non-code text and harvesting markers.
pub fn scan(source: &str) -> Scanned {
    let bytes = source.as_bytes();
    let mut cleaned = String::with_capacity(source.len());
    let mut allows = Vec::new();
    let mut marker_errors = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `c` or a blank of equal width; newlines always survive.
    fn blank(cleaned: &mut String, c: char) {
        if c == '\n' {
            cleaned.push('\n');
        } else {
            for _ in 0..c.len_utf8() {
                cleaned.push(' ');
            }
        }
    }

    while i < bytes.len() {
        let rest = &source[i..];
        if rest.starts_with("//") {
            // Line comment (incl. doc comments): harvest markers, blank it.
            let end = rest.find('\n').map_or(source.len(), |p| i + p);
            let text = &source[i..end];
            harvest_marker(text, line, &mut allows, &mut marker_errors);
            for c in text.chars() {
                blank(&mut cleaned, c);
            }
            i = end;
        } else if rest.starts_with("/*") {
            // Block comment, possibly nested.
            let mut depth = 1usize;
            let mut j = i + 2;
            cleaned.push_str("  ");
            while j < bytes.len() && depth > 0 {
                let r = &source[j..];
                if r.starts_with("/*") {
                    depth += 1;
                    cleaned.push_str("  ");
                    j += 2;
                } else if r.starts_with("*/") {
                    depth -= 1;
                    cleaned.push_str("  ");
                    j += 2;
                } else {
                    let c = r.chars().next().unwrap_or(' ');
                    if c == '\n' {
                        line += 1;
                    }
                    blank(&mut cleaned, c);
                    j += c.len_utf8();
                }
            }
            i = j;
        } else if rest.starts_with("r\"")
            || rest.starts_with("r#")
            || rest.starts_with("br\"")
            || rest.starts_with("br#")
        {
            // Raw string literal: r"..", r#".."#, br".." etc.
            let prefix = if rest.starts_with("br") { 2 } else { 1 };
            let mut hashes = 0usize;
            let mut j = i + prefix;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) != Some(&b'"') {
                // `r#foo` raw identifier, not a raw string: emit as code.
                let c = rest.chars().next().unwrap_or(' ');
                cleaned.push(c);
                i += c.len_utf8();
                continue;
            }
            j += 1;
            let closer = format!("\"{}", "#".repeat(hashes));
            let end = source[j..]
                .find(&closer)
                .map_or(source.len(), |p| j + p + closer.len());
            for c in source[i..end].chars() {
                if c == '\n' {
                    line += 1;
                }
                blank(&mut cleaned, c);
            }
            i = end;
        } else if rest.starts_with('"') {
            // String literal with escapes.
            let mut j = i + 1;
            blank(&mut cleaned, '"');
            while j < bytes.len() {
                let c = source[j..].chars().next().unwrap_or(' ');
                if c == '\\' {
                    blank(&mut cleaned, '\\');
                    j += 1;
                    if let Some(e) = source[j..].chars().next() {
                        if e == '\n' {
                            line += 1;
                        }
                        blank(&mut cleaned, e);
                        j += e.len_utf8();
                    }
                    continue;
                }
                if c == '\n' {
                    line += 1;
                }
                blank(&mut cleaned, c);
                j += c.len_utf8();
                if c == '"' {
                    break;
                }
            }
            i = j;
        } else if rest.starts_with('\'') {
            // Char literal or lifetime. `'a'` / `'\n'` are literals;
            // `'a` followed by non-quote is a lifetime (emit as code).
            let mut chars = rest.chars();
            chars.next();
            let c1 = chars.next().unwrap_or(' ');
            let is_literal = if c1 == '\\' {
                true
            } else {
                // 'x' (any single char then a quote) is a literal.
                chars.next() == Some('\'')
            };
            if is_literal {
                let mut j = i + 1;
                blank(&mut cleaned, '\'');
                let mut prev_backslash = false;
                while j < bytes.len() {
                    let c = source[j..].chars().next().unwrap_or(' ');
                    if c == '\n' {
                        line += 1;
                    }
                    blank(&mut cleaned, c);
                    j += c.len_utf8();
                    if c == '\'' && !prev_backslash {
                        break;
                    }
                    prev_backslash = c == '\\' && !prev_backslash;
                }
                i = j;
            } else {
                cleaned.push('\'');
                i += 1;
            }
        } else {
            let c = rest.chars().next().unwrap_or(' ');
            if c == '\n' {
                line += 1;
            }
            cleaned.push(c);
            i += c.len_utf8();
        }
    }

    let test_ranges = find_test_ranges(&cleaned);
    Scanned {
        cleaned,
        allows,
        marker_errors,
        test_ranges,
    }
}

/// Parses a `lint:allow(rule): reason` marker out of one comment's text.
fn harvest_marker(
    comment: &str,
    line: usize,
    allows: &mut Vec<Allow>,
    errors: &mut Vec<(usize, String)>,
) {
    for (needle, file_wide) in [("lint:allow-file(", true), ("lint:allow(", false)] {
        let Some(at) = comment.find(needle) else {
            continue;
        };
        let after = &comment[at + needle.len()..];
        let Some(close) = after.find(')') else {
            errors.push((line, "unclosed lint:allow marker".to_string()));
            return;
        };
        let rule = after[..close].trim().to_string();
        let tail = after[close + 1..].trim_start();
        let reason = tail.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            errors.push((
                line,
                format!("lint:allow({rule}) needs a justification: `// lint:allow({rule}): why`"),
            ));
            return;
        }
        allows.push(Allow {
            line,
            rule,
            file_wide,
        });
        return; // allow-file matched first would otherwise re-match allow(
    }
}

/// Finds the line ranges of `#[cfg(test)]` items in cleaned source: from
/// the attribute to the matching close brace of the next block.
fn find_test_ranges(cleaned: &str) -> Vec<(usize, usize)> {
    let compact: Vec<(usize, char)> = cleaned.char_indices().collect();
    let mut ranges = Vec::new();
    let needle: &[&str] = &["#", "[", "cfg", "(", "test", ")", "]"];
    let mut idx = 0;
    while idx < compact.len() {
        // Anchor on the `#` itself, or the match (which skips leading
        // whitespace) would date the range from earlier blank lines.
        if compact[idx].1 != '#' {
            idx += 1;
            continue;
        }
        if let Some(after) = match_tokens(cleaned, &compact, idx, needle) {
            let start_line = line_of(cleaned, compact[idx].0);
            // Scan to the opening brace of the annotated item, then match.
            let mut depth = 0usize;
            let mut j = after;
            let mut end_line = start_line;
            let mut opened = false;
            while j < compact.len() {
                let (off, c) = compact[j];
                if c == '{' {
                    depth += 1;
                    opened = true;
                } else if c == '}' {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        end_line = line_of(cleaned, off);
                        break;
                    }
                } else if c == ';' && !opened {
                    // `#[cfg(test)] mod tests;` — out-of-line module.
                    end_line = line_of(cleaned, off);
                    break;
                }
                j += 1;
            }
            if opened || end_line > start_line {
                ranges.push((start_line, end_line));
                idx = j.max(after);
                continue;
            }
        }
        idx += 1;
    }
    ranges
}

/// Matches a sequence of tokens (identifiers or single puncts) starting at
/// `compact[idx]`, skipping whitespace; returns the index after the match.
fn match_tokens(
    cleaned: &str,
    compact: &[(usize, char)],
    mut idx: usize,
    tokens: &[&str],
) -> Option<usize> {
    for tok in tokens {
        while idx < compact.len() && compact[idx].1.is_whitespace() {
            idx += 1;
        }
        if idx >= compact.len() {
            return None;
        }
        let (off, c) = compact[idx];
        if tok.chars().all(|t| t.is_alphanumeric() || t == '_') {
            if !cleaned[off..].starts_with(tok) {
                return None;
            }
            // Whole-identifier match.
            let end = off + tok.len();
            if cleaned[end..]
                .chars()
                .next()
                .is_some_and(|n| n.is_alphanumeric() || n == '_')
            {
                return None;
            }
            while idx < compact.len() && compact[idx].0 < end {
                idx += 1;
            }
        } else {
            if c != tok.chars().next()? {
                return None;
            }
            idx += 1;
        }
    }
    Some(idx)
}

/// 1-indexed line of byte offset `off`.
pub fn line_of(text: &str, off: usize) -> usize {
    text[..off].bytes().filter(|&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings_preserving_lines() {
        let src = "let a = \"x.unwrap()\"; // .unwrap() in prose\nlet b = 1;\n";
        let s = scan(src);
        assert!(!s.cleaned.contains("unwrap"));
        assert_eq!(s.cleaned.lines().count(), src.lines().count());
    }

    #[test]
    fn harvests_line_and_file_markers() {
        let src = "\
// lint:allow-file(no-wall-clock): this runtime is wall-clock by design
fn f() {
    // lint:allow(no-unwrap): documented panic contract
    x.unwrap();
}
";
        let s = scan(src);
        assert_eq!(s.allows.len(), 2);
        assert!(s.allows[0].file_wide);
        assert!(s.is_allowed("no-wall-clock", 4));
        assert!(s.is_allowed("no-unwrap", 4), "marker covers the next line");
        assert!(!s.is_allowed("no-unwrap", 5));
    }

    #[test]
    fn marker_without_reason_is_an_error() {
        let s = scan("// lint:allow(no-unwrap)\n");
        assert_eq!(s.allows.len(), 0);
        assert_eq!(s.marker_errors.len(), 1);
    }

    #[test]
    fn finds_cfg_test_ranges() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        x.unwrap();
    }
}
fn after() {}
";
        let s = scan(src);
        assert_eq!(s.test_ranges, vec![(3, 9)]);
        assert!(s.in_test_code(7));
        assert!(!s.in_test_code(1));
        assert!(!s.in_test_code(10));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(s.cleaned.contains("'a"), "lifetime must survive cleaning");
    }

    #[test]
    fn raw_strings_are_blanked() {
        let s = scan("let x = r#\"Instant::now()\"#;\n");
        assert!(!s.cleaned.contains("Instant"));
    }
}
