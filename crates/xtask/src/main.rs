//! Workspace automation driver (`cargo xtask <command>`).
//!
//! `cargo xtask lint` runs the token-level source lints described in
//! [`lint`] and the README's "Correctness tooling" section, printing one
//! `path:line: [rule] message` per finding and exiting non-zero if any
//! survive their `lint:allow` waivers.

use std::path::PathBuf;
use std::process::ExitCode;

mod lexer;
mod lint;

fn workspace_root() -> PathBuf {
    // This crate lives at <root>/crates/xtask.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let findings = lint::run(&workspace_root());
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                println!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <command>\n\n\
                 commands:\n  \
                 lint    run the workspace source lints (no-unwrap, \
                 no-std-sync, no-wall-clock, no-raw-spawn, no-unsafe)"
            );
            ExitCode::from(2)
        }
    }
}
