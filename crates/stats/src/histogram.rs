//! Lock-free HDR-style histograms over power-of-two buckets.
//!
//! [`Histogram`] records unsigned samples (latencies in µs, payload sizes
//! in bytes) into 64 buckets where bucket `i` holds `[2^i, 2^(i+1))` —
//! recording is one relaxed atomic increment plus one `ilog2`, no locks,
//! no allocation, mergeable by bucket-wise addition. Quantiles are
//! computed at snapshot time and reported as the containing bucket's
//! *upper bound*: a ≤ 2× overestimate, never an underestimate — the
//! conservative direction for a latency SLO. The maximum is tracked
//! exactly (a compare-exchange race the largest sample always wins), so
//! `max` can sit *below* a quantile's bucket-rounded value.
//!
//! [`HistogramSnapshot`] is a plain value: snapshots taken from different
//! histograms (per-shard, per-stream, per-epoch) merge associatively and
//! commutatively into the exact histogram of the union stream — the
//! property the crate's proptests pin down.

use serde::Serialize;

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` holds samples in
/// `[2^i, 2^(i+1))`, covering the whole `u64` range (1 µs .. ~584k years
/// when samples are microseconds).
pub const BUCKETS: usize = 64;

/// The value a sample in bucket `i` is reported as: the bucket's exclusive
/// upper bound, saturating at `u64::MAX` for the top bucket.
fn bucket_upper(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << (i + 1)
    }
}

/// The bucket a sample lands in.
fn bucket_of(value: u64) -> usize {
    value.max(1).ilog2() as usize
}

/// A lock-free power-of-two-bucket histogram; see the module docs.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    /// Exact maximum recorded sample (0 until a sample arrives).
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count())
            .field("max", &s.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: a relaxed increment of its bucket plus a
    /// compare-exchange race for the exact maximum (won at most once per
    /// new high-water mark, so the common case is one load).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        let mut seen = self.max.load(Ordering::Relaxed);
        while value > seen {
            match self
                .max
                .compare_exchange(seen, value, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
    }

    /// A point-in-time copy of the distribution. Relaxed bucket loads: the
    /// snapshot of a quiescent histogram is exact; under concurrent
    /// writers it lags by in-flight increments, never tears a bucket.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            counts,
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A mergeable point-in-time histogram value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: [u64; BUCKETS],
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The exact largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub fn counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// The value at quantile `q` (clamped to `0..=1`), reported as the
    /// recording bucket's upper bound — a ≤ 2× overestimate, never an
    /// underestimate. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        u64::MAX
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The union of two distributions: bucket-wise sums and the larger
    /// maximum. Associative and commutative with [`Self::default`] as the
    /// identity, so per-shard/per-epoch snapshots fold in any order.
    #[must_use]
    pub fn merge(&self, other: &Self) -> Self {
        let mut counts = self.counts;
        for (c, o) in counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        Self {
            counts,
            max: self.max.max(other.max),
        }
    }

    /// The compact serializable readout of this snapshot.
    pub fn summary(&self) -> QuantileSummary {
        QuantileSummary {
            count: self.count(),
            p50: self.p50(),
            p90: self.p90(),
            p99: self.p99(),
            max: self.max,
        }
    }
}

/// The serialized form of a histogram in `stats.json` time series:
/// quantiles of the *cumulative* distribution at the sample instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct QuantileSummary {
    /// Total samples recorded so far.
    pub count: u64,
    /// Median, as the recording bucket's upper bound (0 when empty).
    pub p50: u64,
    /// 90th percentile (bucket upper bound).
    pub p90: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
    /// Exact largest sample — may sit below the bucket-rounded quantiles.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 2);
        assert_eq!(bucket_upper(62), 1u64 << 63);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn quantiles_are_upper_bounds_and_max_is_exact() {
        let h = Histogram::new();
        for v in [5u64, 5, 5, 5, 5, 5, 5, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        // 5 lands in [4, 8): upper bound 8.
        assert_eq!(s.p50(), 8);
        // Rank 10 is the 1000 sample: [512, 1024) -> 1024.
        assert_eq!(s.p99(), 1024);
        assert_eq!(s.max(), 1000, "max is exact, not bucket-rounded");
    }

    #[test]
    fn top_bucket_saturates() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.p50(), u64::MAX);
        assert_eq!(s.max(), u64::MAX);
    }

    #[test]
    fn merge_is_the_union_stream() {
        let (a, b) = (Histogram::new(), Histogram::new());
        let union = Histogram::new();
        for v in [1u64, 7, 130] {
            a.record(v);
            union.record(v);
        }
        for v in [2u64, 9, 70_000] {
            b.record(v);
            union.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
        assert_eq!(
            merged.merge(&HistogramSnapshot::default()),
            merged,
            "empty snapshot is the merge identity"
        );
    }

    #[test]
    fn summary_is_consistent() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot().summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert_eq!(s.max, 100);
    }
}
