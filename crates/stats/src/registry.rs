//! The instrument registry: named stages registering named instruments.
//!
//! A [`Registry`] maps dotted names (`"fleet.kept"`,
//! `"adapt.scores_observed"`) to shared instrument handles. Registration
//! is idempotent — asking for an existing name returns the *same*
//! instrument, so independent subsystems (or many instances of one, e.g.
//! every adaptive stream's `RateController`) emit into one aggregate
//! stream. The registry lock is only taken at registration and at
//! [`Registry::sample`] time; the hot path holds pre-resolved `Arc`
//! handles and never touches the map.
//!
//! [`Stage`] is a prefix-scoped view (`registry.stage("fleet")`), the
//! handle a subsystem threads through its constructors so its instrument
//! names stay grouped without string plumbing at every call site.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::sync::Mutex;

/// A registered instrument handle.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// A named-instrument registry; see the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    instruments: Mutex<BTreeMap<String, Instrument>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered instruments.
    pub fn len(&self) -> usize {
        self.instruments.lock().len()
    }

    /// Whether no instrument is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn register<T, F: FnOnce() -> Instrument, G: Fn(&Instrument) -> Option<T>>(
        &self,
        name: &str,
        make: F,
        cast: G,
    ) -> T {
        let mut map = self.instruments.lock();
        let entry = map
            .entry(name.to_string())
            .or_insert_with(make)
            // Shared map entries must stay cheap to clone: every variant
            // is an Arc.
            .clone();
        drop(map);
        match cast(&entry) {
            Some(handle) => handle,
            None => panic!(
                "instrument {name:?} already registered as a {}",
                entry.kind()
            ),
        }
    }

    /// The counter named `name` (single write shard), registering it on
    /// first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.register(
            name,
            || Instrument::Counter(Arc::new(Counter::new())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The counter named `name`, created sharded for the machine's
    /// parallelism if absent — use for counters every worker hits.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn contended_counter(&self, name: &str) -> Arc<Counter> {
        self.register(
            name,
            || Instrument::Counter(Arc::new(Counter::contended())),
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.register(
            name,
            || Instrument::Gauge(Arc::new(Gauge::new())),
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.register(
            name,
            || Instrument::Histogram(Arc::new(Histogram::new())),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// A prefix-scoped view: instruments registered through it are named
    /// `"<prefix>.<name>"`.
    pub fn stage(self: &Arc<Self>, prefix: impl Into<String>) -> Stage {
        Stage {
            registry: self.clone(),
            prefix: prefix.into(),
        }
    }

    /// Reads every instrument once: counters and gauges as their current
    /// values, histograms as mergeable snapshots. One registry lock for
    /// the map walk; instrument reads are lock-free.
    pub fn sample(&self) -> RegistrySample {
        let map = self.instruments.lock();
        let mut sample = RegistrySample::default();
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => {
                    sample.counters.insert(name.clone(), c.get());
                }
                Instrument::Gauge(g) => {
                    sample.gauges.insert(name.clone(), g.get());
                }
                Instrument::Histogram(h) => {
                    sample.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        sample
    }
}

/// A prefix-scoped registry view; see [`Registry::stage`].
#[derive(Debug, Clone)]
pub struct Stage {
    registry: Arc<Registry>,
    prefix: String,
}

impl Stage {
    /// The stage's name prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    fn scoped(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// A single-shard counter scoped to this stage.
    ///
    /// # Panics
    ///
    /// Panics if the scoped name is registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.scoped(name))
    }

    /// A parallelism-sharded counter scoped to this stage.
    ///
    /// # Panics
    ///
    /// Panics if the scoped name is registered as a different kind.
    pub fn contended_counter(&self, name: &str) -> Arc<Counter> {
        self.registry.contended_counter(&self.scoped(name))
    }

    /// A gauge scoped to this stage.
    ///
    /// # Panics
    ///
    /// Panics if the scoped name is registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.scoped(name))
    }

    /// A histogram scoped to this stage.
    ///
    /// # Panics
    ///
    /// Panics if the scoped name is registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.scoped(name))
    }
}

/// One lock-free read of every registered instrument.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySample {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Arc::new(Registry::new());
        let a = r.counter("fleet.kept");
        let b = r.counter("fleet.kept");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same instrument behind both handles");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn stages_scope_names() {
        let r = Arc::new(Registry::new());
        let fleet = r.stage("fleet");
        fleet.counter("kept").add(3);
        fleet.gauge("queue_depth").add(7);
        fleet.histogram("latency_us").record(100);
        let sample = r.sample();
        assert_eq!(sample.counters.get("fleet.kept"), Some(&3));
        assert_eq!(sample.gauges.get("fleet.queue_depth"), Some(&7));
        assert_eq!(
            sample.histograms.get("fleet.latency_us").map(|h| h.count()),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn contended_counter_reuses_existing() {
        let r = Registry::new();
        let a = r.contended_counter("hot");
        let b = r.counter("hot");
        a.inc();
        assert_eq!(b.get(), 1);
    }
}
