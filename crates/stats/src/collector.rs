//! The time-series collector: periodic folds of a [`Registry`] into
//! [`SeriesPoint`]s, plus the serde export behind `stats.json`.
//!
//! Two clock modes, mirroring the fleet's decision-latency gating:
//!
//! * **Wall clock** (normal builds): [`Collector::tick`] stamps the point
//!   with real elapsed milliseconds, and [`Collector::start_sampler`]
//!   spawns a facade thread that ticks at a fixed period — the mode the
//!   terminal dashboard and long-running deployments use.
//! * **Explicit time** (always available, the *only* mode under the
//!   `model-check` feature, where wall-clock state is compiled out
//!   entirely): [`Collector::tick_at`] takes the timestamp from the
//!   caller — a simulation's virtual clock or a test's scripted instants —
//!   so deterministic runs produce deterministic series.
//!
//! Points carry *cumulative* instrument values (counter totals, the
//! histogram of everything recorded so far): consumers difference
//! consecutive points for rates, and a truncated series still reports
//! exact totals. The collector keeps a bounded ring (oldest points drop
//! first) so an unattended dashboard cannot grow without bound.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::Serialize;

use crate::registry::Registry;
use crate::sync::Mutex;
use crate::QuantileSummary;

/// Default bound on retained points (oldest dropped first).
pub const DEFAULT_MAX_POINTS: usize = 4096;

/// One periodic fold of the registry; see the module docs for cumulative
/// semantics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SeriesPoint {
    /// Monotonic tick number (keeps counting when old points drop).
    pub seq: u64,
    /// Milliseconds since the collector's epoch (wall or virtual).
    pub elapsed_ms: u64,
    /// Cumulative counter totals by instrument name.
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Gauge levels by instrument name.
    pub gauges: std::collections::BTreeMap<String, u64>,
    /// Cumulative histogram quantiles by instrument name.
    pub histograms: std::collections::BTreeMap<String, QuantileSummary>,
}

impl SeriesPoint {
    /// `counter(name)` here minus the same counter at `earlier`, i.e. the
    /// events landed between the two ticks (0 for an unknown name).
    pub fn counter_delta(&self, earlier: &SeriesPoint, name: &str) -> u64 {
        let now = self.counters.get(name).copied().unwrap_or(0);
        let then = earlier.counters.get(name).copied().unwrap_or(0);
        now.saturating_sub(then)
    }
}

/// The serialized artifact (`stats.json`): a schema tag plus the series.
#[derive(Debug, Clone, Serialize)]
pub struct SeriesExport {
    /// Always `"sieve_stats"`.
    pub artifact: String,
    /// The retained points, oldest first.
    pub points: Vec<SeriesPoint>,
}

/// The retained series plus the monotonic tick counter.
#[derive(Debug, Default)]
struct SeriesBuf {
    next_seq: u64,
    last_elapsed_ms: u64,
    points: VecDeque<SeriesPoint>,
}

/// Folds a registry into a bounded time series; see the module docs.
#[derive(Debug)]
pub struct Collector {
    registry: Arc<Registry>,
    series: Mutex<SeriesBuf>,
    max_points: usize,
    #[cfg(not(feature = "model-check"))]
    started: std::time::Instant,
}

impl Collector {
    /// A collector over `registry` retaining [`DEFAULT_MAX_POINTS`].
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::with_max_points(registry, DEFAULT_MAX_POINTS)
    }

    /// A collector retaining at most `max_points` (≥ 1) points.
    pub fn with_max_points(registry: Arc<Registry>, max_points: usize) -> Self {
        Self {
            registry,
            series: Mutex::new(SeriesBuf::default()),
            max_points: max_points.max(1),
            #[cfg(not(feature = "model-check"))]
            // lint:allow(no-wall-clock): the collector's epoch; compiled out of model-check/sim-deterministic builds
            started: std::time::Instant::now(),
        }
    }

    /// The registry this collector samples.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Folds the registry into a point stamped `elapsed_ms` on the
    /// caller's clock (clamped to be non-decreasing across ticks) and
    /// appends it to the series; returns the point. Deterministic given
    /// deterministic instrument values — the simulation/model-check path.
    pub fn tick_at(&self, elapsed_ms: u64) -> SeriesPoint {
        let sample = self.registry.sample();
        let mut series = self.series.lock();
        let elapsed_ms = elapsed_ms.max(series.last_elapsed_ms);
        let point = SeriesPoint {
            seq: series.next_seq,
            elapsed_ms,
            counters: sample.counters,
            gauges: sample.gauges,
            histograms: sample
                .histograms
                .into_iter()
                .map(|(name, snap)| (name, snap.summary()))
                .collect(),
        };
        series.next_seq += 1;
        series.last_elapsed_ms = elapsed_ms;
        series.points.push_back(point.clone());
        while series.points.len() > self.max_points {
            series.points.pop_front();
        }
        point
    }

    /// [`Collector::tick_at`] stamped with real elapsed time since the
    /// collector was created. Not compiled under `model-check` — wall
    /// time must not reach explored schedules.
    #[cfg(not(feature = "model-check"))]
    pub fn tick(&self) -> SeriesPoint {
        self.tick_at(self.started.elapsed().as_millis() as u64)
    }

    /// Points currently retained, oldest first.
    pub fn points(&self) -> Vec<SeriesPoint> {
        self.series.lock().points.iter().cloned().collect()
    }

    /// The most recent point, if any tick has happened.
    pub fn latest(&self) -> Option<SeriesPoint> {
        self.series.lock().points.back().cloned()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.series.lock().points.len()
    }

    /// Whether no tick has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The serializable artifact for `stats.json`.
    pub fn export(&self) -> SeriesExport {
        SeriesExport {
            artifact: "sieve_stats".to_string(),
            points: self.points(),
        }
    }

    /// Spawns a facade thread ticking this collector every `period` until
    /// the returned handle is stopped (or dropped). Not compiled under
    /// `model-check`: the sampler is wall-clock-paced by construction;
    /// deterministic runs call [`Collector::tick_at`] themselves.
    #[cfg(not(feature = "model-check"))]
    pub fn start_sampler(self: &Arc<Self>, period: std::time::Duration) -> Sampler {
        use crate::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let collector = self.clone();
        let flag = stop.clone();
        let handle = crate::sync::thread::spawn(move || {
            while !flag.load(Ordering::Acquire) {
                // Sleep in short slices so stop() returns promptly even
                // with a long sampling period.
                let mut left = period;
                while !left.is_zero() && !flag.load(Ordering::Acquire) {
                    let slice = left.min(std::time::Duration::from_millis(25));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                if flag.load(Ordering::Acquire) {
                    break;
                }
                collector.tick();
            }
        });
        Sampler {
            stop,
            handle: Some(handle),
        }
    }
}

/// Handle to a running sampler thread; stopping (or dropping) it joins the
/// thread.
#[cfg(not(feature = "model-check"))]
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<crate::sync::atomic::AtomicBool>,
    handle: Option<crate::sync::thread::JoinHandle<()>>,
}

#[cfg(not(feature = "model-check"))]
impl Sampler {
    /// Signals the sampler to exit and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        use crate::sync::atomic::Ordering;
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // A sampler tick cannot panic (it only reads atomics), so a
            // join error is unreachable; ignore it rather than unwind in
            // drop.
            let _ = handle.join();
        }
    }
}

#[cfg(not(feature = "model-check"))]
impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry_with_data() -> Arc<Registry> {
        let r = Arc::new(Registry::new());
        let s = r.stage("fleet");
        s.counter("kept").add(5);
        s.gauge("queue_depth").add(2);
        s.histogram("latency_us").record(900);
        r
    }

    #[test]
    fn tick_at_folds_the_registry() {
        let r = registry_with_data();
        let c = Collector::new(r.clone());
        let p = c.tick_at(10);
        assert_eq!(p.seq, 0);
        assert_eq!(p.elapsed_ms, 10);
        assert_eq!(p.counters.get("fleet.kept"), Some(&5));
        assert_eq!(p.gauges.get("fleet.queue_depth"), Some(&2));
        let h = p.histograms.get("fleet.latency_us").expect("sampled");
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 900);
        r.counter("fleet.kept").add(3);
        let p2 = c.tick_at(20);
        assert_eq!(p2.seq, 1);
        assert_eq!(p2.counter_delta(&p, "fleet.kept"), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn elapsed_never_goes_backwards() {
        let c = Collector::new(Arc::new(Registry::new()));
        c.tick_at(100);
        let p = c.tick_at(40);
        assert_eq!(p.elapsed_ms, 100, "clamped to the last tick's stamp");
    }

    #[test]
    fn ring_drops_oldest() {
        let c = Collector::with_max_points(Arc::new(Registry::new()), 2);
        for t in 0..5 {
            c.tick_at(t);
        }
        let points = c.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].seq, 3, "oldest retained is tick 3");
        assert_eq!(c.latest().map(|p| p.seq), Some(4));
    }

    #[test]
    fn export_serializes() {
        let c = Collector::new(registry_with_data());
        c.tick_at(5);
        let json = serde_json::to_string_pretty(&c.export()).expect("serializes");
        assert!(json.contains("\"artifact\": \"sieve_stats\""));
        assert!(json.contains("fleet.kept"));
        assert!(json.contains("\"p99\""));
    }

    #[cfg(not(feature = "model-check"))]
    #[test]
    fn sampler_ticks_and_stops() {
        let c = Arc::new(Collector::new(registry_with_data()));
        let sampler = c.start_sampler(std::time::Duration::from_millis(5));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while c.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        sampler.stop();
        assert!(!c.is_empty(), "sampler never ticked");
        let n = c.len();
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(c.len(), n, "sampler kept ticking after stop");
    }
}
