//! Lock-free counters and gauges.
//!
//! [`Counter`] is a monotonic event counter built for *write-heavy* hot
//! paths: increments are relaxed atomic adds against a per-thread shard
//! (cache-line padded so concurrent writers never bounce a line), and the
//! value is aggregated only on read. A single-shard counter degenerates to
//! one plain atomic — the right shape for state that is only ever touched
//! by one thread at a time (e.g. a fleet stream's own counters, which are
//! owned by whichever shard worker currently holds the stream).
//!
//! [`Gauge`] is a level (queue depth, in-flight frames): it must support
//! decrement, so it stays a single atomic — gauges are read as often as
//! they are written and sharding would buy nothing.

use std::cell::Cell;
use std::hash::{Hash, Hasher};

use crate::sync::atomic::{AtomicU64, Ordering};

/// One cache line per shard so concurrent writers do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

thread_local! {
    /// Cached shard-selection hash of this thread (0 = not yet computed).
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
}

/// A stable per-thread tag used to pick a counter shard. Derived from the
/// `ThreadId` hash once per thread and cached; the `| 1` keeps the cached
/// value distinguishable from the "unset" sentinel.
fn thread_tag() -> u64 {
    THREAD_TAG.with(|tag| {
        let cached = tag.get();
        if cached != 0 {
            return cached;
        }
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        let fresh = hasher.finish() | 1;
        tag.set(fresh);
        fresh
    })
}

/// Shard count for contended fleet-wide counters: enough lanes to cover
/// the machine's parallelism, capped so a counter stays a few cache lines.
fn default_shards() -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    cores.next_power_of_two().clamp(1, 16)
}

/// A monotonic, lock-free event counter; see the module docs for the
/// sharding model.
#[derive(Debug)]
pub struct Counter {
    shards: Box<[PaddedU64]>,
    /// `shards.len() - 1`; the length is a power of two.
    mask: u64,
}

impl Default for Counter {
    /// A single-shard counter (one plain atomic).
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A single-shard counter: the cheapest shape, right when at most one
    /// thread writes at a time.
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// A counter sharded for the machine's parallelism — use for counters
    /// every worker thread hits (fleet-wide totals).
    pub fn contended() -> Self {
        Self::with_shards(default_shards())
    }

    /// A counter with `shards` write lanes (rounded up to a power of two,
    /// clamped to `1..=64`).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.next_power_of_two().clamp(1, 64);
        Self {
            shards: (0..n).map(|_| PaddedU64::default()).collect(),
            mask: n as u64 - 1,
        }
    }

    /// Number of write lanes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Adds `n` to the counter: one relaxed atomic add on this thread's
    /// shard, never a synchronization point for readers.
    pub fn add(&self, n: u64) {
        let shard = if self.mask == 0 {
            0
        } else {
            (thread_tag() & self.mask) as usize
        };
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total: the sum over all shards. Relaxed per-shard loads
    /// — the total is exact once writers quiesce, and monotonically
    /// catches up while they run (an aggregate-on-read counter, not a
    /// linearizable one).
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A lock-free level gauge (queue depth, in-flight count): supports
/// decrement, reads exactly, single atomic.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the level by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the level by `n`. The caller's protocol must keep the level
    /// non-negative (a gauge underflow wraps, exactly like the raw atomic
    /// it replaces).
    pub fn sub(&self, n: u64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lowers the level by one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Overwrites the level. For gauges that publish a sampled value (a
    /// control factor, a temperature) rather than a balanced up/down
    /// count; last writer wins.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(c.shards(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(Counter::with_shards(0).shards(), 1);
        assert_eq!(Counter::with_shards(3).shards(), 4);
        assert_eq!(Counter::with_shards(64).shards(), 64);
        assert_eq!(Counter::with_shards(1000).shards(), 64);
        assert!(Counter::contended().shards() >= 1);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = Arc::new(Counter::with_shards(8));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(5);
        g.dec();
        g.sub(2);
        g.inc();
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn gauge_set_overwrites() {
        let g = Gauge::new();
        g.add(7);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.set(0);
        assert_eq!(g.get(), 0);
    }
}
