//! `sieve-stats` — the lock-free observability plane.
//!
//! SiEVE's pipelines (fleet scheduler shards, simnet live stages, the
//! per-stream adaptive rate controllers) need to answer "what is the fleet
//! doing *right now*" without perturbing the decisions being measured.
//! This crate is that plane, in three layers:
//!
//! 1. **Instruments** — [`Counter`] (sharded relaxed atomics,
//!    aggregate-on-read), [`Gauge`] (levels), and [`Histogram`]
//!    (power-of-two buckets, mergeable [`HistogramSnapshot`]s with
//!    p50/p90/p99/max readout). Hot-path cost is one relaxed atomic op.
//! 2. **Registry** — [`Registry`] maps dotted names to shared instrument
//!    handles; [`Stage`] scopes a subsystem's names under one prefix.
//!    Registration is idempotent, so many emitters share one aggregate.
//! 3. **Collector** — [`Collector`] folds a registry into periodic
//!    [`SeriesPoint`]s (cumulative totals; consumers difference for
//!    rates), either on a wall-clock [`Sampler`] thread or via explicit
//!    [`Collector::tick_at`] for deterministic runs, and exports the
//!    series as the `stats.json` artifact.
//!
//! Under the `model-check` feature every primitive routes through
//! `sieve-check`'s instrumented sync (see [`sync`]) and all wall-clock
//! state — `Collector::tick`, the sampler thread — is compiled out, the
//! same gating the fleet applies to decision-latency timing.

pub mod sync;

mod collector;
mod counter;
mod histogram;
mod registry;

#[cfg(not(feature = "model-check"))]
pub use collector::Sampler;
pub use collector::{Collector, SeriesExport, SeriesPoint, DEFAULT_MAX_POINTS};
pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, QuantileSummary, BUCKETS};
pub use registry::{Registry, RegistrySample, Stage};

use std::sync::Arc;
use std::sync::OnceLock;

/// The process-wide default registry.
///
/// Subsystems that cannot thread a registry handle through their public
/// constructors without breaking API (e.g. `sieve_core`'s
/// `RateController`) emit here; everything else should prefer an explicit
/// [`Registry`] passed in, which keeps tests isolated. The instance is
/// created on first use and lives for the process.
pub fn global() -> &'static Arc<Registry> {
    static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(Registry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let name = "libtest.global_probe";
        global().counter(name).add(2);
        global().counter(name).inc();
        assert!(global().sample().counters.get(name).copied() >= Some(3));
    }
}
