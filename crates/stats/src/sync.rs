//! The crate's synchronization facade.
//!
//! `sieve-stats` sits *below* `sieve-simnet` in the dependency graph (the
//! simnet live runtime emits through this crate), so it cannot borrow the
//! `sieve_simnet::sync` facade — it carries its own, following the exact
//! same pattern: normally the types resolve to the real primitives, and
//! under the `model-check` feature they resolve to `sieve-check`'s
//! instrumented equivalents, so instrument operations (every relaxed
//! counter increment included) are scheduler decision points the explorer
//! can interleave like any other shared-memory access.
//!
//! The facade API is the intersection the instruments need:
//! * `Mutex` with a non-poisoning `lock()` (registry map, collector ring);
//! * `atomic::{AtomicBool, AtomicU64, Ordering}` (counters, histograms);
//! * `thread::{spawn, JoinHandle}` (the sampler thread — which only exists
//!   outside `model-check` builds, where wall time is allowed).
//!
//! The `no-std-sync` and `no-raw-spawn` lints (`cargo xtask lint`) keep the
//! rest of the crate from bypassing this module.

#[cfg(feature = "model-check")]
pub use sieve_check::sync::{Mutex, MutexGuard};

#[cfg(feature = "model-check")]
pub use sieve_check::sync::atomic;

#[cfg(feature = "model-check")]
pub use sieve_check::thread;

#[cfg(not(feature = "model-check"))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(not(feature = "model-check"))]
pub use real::{atomic, thread};

#[cfg(not(feature = "model-check"))]
mod real {
    // The facade *is* the sanctioned wrapper over std sync.
    // lint:allow-file(no-std-sync): this module is the facade's std backend
    // lint:allow-file(no-raw-spawn): thread::spawn is re-exported from here

    /// Atomics pass straight through to `std`.
    pub use std::sync::atomic;

    /// Thread spawn/join pass straight through to `std`.
    pub mod thread {
        pub use std::thread::{spawn, JoinHandle};
    }
}
