//! Property tests pinning the histogram's two contracts:
//!
//! 1. **Bucket-bounded quantiles.** For any sample stream — flat or
//!    heavy-tailed — and any quantile, the reported value sits within one
//!    power-of-two bucket of the exact empirical quantile: at least the
//!    exact value (never an underestimate) and at most 2× it (the
//!    containing bucket's upper bound).
//! 2. **Merge is the union stream.** Merging snapshots is associative and
//!    commutative and equals recording the concatenated stream into one
//!    histogram, so per-shard/per-epoch snapshots fold in any order.

use proptest::prelude::*;
use sieve_stats::{Histogram, HistogramSnapshot};

/// The exact empirical quantile under the histogram's own rank rule:
/// the `ceil(total * q)`-th smallest sample (1-clamped).
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let total = sorted.len() as u64;
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    sorted[rank as usize - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// `reported` is within one power-of-two bucket above `exact`.
fn within_one_bucket(reported: u64, exact: u64) -> bool {
    reported >= exact && reported <= exact.max(1).saturating_mul(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flat stream: uniform samples over a modest range.
    #[test]
    fn flat_stream_quantiles_are_bucket_bounded(
        samples in proptest::collection::vec(1u64..10_000, 1..200),
        q in 0.0f64..1.0,
    ) {
        let snap = snapshot_of(&samples);
        for q in [q, 0.5, 0.9, 0.99] {
            let exact = exact_quantile(&samples, q);
            let reported = snap.quantile(q);
            prop_assert!(
                within_one_bucket(reported, exact),
                "q={q}: reported {reported} vs exact {exact}"
            );
        }
        prop_assert_eq!(
            snap.max(),
            *samples.iter().max().expect("non-empty"),
            "max is exact, not bucket-rounded"
        );
    }

    /// Heavy-tailed stream: samples spread across ~50 binary decades
    /// (each draw is `2^e + m`), the regime bucketed histograms exist for.
    #[test]
    fn heavy_tailed_quantiles_are_bucket_bounded(
        draws in proptest::collection::vec((0u32..50, 0u64..1_000), 1..200),
        q in 0.0f64..1.0,
    ) {
        let samples: Vec<u64> = draws
            .iter()
            .map(|&(e, m)| (1u64 << e).saturating_add(m))
            .collect();
        let snap = snapshot_of(&samples);
        for q in [q, 0.5, 0.99] {
            let exact = exact_quantile(&samples, q);
            let reported = snap.quantile(q);
            prop_assert!(
                within_one_bucket(reported, exact),
                "q={q}: reported {reported} vs exact {exact}"
            );
        }
    }

    /// Merge associativity/commutativity, and equality with the single
    /// histogram of the concatenated stream.
    #[test]
    fn merge_is_associative_and_equals_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..80),
        b in proptest::collection::vec(0u64..1_000_000, 0..80),
        c in proptest::collection::vec(0u64..1_000_000, 0..80),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(left, right, "merge must be associative");
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa), "merge must commute");

        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snapshot_of(&union), "merge is the union stream");
        prop_assert_eq!(
            left.merge(&HistogramSnapshot::default()),
            left,
            "empty snapshot is the identity"
        );
    }
}
