//! # sieve-nn — a from-scratch CNN inference and training engine
//!
//! The neural-network substrate of the SiEVE reproduction: dense tensors,
//! convolutional layers with backprop, SGD training, and Neurosurgeon-style
//! layer partitioning across edge and cloud. Mature CNN crates are not
//! available offline, so the substrate is built here; it is small but real —
//! the end-to-end experiments run actual inference, and the detector is
//! actually trained on the synthetic datasets.
//!
//! ```
//! use sieve_nn::{reference_model, Tensor};
//!
//! let mut model = reference_model(42);
//! let input = Tensor::zeros(&[3, 32, 32]);
//! let logits = model.forward(&input);
//! assert_eq!(logits.len(), 5); // one logit per object class
//! ```

pub mod detector;
pub mod layers;
pub mod loss;
pub mod model;
pub mod partition;
pub mod tensor;
pub mod train;

pub use detector::{
    frame_to_tensor, labels_to_targets, reference_model, samples_from_video, CnnDetector,
    ObjectDetector, OracleDetector, CNN_INPUT_SIZE,
};
pub use layers::{Conv2d, Dense, Flatten, Layer, MaxPool2, Relu};
pub use model::Sequential;
pub use partition::{best_split, split_costs, Placement, SplitCost, TierSpec};
pub use tensor::Tensor;
pub use train::{evaluate_multilabel, train_multilabel, Sample, TrainConfig, TrainReport};
