//! Sequential models: forward passes, activation sizes, FLOP profiles.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// A feed-forward stack of layers.
///
/// The model exposes per-boundary activation sizes and per-layer FLOP
/// estimates because SiEVE's deployment service partitions NN layers across
/// edge and cloud (Neurosurgeon-style): the partitioner needs to know how
/// many bytes cross the network at each candidate split and how much compute
/// lands on each side.
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: Box<dyn Layer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// The layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Inference-mode forward pass.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in self.layers.iter_mut() {
            x = l.forward(&x, false);
        }
        x
    }

    /// Training-mode forward pass (layers cache activations).
    pub fn forward_train(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in self.layers.iter_mut() {
            x = l.forward(&x, true);
        }
        x
    }

    /// Backward pass from the loss gradient at the output.
    pub fn backward(&mut self, grad_out: &Tensor) {
        let mut g = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// Applies and clears accumulated gradients.
    pub fn apply_gradients(&mut self, lr: f32) {
        for l in self.layers.iter_mut() {
            l.apply_gradients(lr);
        }
    }

    /// Forward pass over a *suffix* of the model starting at layer `from`
    /// (used to run the cloud half after a split).
    ///
    /// # Panics
    ///
    /// Panics if `from > len()`.
    pub fn forward_from(&mut self, from: usize, input: &Tensor) -> Tensor {
        assert!(from <= self.layers.len(), "split point out of range");
        let mut x = input.clone();
        for l in self.layers[from..].iter_mut() {
            x = l.forward(&x, false);
        }
        x
    }

    /// Forward pass over the *prefix* of the model up to (exclusive) layer
    /// `to` (the edge half after a split).
    ///
    /// # Panics
    ///
    /// Panics if `to > len()`.
    pub fn forward_to(&mut self, to: usize, input: &Tensor) -> Tensor {
        assert!(to <= self.layers.len(), "split point out of range");
        let mut x = input.clone();
        for l in self.layers[..to].iter_mut() {
            x = l.forward(&x, false);
        }
        x
    }

    /// Shape of every activation boundary for `input_shape`: element 0 is
    /// the input itself, element `i+1` is the output of layer `i`.
    pub fn activation_shapes(&self, input_shape: &[usize]) -> Vec<Vec<usize>> {
        let mut shapes = vec![input_shape.to_vec()];
        let mut cur = input_shape.to_vec();
        for l in &self.layers {
            cur = l.output_shape(&cur);
            shapes.push(cur.clone());
        }
        shapes
    }

    /// Bytes crossing each activation boundary (4 bytes per element).
    pub fn activation_bytes(&self, input_shape: &[usize]) -> Vec<usize> {
        self.activation_shapes(input_shape)
            .iter()
            .map(|s| s.iter().product::<usize>() * 4)
            .collect()
    }

    /// FLOP estimate per layer for `input_shape`.
    pub fn layer_flops(&self, input_shape: &[usize]) -> Vec<u64> {
        let shapes = self.activation_shapes(input_shape);
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.flops(&shapes[i]))
            .collect()
    }

    /// Total FLOPs of a full forward pass.
    pub fn total_flops(&self, input_shape: &[usize]) -> u64 {
        self.layer_flops(input_shape).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};

    fn tiny_model() -> Sequential {
        Sequential::new()
            .push(Box::new(Conv2d::new(3, 4, 3, 1)))
            .push(Box::new(Relu::new()))
            .push(Box::new(MaxPool2::new()))
            .push(Box::new(Flatten::new()))
            .push(Box::new(Dense::new(4 * 8 * 8, 5, 2)))
    }

    #[test]
    fn forward_shape() {
        let mut m = tiny_model();
        let x = Tensor::he_init(&[3, 16, 16], 16, 3);
        let y = m.forward(&x);
        assert_eq!(y.shape(), &[5]);
    }

    #[test]
    fn activation_shapes_chain() {
        let m = tiny_model();
        let shapes = m.activation_shapes(&[3, 16, 16]);
        assert_eq!(shapes.len(), 6);
        assert_eq!(shapes[0], vec![3, 16, 16]);
        assert_eq!(shapes[1], vec![4, 16, 16]);
        assert_eq!(shapes[3], vec![4, 8, 8]);
        assert_eq!(shapes[4], vec![256]);
        assert_eq!(shapes[5], vec![5]);
    }

    #[test]
    fn activation_bytes_match_shapes() {
        let m = tiny_model();
        let bytes = m.activation_bytes(&[3, 16, 16]);
        assert_eq!(bytes[0], 3 * 16 * 16 * 4);
        assert_eq!(bytes[5], 5 * 4);
    }

    #[test]
    fn split_forward_equals_full_forward() {
        let mut m = tiny_model();
        let x = Tensor::he_init(&[3, 16, 16], 16, 9);
        let full = m.forward(&x);
        for split in 0..=m.len() {
            let mid = m.forward_to(split, &x);
            let out = m.forward_from(split, &mid);
            assert_eq!(out, full, "split at {split} diverged");
        }
    }

    #[test]
    fn flops_positive_for_compute_layers() {
        let m = tiny_model();
        let flops = m.layer_flops(&[3, 16, 16]);
        assert!(flops[0] > 0, "conv has flops");
        assert_eq!(flops[3], 0, "flatten is free");
        assert_eq!(m.total_flops(&[3, 16, 16]), flops.iter().sum::<u64>());
    }

    #[test]
    fn param_count_sums_layers() {
        let m = tiny_model();
        let conv_params = 4 * 3 * 3 * 3 + 4;
        let dense_params = 256 * 5 + 5;
        assert_eq!(m.param_count(), conv_params + dense_params);
    }
}
