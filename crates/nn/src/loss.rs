//! Loss functions: multi-label binary cross-entropy and softmax
//! cross-entropy, both with analytic gradients w.r.t. logits.

use crate::tensor::Tensor;

/// Numerically stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Multi-label binary cross-entropy with logits.
///
/// `targets[i]` in `{0.0, 1.0}` says whether class `i` is present. Returns
/// the mean loss and the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bce_with_logits(logits: &Tensor, targets: &[f32]) -> (f32, Tensor) {
    assert_eq!(
        logits.len(),
        targets.len(),
        "logits/targets length mismatch"
    );
    let n = logits.len() as f32;
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f32;
    for (i, (&z, &t)) in logits.data().iter().zip(targets).enumerate() {
        // Stable form: max(z,0) - z*t + ln(1 + exp(-|z|)).
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        grad.data_mut()[i] = (sigmoid(z) - t) / n;
    }
    (loss / n, grad)
}

/// Softmax cross-entropy with an integer class target. Returns the loss and
/// the gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, target: usize) -> (f32, Tensor) {
    assert!(target < logits.len(), "target class out of range");
    let max = logits
        .data()
        .iter()
        .cloned()
        .fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.data().iter().map(|&z| (z - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    let mut grad = Tensor::zeros(logits.shape());
    for (i, e) in exps.iter().enumerate() {
        let p = e / sum;
        grad.data_mut()[i] = p - if i == target { 1.0 } else { 0.0 };
    }
    let loss = -(exps[target] / sum).ln();
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }

    #[test]
    fn bce_perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(&[2], vec![10.0, -10.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 0.01, "confident correct prediction: loss {loss}");
    }

    #[test]
    fn bce_wrong_prediction_high_loss() {
        let logits = Tensor::from_vec(&[2], vec![-10.0, 10.0]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[3], vec![0.3, -0.7, 1.2]);
        let targets = [1.0, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let eps = 1e-3;
        for i in 0..3 {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let (lp, _) = bce_with_logits(&p, &targets);
            let (lm, _) = bce_with_logits(&m, &targets);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "bce grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn softmax_ce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[4], vec![0.1, 2.0, -1.0, 0.5]);
        let (_, grad) = softmax_cross_entropy(&logits, 2);
        let eps = 1e-3;
        for i in 0..4 {
            let mut p = logits.clone();
            p.data_mut()[i] += eps;
            let mut m = logits.clone();
            m.data_mut()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&p, 2);
            let (lm, _) = softmax_cross_entropy(&m, 2);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[i]).abs() < 1e-3,
                "softmax grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        let logits = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let (_, grad) = softmax_cross_entropy(&logits, 0);
        let sum: f32 = grad.data().iter().sum();
        assert!(sum.abs() < 1e-6);
    }
}
