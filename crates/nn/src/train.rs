//! SGD training for multi-label classification.
//!
//! The reference NN in the paper is pre-trained (YOLOv3); here the tiny CNN
//! is trained on labelled frames from the synthetic datasets so that the
//! end-to-end pipeline runs a *real* learned detector rather than a stub.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::loss::{bce_with_logits, sigmoid};
use crate::model::Sequential;
use crate::tensor::Tensor;

/// One training example: an input tensor plus per-class binary targets.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Model input (e.g. `[3, 32, 32]` downscaled frame).
    pub input: Tensor,
    /// One 0/1 target per class.
    pub targets: Vec<f32>,
}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 5,
            lr: 0.05,
            seed: 7,
        }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Trains `model` on `samples` with per-sample SGD and BCE-with-logits loss.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn train_multilabel(
    model: &mut Sequential,
    samples: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    assert!(!samples.is_empty(), "training requires samples");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        let mut total = 0.0f32;
        for &i in &order {
            let s = &samples[i];
            let logits = model.forward_train(&s.input);
            let (loss, grad) = bce_with_logits(&logits, &s.targets);
            model.backward(&grad);
            model.apply_gradients(config.lr);
            total += loss;
        }
        epoch_losses.push(total / samples.len() as f32);
    }
    TrainReport { epoch_losses }
}

/// Predicted per-class probabilities for one input.
pub fn predict_probs(model: &mut Sequential, input: &Tensor) -> Vec<f32> {
    model
        .forward(input)
        .data()
        .iter()
        .map(|&z| sigmoid(z))
        .collect()
}

/// Exact-set accuracy over `samples`: a sample counts as correct when every
/// class probability falls on the right side of `threshold`.
pub fn evaluate_multilabel(model: &mut Sequential, samples: &[Sample], threshold: f32) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| {
            predict_probs(model, &s.input)
                .iter()
                .zip(&s.targets)
                .all(|(&p, &t)| (p > threshold) == (t > 0.5))
        })
        .count();
    correct as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, Relu};

    /// Synthetic separable task: class 0 present iff mean of first half is
    /// high; class 1 present iff mean of second half is high.
    fn toy_samples(n: usize) -> Vec<Sample> {
        let mut out = Vec::new();
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32 / (1u64 << 24) as f32
        };
        for _ in 0..n {
            let a = next() > 0.5;
            let b = next() > 0.5;
            let mut data = vec![0.0f32; 16];
            for (i, v) in data.iter_mut().enumerate() {
                let base = if i < 8 { a } else { b };
                *v = if base { 0.8 } else { 0.1 } + 0.1 * (next() - 0.5);
            }
            out.push(Sample {
                input: Tensor::from_vec(&[1, 4, 4], data),
                targets: vec![a as u8 as f32, b as u8 as f32],
            });
        }
        out
    }

    fn toy_model() -> Sequential {
        Sequential::new()
            .push(Box::new(Flatten::new()))
            .push(Box::new(Dense::new(16, 8, 1)))
            .push(Box::new(Relu::new()))
            .push(Box::new(Dense::new(8, 2, 2)))
    }

    #[test]
    fn loss_decreases() {
        let samples = toy_samples(64);
        let mut model = toy_model();
        let report = train_multilabel(
            &mut model,
            &samples,
            &TrainConfig {
                epochs: 8,
                lr: 0.1,
                seed: 3,
            },
        );
        assert!(
            report.final_loss() < report.epoch_losses[0] * 0.7,
            "loss must fall: {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn learns_separable_task() {
        let train = toy_samples(128);
        let test = toy_samples(64);
        let mut model = toy_model();
        train_multilabel(
            &mut model,
            &train,
            &TrainConfig {
                epochs: 20,
                lr: 0.1,
                seed: 3,
            },
        );
        let acc = evaluate_multilabel(&mut model, &test, 0.5);
        assert!(acc > 0.9, "accuracy {acc} too low for a separable task");
    }

    #[test]
    fn training_is_deterministic() {
        let samples = toy_samples(32);
        let mut m1 = toy_model();
        let mut m2 = toy_model();
        let cfg = TrainConfig::default();
        let r1 = train_multilabel(&mut m1, &samples, &cfg);
        let r2 = train_multilabel(&mut m2, &samples, &cfg);
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_eval_is_zero() {
        let mut m = toy_model();
        assert_eq!(evaluate_multilabel(&mut m, &[], 0.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "requires samples")]
    fn train_rejects_empty() {
        let mut m = toy_model();
        train_multilabel(&mut m, &[], &TrainConfig::default());
    }
}
