//! Neural-network layers with forward and backward passes.
//!
//! Each layer owns its parameters and gradient buffers, caches whatever it
//! needs during a training-mode forward pass, and reports a FLOP estimate
//! used both by the edge/cloud partitioner and by the end-to-end simulator's
//! compute cost model.

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// A differentiable layer.
///
/// This trait is object-safe: models hold `Box<dyn Layer>`.
pub trait Layer: std::fmt::Debug + Send {
    /// Human-readable layer name ("conv2d", "relu", ...).
    fn name(&self) -> &'static str;

    /// Output shape given an input shape.
    ///
    /// # Panics
    ///
    /// Panics if the input shape is incompatible with the layer.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Forward pass. With `train == true`, the layer caches what it needs
    /// for [`Layer::backward`].
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: consumes the gradient w.r.t. the output, accumulates
    /// parameter gradients, and returns the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Applies accumulated gradients with learning rate `lr` and clears
    /// them.
    fn apply_gradients(&mut self, lr: f32);

    /// Number of trainable parameters.
    fn param_count(&self) -> usize;

    /// Estimated multiply-accumulate operations for one forward pass with
    /// the given input shape (drives the partitioner's latency model).
    fn flops(&self, input_shape: &[usize]) -> u64;
}

/// 2-D convolution over `[C, H, W]` tensors with stride 1 and zero padding
/// chosen to preserve spatial size (`ksize / 2`).
#[derive(Debug, Serialize, Deserialize)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    ksize: usize,
    weights: Tensor, // [out, in, k, k]
    bias: Vec<f32>,
    #[serde(skip)]
    grad_w: Option<Tensor>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `ksize` is even.
    pub fn new(in_channels: usize, out_channels: usize, ksize: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && ksize > 0);
        assert!(ksize % 2 == 1, "kernel size must be odd (same padding)");
        let fan_in = in_channels * ksize * ksize;
        Self {
            in_channels,
            out_channels,
            ksize,
            weights: Tensor::he_init(&[out_channels, in_channels, ksize, ksize], fan_in, seed),
            bias: vec![0.0; out_channels],
            grad_w: None,
            grad_b: vec![0.0; out_channels],
            cached_input: None,
        }
    }

    fn w(&self, o: usize, i: usize, ky: usize, kx: usize) -> f32 {
        let k = self.ksize;
        self.weights.data()[((o * self.in_channels + i) * k + ky) * k + kx]
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 3, "conv2d input must be [C, H, W]");
        assert_eq!(input_shape[0], self.in_channels, "channel mismatch");
        vec![self.out_channels, input_shape[1], input_shape[2]]
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = self.output_shape(input.shape());
        let (h, w) = (shape[1], shape[2]);
        let pad = (self.ksize / 2) as i64;
        let mut out = Tensor::zeros(&shape);
        for o in 0..self.out_channels {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = self.bias[o];
                    for i in 0..self.in_channels {
                        for ky in 0..self.ksize {
                            for kx in 0..self.ksize {
                                let sy = y as i64 + ky as i64 - pad;
                                let sx = x as i64 + kx as i64 - pad;
                                if sy < 0 || sx < 0 || sy >= h as i64 || sx >= w as i64 {
                                    continue;
                                }
                                acc +=
                                    self.w(o, i, ky, kx) * input.at3(i, sy as usize, sx as usize);
                            }
                        }
                    }
                    out.set3(o, y, x, acc);
                }
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward without training forward");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let pad = (self.ksize / 2) as i64;
        let mut grad_in = Tensor::zeros(input.shape());
        let mut grad_w = self
            .grad_w
            .take()
            .unwrap_or_else(|| Tensor::zeros(self.weights.shape()));
        let k = self.ksize;
        for o in 0..self.out_channels {
            for y in 0..h {
                for x in 0..w {
                    let g = grad_out.at3(o, y, x);
                    if g == 0.0 {
                        continue;
                    }
                    self.grad_b[o] += g;
                    for i in 0..self.in_channels {
                        for ky in 0..k {
                            for kx in 0..k {
                                let sy = y as i64 + ky as i64 - pad;
                                let sx = x as i64 + kx as i64 - pad;
                                if sy < 0 || sx < 0 || sy >= h as i64 || sx >= w as i64 {
                                    continue;
                                }
                                let (sy, sx) = (sy as usize, sx as usize);
                                let widx = ((o * self.in_channels + i) * k + ky) * k + kx;
                                grad_w.data_mut()[widx] += g * input.at3(i, sy, sx);
                                let v = grad_in.at3(i, sy, sx) + g * self.w(o, i, ky, kx);
                                grad_in.set3(i, sy, sx, v);
                            }
                        }
                    }
                }
            }
        }
        self.grad_w = Some(grad_w);
        grad_in
    }

    fn apply_gradients(&mut self, lr: f32) {
        if let Some(gw) = self.grad_w.take() {
            for (w, g) in self.weights.data_mut().iter_mut().zip(gw.data()) {
                *w -= lr * g;
            }
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_b) {
            *b -= lr * g;
        }
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        let out = self.output_shape(input_shape);
        (out.iter().product::<usize>() * self.in_channels * self.ksize * self.ksize) as u64
    }
}

/// Rectified linear unit.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Relu {
    #[serde(skip)]
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        let mut mask = Vec::new();
        if train {
            mask.reserve(input.len());
        }
        for v in out.data_mut() {
            let pass = *v > 0.0;
            if !pass {
                *v = 0.0;
            }
            if train {
                mask.push(pass);
            }
        }
        if train {
            self.mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward without forward");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn param_count(&self) -> usize {
        0
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }
}

/// 2x2 max pooling with stride 2 over `[C, H, W]`.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct MaxPool2 {
    #[serde(skip)]
    argmax: Option<Vec<usize>>,
    #[serde(skip)]
    input_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2x2 max-pool layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for MaxPool2 {
    fn name(&self) -> &'static str {
        "maxpool2"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 3, "maxpool input must be [C, H, W]");
        vec![input_shape[0], input_shape[1] / 2, input_shape[2] / 2]
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let shape = self.output_shape(input.shape());
        let (c, oh, ow) = (shape[0], shape[1], shape[2]);
        let (_, _, iw) = (input.shape()[0], input.shape()[1], input.shape()[2]);
        let mut out = Tensor::zeros(&shape);
        let mut argmax = vec![0usize; out.len()];
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (sy, sx) = (2 * y + dy, 2 * x + dx);
                            let v = input.at3(ch, sy, sx);
                            if v > best {
                                best = v;
                                best_idx = ch * input.shape()[1] * iw + sy * iw + sx;
                            }
                        }
                    }
                    out.set3(ch, y, x, best);
                    argmax[ch * oh * ow + y * ow + x] = best_idx;
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.input_shape = input.shape().to_vec();
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let argmax = self.argmax.as_ref().expect("backward without forward");
        let mut grad_in = Tensor::zeros(&self.input_shape);
        for (i, &src) in argmax.iter().enumerate() {
            grad_in.data_mut()[src] += grad_out.data()[i];
        }
        grad_in
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn param_count(&self) -> usize {
        0
    }

    fn flops(&self, input_shape: &[usize]) -> u64 {
        input_shape.iter().product::<usize>() as u64
    }
}

/// Flattens `[C, H, W]` to `[C*H*W]`.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct Flatten {
    #[serde(skip)]
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.input_shape = input.shape().to_vec();
        }
        input.clone().reshape(&[input.len()])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.input_shape)
    }

    fn apply_gradients(&mut self, _lr: f32) {}

    fn param_count(&self) -> usize {
        0
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        0
    }
}

/// Fully connected layer.
#[derive(Debug, Serialize, Deserialize)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Tensor, // [out, in]
    bias: Vec<f32>,
    #[serde(skip)]
    grad_w: Option<Tensor>,
    #[serde(skip)]
    grad_b: Vec<f32>,
    #[serde(skip)]
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Self {
            in_features,
            out_features,
            weights: Tensor::he_init(&[out_features, in_features], in_features, seed),
            bias: vec![0.0; out_features],
            grad_w: None,
            grad_b: vec![0.0; out_features],
            cached_input: None,
        }
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            input_shape.iter().product::<usize>(),
            self.in_features,
            "dense input size mismatch"
        );
        vec![self.out_features]
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.len(), self.in_features, "dense input size mismatch");
        let mut out = Tensor::zeros(&[self.out_features]);
        for o in 0..self.out_features {
            let row = &self.weights.data()[o * self.in_features..(o + 1) * self.in_features];
            let acc: f32 = row
                .iter()
                .zip(input.data())
                .map(|(w, x)| w * x)
                .sum::<f32>()
                + self.bias[o];
            out.data_mut()[o] = acc;
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward without training forward");
        let mut grad_w = self
            .grad_w
            .take()
            .unwrap_or_else(|| Tensor::zeros(self.weights.shape()));
        let mut grad_in = Tensor::zeros(&[self.in_features]);
        for o in 0..self.out_features {
            let g = grad_out.data()[o];
            self.grad_b[o] += g;
            for i in 0..self.in_features {
                grad_w.data_mut()[o * self.in_features + i] += g * input.data()[i];
                grad_in.data_mut()[i] += g * self.weights.data()[o * self.in_features + i];
            }
        }
        self.grad_w = Some(grad_w);
        grad_in
    }

    fn apply_gradients(&mut self, lr: f32) {
        if let Some(gw) = self.grad_w.take() {
            for (w, g) in self.weights.data_mut().iter_mut().zip(gw.data()) {
                *w -= lr * g;
            }
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_b) {
            *b -= lr * g;
        }
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn flops(&self, _input_shape: &[usize]) -> u64 {
        (self.in_features * self.out_features) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a layer with a scalar loss
    /// `L = sum(forward(x))`.
    fn grad_check<L: Layer>(layer: &mut L, input: &Tensor, tol: f32) {
        let out = layer.forward(input, true);
        let ones = Tensor::from_vec(out.shape(), vec![1.0; out.len()]);
        let analytic = layer.backward(&ones);
        let eps = 1e-2f32;
        for i in (0..input.len()).step_by((input.len() / 16).max(1)) {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let lp: f32 = layer.forward(&plus, false).data().iter().sum();
            let lm: f32 = layer.forward(&minus, false).data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (numeric - a).abs() < tol * (1.0 + numeric.abs().max(a.abs())),
                "grad mismatch at {i}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn conv_shapes_and_flops() {
        let c = Conv2d::new(3, 8, 3, 1);
        assert_eq!(c.output_shape(&[3, 16, 16]), vec![8, 16, 16]);
        assert_eq!(c.param_count(), 8 * 3 * 3 * 3 + 8);
        assert_eq!(c.flops(&[3, 16, 16]), 8 * 16 * 16 * 3 * 9);
    }

    #[test]
    fn conv_gradient_check() {
        let mut c = Conv2d::new(2, 3, 3, 7);
        let input = Tensor::he_init(&[2, 6, 6], 4, 99);
        grad_check(&mut c, &input, 1e-2);
    }

    #[test]
    fn dense_gradient_check() {
        let mut d = Dense::new(12, 5, 3);
        let input = Tensor::he_init(&[12], 12, 5);
        grad_check(&mut d, &input, 1e-2);
    }

    #[test]
    fn relu_masks_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn maxpool_selects_maximum_and_routes_gradient() {
        let mut p = MaxPool2::new();
        let x = Tensor::from_vec(
            &[1, 2, 2],
            vec![1.0, 5.0, 2.0, 3.0], // max is 5 at (0,0,1)
        );
        let y = p.forward(&x, true);
        assert_eq!(y.data(), &[5.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1], vec![2.0]));
        assert_eq!(g.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::he_init(&[2, 3, 4], 4, 11);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[24]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 3, 4]);
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn dense_learns_with_sgd() {
        // Fit y = sum(x) with a single output neuron.
        let mut d = Dense::new(4, 1, 13);
        let mut rng_state = 1u64;
        let mut next = || {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        for _ in 0..800 {
            let x = Tensor::from_vec(&[4], (0..4).map(|_| next()).collect());
            let target: f32 = x.data().iter().sum();
            let y = d.forward(&x, true);
            let err = y.data()[0] - target;
            let grad = Tensor::from_vec(&[1], vec![2.0 * err]);
            d.backward(&grad);
            d.apply_gradients(0.05);
        }
        let x = Tensor::from_vec(&[4], vec![0.3, -0.2, 0.1, 0.4]);
        let y = d.forward(&x, false);
        assert!(
            (y.data()[0] - 0.6).abs() < 0.05,
            "dense layer failed to fit sum: {}",
            y.data()[0]
        );
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_rejects_wrong_channels() {
        let c = Conv2d::new(3, 8, 3, 1);
        let _ = c.output_shape(&[4, 16, 16]);
    }
}
