//! A minimal dense f32 tensor.
//!
//! Shapes are row-major; the inference engine uses rank-1 (`[n]`) and rank-3
//! (`[channels, height, width]`) tensors. This is deliberately simple: the
//! NN substrate only needs enough machinery to run and train a small object
//! classifier and to expose activation sizes for edge/cloud partitioning.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dense row-major f32 tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero"
        );
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Builds from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length does not match shape"
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// He-initialized random tensor (normal with stddev sqrt(2/fan_in)),
    /// deterministic in `seed`.
    pub fn he_init(shape: &[usize], fan_in: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| {
                // Box-Muller.
                let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
                let u2: f32 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect();
        Self::from_vec(shape, data)
    }

    /// The tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes when transferred between tiers (4 bytes/element).
    pub fn byte_size(&self) -> usize {
        self.data.len() * 4
    }

    /// Flat immutable data access.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a rank-3 index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-3 or the index is out of bounds.
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        assert_eq!(self.shape.len(), 3, "at3 requires a rank-3 tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[c * h * w + y * w + x]
    }

    /// Sets an element at a rank-3 index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank-3 or the index is out of bounds.
    pub fn set3(&mut self, c: usize, y: usize, x: usize, v: f32) {
        assert_eq!(self.shape.len(), 3, "set3 requires a rank-3 tensor");
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[c * h * w + y * w + x] = v;
    }

    /// Reshapes without copying.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Index of the maximum element (ties resolve to the first).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::zeros(&[3, 4, 5]);
        assert_eq!(t.shape(), &[3, 4, 5]);
        assert_eq!(t.len(), 60);
        assert_eq!(t.byte_size(), 240);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_validates() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 5]);
    }

    #[test]
    fn at3_set3_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set3(1, 2, 3, 7.5);
        assert_eq!(t.at3(1, 2, 3), 7.5);
        assert_eq!(t.at3(0, 0, 0), 0.0);
    }

    #[test]
    fn he_init_deterministic_and_scaled() {
        let a = Tensor::he_init(&[64, 64], 64, 42);
        let b = Tensor::he_init(&[64, 64], 64, 42);
        assert_eq!(a, b);
        let var: f32 = a.data().iter().map(|v| v * v).sum::<f32>() / a.len() as f32;
        let expect = 2.0 / 64.0;
        assert!(
            (var - expect).abs() < expect,
            "variance {var} far from He target {expect}"
        );
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let r = t.clone().reshape(&[6]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.shape(), &[6]);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_validates() {
        let _ = Tensor::zeros(&[4]).reshape(&[5]);
    }

    #[test]
    fn argmax_finds_peak() {
        let t = Tensor::from_vec(&[5], vec![0.1, 3.0, -2.0, 3.0, 1.0]);
        assert_eq!(t.argmax(), 1, "first of tied maxima");
    }
}
