//! Object detectors: the trained CNN and the ground-truth oracle.
//!
//! The paper's event-detection accuracy metric treats the reference NN as
//! correct on every frame it sees (labels come from the dataset's ground
//! truth), so the accuracy experiments (Fig 3, Table II) use
//! [`OracleDetector`]. The end-to-end experiments (Fig 4/5) only depend on
//! the NN's *cost* and activation sizes, for which [`CnnDetector`] runs a
//! real trained network.

use sieve_datasets::{LabelSet, ObjectClass, SyntheticVideo};
use sieve_video::{Frame, Resolution};

use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};
use crate::model::Sequential;
use crate::tensor::Tensor;
use crate::train::{self, Sample, TrainConfig};

/// Per-frame object detection.
pub trait ObjectDetector {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// Detects the label set of `frame`, which is frame number `index` of
    /// the video being analysed (oracles use the index; CNNs use pixels).
    fn detect(&mut self, index: usize, frame: &Frame) -> LabelSet;
}

/// A detector that returns the dataset's ground-truth labels — the paper's
/// assumption that the reference NN (YOLOv3) is correct on decoded frames.
#[derive(Debug, Clone)]
pub struct OracleDetector {
    labels: Vec<LabelSet>,
}

impl OracleDetector {
    /// Builds an oracle from per-frame ground truth.
    pub fn new(labels: Vec<LabelSet>) -> Self {
        Self { labels }
    }

    /// Builds an oracle for a synthetic video.
    pub fn for_video(video: &SyntheticVideo) -> Self {
        Self::new(video.labels().to_vec())
    }
}

impl ObjectDetector for OracleDetector {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn detect(&mut self, index: usize, _frame: &Frame) -> LabelSet {
        self.labels.get(index).copied().unwrap_or_default()
    }
}

/// Side length of the CNN input (frames are box-downscaled to this square,
/// the analogue of resizing to the YOLO input resolution).
pub const CNN_INPUT_SIZE: u32 = 32;

/// Builds the reference classifier: a small conv net over
/// `[3, CNN_INPUT_SIZE, CNN_INPUT_SIZE]` inputs with one logit per
/// [`ObjectClass`].
pub fn reference_model(seed: u64) -> Sequential {
    let s = CNN_INPUT_SIZE as usize;
    Sequential::new()
        .push(Box::new(Conv2d::new(3, 8, 3, seed)))
        .push(Box::new(Relu::new()))
        .push(Box::new(MaxPool2::new()))
        .push(Box::new(Conv2d::new(8, 16, 3, seed ^ 1)))
        .push(Box::new(Relu::new()))
        .push(Box::new(MaxPool2::new()))
        .push(Box::new(Flatten::new()))
        .push(Box::new(Dense::new(16 * (s / 4) * (s / 4), 32, seed ^ 2)))
        .push(Box::new(Relu::new()))
        .push(Box::new(Dense::new(32, ObjectClass::ALL.len(), seed ^ 3)))
}

/// Converts a frame into the CNN's input tensor: downscale to
/// `CNN_INPUT_SIZE` square and normalize Y/U/V planes to roughly `[-1, 1]`.
pub fn frame_to_tensor(frame: &Frame) -> Tensor {
    let s = CNN_INPUT_SIZE as usize;
    let small = frame.resize(Resolution::new(CNN_INPUT_SIZE, CNN_INPUT_SIZE));
    let mut t = Tensor::zeros(&[3, s, s]);
    for y in 0..s {
        for x in 0..s {
            t.set3(0, y, x, small.y().sample(x, y) as f32 / 127.5 - 1.0);
            let (cx, cy) = (x / 2, y / 2);
            t.set3(1, y, x, small.u().sample(cx, cy) as f32 / 127.5 - 1.0);
            t.set3(2, y, x, small.v().sample(cx, cy) as f32 / 127.5 - 1.0);
        }
    }
    t
}

/// Turns a label set into per-class binary targets.
pub fn labels_to_targets(labels: LabelSet) -> Vec<f32> {
    ObjectClass::ALL
        .iter()
        .map(|&c| if labels.contains(c) { 1.0 } else { 0.0 })
        .collect()
}

/// Builds training samples by subsampling every `stride`-th frame of a
/// synthetic video.
pub fn samples_from_video(video: &SyntheticVideo, stride: usize) -> Vec<Sample> {
    (0..video.frame_count())
        .step_by(stride.max(1))
        .map(|i| Sample {
            input: frame_to_tensor(&video.frame(i)),
            targets: labels_to_targets(video.labels()[i]),
        })
        .collect()
}

/// A trained CNN detector.
#[derive(Debug)]
pub struct CnnDetector {
    model: Sequential,
    threshold: f32,
}

impl CnnDetector {
    /// Wraps a trained model.
    pub fn new(model: Sequential) -> Self {
        Self {
            model,
            threshold: 0.5,
        }
    }

    /// Trains the reference model on a video's labelled frames.
    pub fn train_on(video: &SyntheticVideo, stride: usize, config: &TrainConfig) -> Self {
        let samples = samples_from_video(video, stride);
        let mut model = reference_model(config.seed);
        train::train_multilabel(&mut model, &samples, config);
        Self::new(model)
    }

    /// The underlying model (for partitioning / cost analysis).
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access to the underlying model.
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Exact-set accuracy against ground truth over every `stride`-th frame.
    pub fn accuracy_on(&mut self, video: &SyntheticVideo, stride: usize) -> f64 {
        let samples = samples_from_video(video, stride);
        train::evaluate_multilabel(&mut self.model, &samples, self.threshold)
    }
}

impl ObjectDetector for CnnDetector {
    fn name(&self) -> &'static str {
        "cnn"
    }

    fn detect(&mut self, _index: usize, frame: &Frame) -> LabelSet {
        let input = frame_to_tensor(frame);
        let probs = train::predict_probs(&mut self.model, &input);
        let mut labels = LabelSet::empty();
        for (i, &p) in probs.iter().enumerate() {
            if p > self.threshold {
                if let Some(c) = ObjectClass::from_bit(i as u8) {
                    labels.insert(c);
                }
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};

    #[test]
    fn oracle_returns_ground_truth() {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let mut oracle = OracleDetector::for_video(&video);
        let f = video.frame(0);
        for i in [0usize, 100, 400] {
            assert_eq!(oracle.detect(i, &f), video.labels()[i]);
        }
        // Out of range -> empty.
        assert_eq!(oracle.detect(10_000, &f), LabelSet::empty());
    }

    #[test]
    fn frame_tensor_shape_and_range() {
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let t = frame_to_tensor(&video.frame(0));
        assert_eq!(t.shape(), &[3, 32, 32]);
        assert!(t.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn targets_encode_labels() {
        let l = LabelSet::from_classes([ObjectClass::Car, ObjectClass::Boat]);
        let t = labels_to_targets(l);
        assert_eq!(t, vec![1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn reference_model_output_matches_class_count() {
        let mut m = reference_model(3);
        let x = Tensor::zeros(&[3, 32, 32]);
        assert_eq!(m.forward(&x).len(), 5);
        assert!(m.param_count() > 1000);
    }

    #[test]
    fn cnn_learns_presence_vs_absence() {
        // Train briefly on a tiny dataset; the CNN should at least beat the
        // trivial always-empty predictor on frames it trained on.
        let spec = DatasetSpec::of(DatasetId::JacksonSquare);
        let video = spec.generate(DatasetScale::Tiny);
        let cfg = TrainConfig {
            epochs: 4,
            lr: 0.05,
            seed: 11,
        };
        let mut det = CnnDetector::train_on(&video, 12, &cfg);
        let acc = det.accuracy_on(&video, 12);
        // Baseline: fraction of empty-label frames.
        let empty_frac = video.labels().iter().filter(|l| l.is_empty()).count() as f64
            / video.frame_count() as f64;
        assert!(
            acc > empty_frac.max(0.5),
            "trained accuracy {acc:.3} should beat empty-set baseline {empty_frac:.3}"
        );
    }
}
