//! Neurosurgeon-style layer partitioning across edge and cloud.
//!
//! The paper's NN-deployment service either places all layers on one tier or
//! splits the network: the edge runs a prefix, ships the intermediate
//! activation over the WAN, and the cloud runs the suffix. The best split
//! minimizes `edge_compute + transfer + cloud_compute` per frame, exactly the
//! latency model of Kang et al.'s Neurosurgeon (reference \[8\] in the paper).

use serde::{Deserialize, Serialize};

use crate::model::Sequential;

/// Where the network's layers run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// All layers on the edge; only the final labels go to the cloud.
    EdgeOnly,
    /// All layers in the cloud; the (resized) frame goes over the WAN.
    CloudOnly,
    /// Layers `0..split` on the edge, `split..` in the cloud.
    Split(usize),
}

/// Capability description of the two tiers and the link between them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Edge compute throughput in FLOP/s.
    pub edge_flops_per_sec: f64,
    /// Cloud compute throughput in FLOP/s.
    pub cloud_flops_per_sec: f64,
    /// Edge-to-cloud bandwidth in bytes/s.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way network latency in seconds added to any transfer.
    pub link_latency_secs: f64,
}

impl TierSpec {
    /// The paper's testbed shape: a desktop-class edge, a faster cloud
    /// server, and a 30 Mbps WAN.
    pub fn paper_default() -> Self {
        Self {
            edge_flops_per_sec: 2.0e9,
            cloud_flops_per_sec: 8.0e9,
            bandwidth_bytes_per_sec: 30.0e6 / 8.0,
            link_latency_secs: 0.02,
        }
    }
}

/// Latency breakdown of one candidate split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitCost {
    /// Layers `0..split` run on the edge.
    pub split: usize,
    /// Edge compute seconds per frame.
    pub edge_secs: f64,
    /// Transfer seconds per frame (activation bytes / bandwidth + latency).
    pub transfer_secs: f64,
    /// Cloud compute seconds per frame.
    pub cloud_secs: f64,
    /// Bytes crossing the WAN per frame.
    pub transfer_bytes: usize,
}

impl SplitCost {
    /// Total per-frame latency.
    pub fn total_secs(&self) -> f64 {
        self.edge_secs + self.transfer_secs + self.cloud_secs
    }
}

/// Evaluates every split point of `model` for `input_shape` under `tiers`.
///
/// Split 0 is cloud-only (the input itself is shipped); split `len` is
/// edge-only (only the final activation is shipped).
pub fn split_costs(model: &Sequential, input_shape: &[usize], tiers: &TierSpec) -> Vec<SplitCost> {
    let flops = model.layer_flops(input_shape);
    let act_bytes = model.activation_bytes(input_shape);
    let mut out = Vec::with_capacity(model.len() + 1);
    for split in 0..=model.len() {
        let edge_flops: u64 = flops[..split].iter().sum();
        let cloud_flops: u64 = flops[split..].iter().sum();
        let transfer_bytes = act_bytes[split];
        out.push(SplitCost {
            split,
            edge_secs: edge_flops as f64 / tiers.edge_flops_per_sec,
            transfer_secs: transfer_bytes as f64 / tiers.bandwidth_bytes_per_sec
                + tiers.link_latency_secs,
            cloud_secs: cloud_flops as f64 / tiers.cloud_flops_per_sec,
            transfer_bytes,
        })
    }
    out
}

/// Picks the split with the lowest total latency.
pub fn best_split(model: &Sequential, input_shape: &[usize], tiers: &TierSpec) -> SplitCost {
    split_costs(model, input_shape, tiers)
        .into_iter()
        .min_by(|a, b| {
            a.total_secs()
                .partial_cmp(&b.total_secs())
                .expect("latencies are finite")
        })
        .expect("a model always has at least the trivial splits")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu};

    fn model() -> Sequential {
        Sequential::new()
            .push(Box::new(Conv2d::new(3, 8, 3, 1)))
            .push(Box::new(Relu::new()))
            .push(Box::new(MaxPool2::new()))
            .push(Box::new(Conv2d::new(8, 16, 3, 2)))
            .push(Box::new(Relu::new()))
            .push(Box::new(MaxPool2::new()))
            .push(Box::new(Flatten::new()))
            .push(Box::new(Dense::new(16 * 8 * 8, 5, 3)))
    }

    const INPUT: [usize; 3] = [3, 32, 32];

    #[test]
    fn split_costs_cover_all_points() {
        let m = model();
        let costs = split_costs(&m, &INPUT, &TierSpec::paper_default());
        assert_eq!(costs.len(), m.len() + 1);
        // Split 0: no edge compute; split len: no cloud compute.
        assert_eq!(costs[0].edge_secs, 0.0);
        assert_eq!(costs[m.len()].cloud_secs, 0.0);
    }

    #[test]
    fn compute_is_conserved_across_splits() {
        let m = model();
        let tiers = TierSpec {
            edge_flops_per_sec: 1.0,
            cloud_flops_per_sec: 1.0,
            bandwidth_bytes_per_sec: 1.0,
            link_latency_secs: 0.0,
        };
        let costs = split_costs(&m, &INPUT, &tiers);
        let total = m.total_flops(&INPUT) as f64;
        for c in &costs {
            assert!(
                (c.edge_secs + c.cloud_secs - total).abs() < 1e-6,
                "edge+cloud compute must equal total FLOPs at unit speed"
            );
        }
    }

    #[test]
    fn transfer_bytes_shrink_after_pooling() {
        let m = model();
        let costs = split_costs(&m, &INPUT, &TierSpec::paper_default());
        // After the second pool (layer 6 boundary) activations are smaller
        // than the raw input.
        assert!(costs[6].transfer_bytes < costs[0].transfer_bytes);
    }

    #[test]
    fn slow_network_pushes_split_deeper() {
        let m = model();
        let fast_net = TierSpec {
            bandwidth_bytes_per_sec: 1e9,
            ..TierSpec::paper_default()
        };
        let slow_net = TierSpec {
            bandwidth_bytes_per_sec: 1e4,
            ..TierSpec::paper_default()
        };
        let fast = best_split(&m, &INPUT, &fast_net);
        let slow = best_split(&m, &INPUT, &slow_net);
        assert!(
            slow.split >= fast.split,
            "a slower WAN should never move the split earlier (fast {} vs slow {})",
            fast.split,
            slow.split
        );
        // On a very slow network, ship as little as possible.
        let bytes = m.activation_bytes(&INPUT);
        let min_bytes = bytes.iter().min().unwrap();
        assert_eq!(slow.transfer_bytes, *min_bytes);
    }

    #[test]
    fn infinite_cloud_speed_prefers_early_split() {
        let m = model();
        let tiers = TierSpec {
            edge_flops_per_sec: 1e6, // very weak edge
            cloud_flops_per_sec: 1e15,
            bandwidth_bytes_per_sec: 1e9,
            link_latency_secs: 0.0,
        };
        let best = best_split(&m, &INPUT, &tiers);
        assert_eq!(best.split, 0, "weak edge + fast net = run all in cloud");
    }

    #[test]
    fn total_is_sum_of_parts() {
        let m = model();
        let c = best_split(&m, &INPUT, &TierSpec::paper_default());
        assert!((c.total_secs() - (c.edge_secs + c.transfer_secs + c.cloud_secs)).abs() < 1e-12);
    }
}
