//! End-to-end GOP-parallel encode audit on the synthetic eval scenes.
//!
//! The unit tests in `sieve_video::parallel` cover byte-identity on small
//! hand-built frames; this umbrella test runs the real pipeline the bench
//! and harness use — `sieve_datasets` scenes through [`EncodedVideo`] — and
//! checks that for every worker count the parallel bitstream is
//! byte-identical to the sequential encoder's and still decodes.

use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_video::{EncodedVideo, EncoderConfig, Frame, FrameType};

const FRAME_CAP: usize = 40;

fn scene_frames(id: DatasetId) -> (Vec<Frame>, sieve_video::Resolution, u32) {
    let spec = DatasetSpec::of(id);
    let video = spec.generate(DatasetScale::Tiny);
    let n = video.frame_count().min(FRAME_CAP);
    let frames: Vec<Frame> = (0..n).map(|i| video.frame(i)).collect();
    (frames, video.resolution(), video.fps())
}

#[test]
fn gop_parallel_is_byte_identical_on_eval_scenes() {
    // A short keyframe interval guarantees several GOPs inside the frame
    // cap, so worker counts above 1 genuinely split the work.
    let config = EncoderConfig::new(8, 120);

    for id in [DatasetId::JacksonSquare, DatasetId::CoralReef] {
        let (frames, res, fps) = scene_frames(id);
        let sequential = EncodedVideo::encode(res, fps, config, frames.iter().cloned());
        let i_frames = sequential
            .frames()
            .iter()
            .filter(|f| f.frame_type == FrameType::I)
            .count();
        assert!(
            i_frames >= 2,
            "{id:?}: expected several GOPs, got {i_frames}"
        );

        for workers in [1, 2, 5] {
            let parallel = EncodedVideo::encode_parallel(res, fps, config, &frames, workers);
            assert_eq!(
                parallel.frame_count(),
                sequential.frame_count(),
                "{id:?} w={workers}: frame count"
            );
            for (i, (s, p)) in sequential
                .frames()
                .iter()
                .zip(parallel.frames())
                .enumerate()
            {
                assert_eq!(
                    s.frame_type, p.frame_type,
                    "{id:?} w={workers}: frame {i} type"
                );
                assert_eq!(s.data, p.data, "{id:?} w={workers}: frame {i} payload");
            }
        }
    }
}

#[test]
fn parallel_bitstream_roundtrips_through_the_decoder() {
    let (frames, res, fps) = scene_frames(DatasetId::JacksonSquare);
    let config = EncoderConfig::new(8, 120);
    let encoded = EncodedVideo::encode_parallel(res, fps, config, &frames, 4);
    let decoded = encoded.decode_all().expect("parallel bitstream decodes");
    assert_eq!(decoded.len(), frames.len());
    for (i, f) in decoded.iter().enumerate() {
        assert_eq!(f.resolution(), res, "frame {i} resolution");
    }
}
