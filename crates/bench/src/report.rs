//! Small text-table helpers shared by the experiment harnesses.

/// Formats a row of columns with fixed widths, right-aligning numbers.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>width$}", width = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Renders a full table: header, separator, rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for r in rows {
        out.push_str(&row(r, &widths));
        out.push('\n');
    }
    out
}

/// Percentage with one decimal ("98.3%").
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Bytes as human-readable GB/MB/KB.
pub fn bytes_h(b: u64) -> String {
    const GB: f64 = 1e9;
    const MB: f64 = 1e6;
    const KB: f64 = 1e3;
    let b = b as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.2} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.983), "98.3%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn bytes_scale() {
        assert_eq!(bytes_h(500), "500 B");
        assert_eq!(bytes_h(2_500), "2.5 KB");
        assert_eq!(bytes_h(3_200_000), "3.20 MB");
        assert_eq!(bytes_h(12_260_000_000), "12.26 GB");
    }
}
