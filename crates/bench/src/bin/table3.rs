//! Table III: speed of event detection (frames per second).
//!
//! Measures, on this machine, how many frames per second each event
//! detector sustains: SiEVE's metadata seek + independent I-frame decode
//! vs full-decode + MSE vs full-decode + SIFT. Absolute numbers depend on
//! the host; the paper's *shape* is 2-3 orders of magnitude in SiEVE's
//! favour, with MSE ahead of SIFT.

use sieve_bench::harness::{harness_grid, Prepared};
use sieve_bench::report::table;
use sieve_bench::scale_from_args;
use sieve_datasets::DatasetId;

fn main() {
    let scale = scale_from_args();
    println!("Table III: speed of event detection in frames/second (scale = {scale:?})\n");
    let mut rows = Vec::new();
    for id in DatasetId::LABELLED {
        let prepared = Prepared::new(id, scale);
        let tuned = prepared.tune_train(&harness_grid());
        let row = sieve_bench::harness::speed_of_event_detection(&prepared, tuned, 60);
        rows.push(vec![
            row.dataset.clone(),
            row.resolution.to_string(),
            format!("{:.0}", row.sieve_fps),
            format!("{:.0}", row.mse_fps),
            format!("{:.0}", row.sift_fps),
            format!("{:.0}x", row.sieve_fps / row.mse_fps),
            format!("{:.0}x", row.sieve_fps / row.sift_fps),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Dataset",
                "Resolution",
                "SiEVE",
                "MSE",
                "SIFT",
                "vs MSE",
                "vs SIFT"
            ],
            &rows
        )
    );
    println!(
        "(Paper: SiEVE 2 300-19 600 fps vs MSE 22-157 fps and SIFT 16-115 \
         fps — a 100-170x speedup. Expect the same orders of magnitude.)"
    );
}
