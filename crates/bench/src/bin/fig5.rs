//! Fig 5: total data transfer per link for each baseline.
//!
//! Reports the bytes crossing camera→edge and edge→cloud when the five
//! baselines process all five videos (the paper's 20-hour, 2.16M-frame
//! corpus, extrapolated from measured per-frame stream sizes).

use sieve_bench::harness::build_workloads;
use sieve_bench::report::{bytes_h, table};
use sieve_bench::scale_from_args;
use sieve_core::{simulate_all, Baseline};

/// Frames per video: the paper's 4 hours at 30 fps (5 videos = 2.16M).
const FRAMES_PER_VIDEO: usize = 4 * 3600 * 30;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig 5: data transferred per link over 5 videos x {FRAMES_PER_VIDEO} \
         frames (scale = {scale:?})\n"
    );
    let workloads = build_workloads(scale, FRAMES_PER_VIDEO);
    let outcomes = simulate_all(&workloads, &sieve_bench::harness::post_event_topology());

    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.baseline.label().to_string(),
                bytes_h(o.camera_edge_bytes),
                bytes_h(o.edge_cloud_bytes),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["Baseline", "Camera->Edge", "Edge->Cloud"], &rows)
    );

    let sieve = &outcomes[0];
    let cloud_all = outcomes
        .iter()
        .find(|o| o.baseline == Baseline::IFrameCloudCloudNn)
        .expect("simulated");
    let mse = outcomes
        .iter()
        .find(|o| o.baseline == Baseline::MseEdgeCloudNn)
        .expect("simulated");
    println!(
        "\nedge->cloud reduction of SiEVE vs shipping the whole stream: {:.1}x \
         ({} -> {})",
        cloud_all.edge_cloud_bytes as f64 / sieve.edge_cloud_bytes.max(1) as f64,
        bytes_h(cloud_all.edge_cloud_bytes),
        bytes_h(sieve.edge_cloud_bytes),
    );
    println!(
        "MSE ships {:.1}x more edge->cloud bytes than I-frame seeking",
        mse.edge_cloud_bytes as f64 / sieve.edge_cloud_bytes.max(1) as f64
    );
    println!(
        "semantic re-encoding inflates camera->edge by {:.0}% over the default \
         encoding",
        100.0 * (sieve.camera_edge_bytes as f64 / mse.camera_edge_bytes as f64 - 1.0)
    );
    println!(
        "\n(Paper shape: ~7x edge->cloud reduction, MSE ~2.5x above I-frames, \
         camera->edge ~12% larger for semantic streams.)"
    );
}
