//! Fleet scaling: aggregate edge throughput as concurrent streams grow on
//! a fixed-size worker pool, plus the skewed-workload comparison that
//! justifies work stealing.
//!
//! For each fleet size the harness admits N heterogeneous synthetic
//! streams (the five Table I datasets cycled, per-stream seeds derived
//! from `(fleet_seed, stream_id)`, staggered GOP cadences), feeds them
//! from concurrent camera threads through bounded per-stream queues, and
//! reports wall time, aggregate frames/second, the kept fraction, the
//! shed rate, p99 decision latency and — for the adaptive streams — how
//! far the on-line controller landed from its target sampling rate. The
//! camera mix places the adaptive MSE stream *first*, so every fleet size
//! (including 1) has a real `worst_rate_err`.
//!
//! After the sweep, a **skewed** 256-stream workload — every hot
//! (full-decode, high-keep) camera hashed to shard 0 by construction, via
//! the public [`sieve_fleet::shard_of`] — is served twice: once by the
//! thread-per-shard round-robin baseline (stealing and priority lanes
//! off) and once by the work-stealing, priority-aware runtime. Both p99
//! decision latency and shed rate are expected to improve; the comparison
//! is serialized alongside the sweep.
//!
//! Results land in `BENCH_fleet_scale.json` at the repository root,
//! schema-validated by [`sieve_bench::fleet_artifact`] so CI (or a later
//! session) can diff throughput against this run.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fleet_scale`
//! (`--scale small` for longer streams, `--shards N` for the pool size,
//! `--frames N` to override frames/stream — the CI smoke uses a small
//! override, `--huge` to extend the sweep to 1024 streams).

use criterion::Criterion;
use sieve_bench::fleet_artifact::{
    validate, BenchArtifact, BenchPoint, Overhead, OverheadRun, SkewedComparison, SkewedRun,
};
use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_core::{FrameSelector, IFrameSelector};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_filters::{Budget, MseSelector, UniformSelector};
use sieve_fleet::{shard_of, Fleet, FleetConfig, FleetReport, FramePacket, Ingest, StreamConfig};
use sieve_video::{EncodedVideo, EncoderConfig};

const FLEET_SEED: u64 = 0x51EE_E00D;
const TARGET_RATE: f64 = 0.1;
const SAMPLES: usize = 3;
const SKEWED_STREAMS: usize = 256;
const OVERHEAD_STREAMS: usize = 16;
const OVERHEAD_SAMPLES: usize = 5;

/// Where the serialized results land: the workspace root, two levels up
/// from this crate's manifest.
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");

fn usize_flag(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One pre-encoded synthetic camera.
struct Camera {
    name: String,
    encoded: EncodedVideo,
    selector: Box<dyn FrameSelector + Send>,
    target_rate: Option<f64>,
    priority_hint: Option<f64>,
}

/// The heterogeneous sweep mix. The adaptive MSE stream sits at `i % 3 ==
/// 0` so even a 1-stream fleet carries the on-line controller and the
/// artifact's `worst_rate_err` is always a real number.
fn cameras(n: usize, scale: DatasetScale, frames: usize) -> Vec<Camera> {
    (0..n)
        .map(|i| {
            let dataset = DatasetId::ALL[i % DatasetId::ALL.len()];
            let spec = DatasetSpec::for_stream(dataset, FLEET_SEED, i as u64);
            let video = spec.generate(scale);
            let gop = 60 + 30 * (i % 4); // staggered scenecut cadences
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 120),
                video.frames().take(frames),
            );
            let (selector, target_rate): (Box<dyn FrameSelector + Send>, Option<f64>) = match i % 3
            {
                0 => (
                    Box::new(MseSelector::mse(Budget::TargetRate(TARGET_RATE))),
                    Some(TARGET_RATE),
                ),
                1 => (Box::new(IFrameSelector::new()), None),
                _ => (Box::new(UniformSelector::new(10)), None),
            };
            Camera {
                name: format!("{dataset}#{i}"),
                encoded,
                selector,
                target_rate,
                priority_hint: None,
            }
        })
        .collect()
}

/// The skewed (hot-camera) workload: every stream whose home shard — a
/// pure function of its join order via [`shard_of`] — is shard 0 becomes
/// *hot*: a full-decode MSE policy keeping over half its frames, the most
/// expensive stream the fleet can host. Everything else is a near-idle
/// I-frame seeker with a long GOP. Round-robin leaves shards 1.. mostly
/// idle while shard 0 drowns; stealing is supposed to fix exactly this.
fn skewed_cameras(n: usize, shards: usize, scale: DatasetScale, frames: usize) -> Vec<Camera> {
    (0..n)
        .map(|i| {
            let hot = shard_of(i as u64, shards) == 0;
            let dataset = DatasetId::ALL[i % DatasetId::ALL.len()];
            let spec = DatasetSpec::for_stream(dataset, FLEET_SEED ^ 0xA5A5, i as u64);
            let video = spec.generate(scale);
            let gop = if hot { 60 } else { 120 };
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 120),
                video.frames().take(frames),
            );
            let (selector, target_rate): (Box<dyn FrameSelector + Send>, Option<f64>) = if hot {
                (
                    Box::new(MseSelector::mse(Budget::TargetRate(0.6))),
                    Some(0.6),
                )
            } else {
                (Box::new(IFrameSelector::new()), None)
            };
            Camera {
                name: format!("{}{dataset}#{i}", if hot { "hot-" } else { "" }),
                encoded,
                selector,
                target_rate,
                priority_hint: Some(if hot { 0.6 } else { 0.05 }),
            }
        })
        .collect()
}

/// Serves every camera's frames through a fresh fleet and returns the
/// shutdown report. Concurrent cameras push every frame, re-offering shed
/// frames (with a short back-off) so the numbers reflect full processing
/// of the workload; each refusal still counts as one shed event — the
/// back-pressure signal the table reports.
fn serve(cams: &[Camera], shards: usize, work_stealing: bool, priority_lanes: bool) -> FleetReport {
    serve_with_stats(cams, shards, work_stealing, priority_lanes, true)
}

fn serve_with_stats(
    cams: &[Camera],
    shards: usize,
    work_stealing: bool,
    priority_lanes: bool,
    stats: bool,
) -> FleetReport {
    let fleet = Fleet::new(FleetConfig {
        shards,
        queue_capacity: 16,
        global_frame_budget: 16 * shards.max(1) * 4,
        max_streams: cams.len().max(16),
        work_stealing,
        priority_lanes,
        stats,
    });
    let mut joined = Vec::new();
    for cam in cams {
        let mut cfg = StreamConfig::new(
            cam.name.clone(),
            cam.encoded.resolution(),
            cam.encoded.quality(),
        );
        if let Some(r) = cam.target_rate {
            cfg = cfg.with_target_rate(r);
        }
        if let Some(h) = cam.priority_hint {
            cfg = cfg.with_priority_hint(h);
        }
        joined.push(fleet.join(cam.selector.as_ref(), cfg).expect("admission"));
    }
    std::thread::scope(|scope| {
        for (cam, &id) in cams.iter().zip(&joined) {
            let fleet = &fleet;
            let encoded = &cam.encoded;
            scope.spawn(move || {
                // Exponential back-off on shed: with hundreds of feeders
                // against a saturated fleet, a fixed short retry sleep
                // turns into a syscall storm that starves the workers of
                // CPU; backing off to a few ms keeps the retry pressure
                // (each refusal still counts as one shed event) without
                // drowning the shards.
                let mut backoff_us = 100u64;
                for (i, ef) in encoded.frames().iter().enumerate() {
                    loop {
                        match fleet.push(id, FramePacket::of(i, ef)).expect("push") {
                            Ingest::Queued => {
                                backoff_us = 100;
                                break;
                            }
                            Ingest::Shed(_) => {
                                std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                                backoff_us = (backoff_us * 2).min(5_000);
                            }
                        }
                    }
                }
                fleet.leave(id).expect("leave");
            });
        }
    });
    fleet.shutdown()
}

/// Upper median of an unsorted sample (integer-exact for latency µs).
fn median_u64(values: &[u64]) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Median absolute deviation around [`median_u64`].
fn mad_u64(values: &[u64], median: u64) -> u64 {
    let deviations: Vec<u64> = values.iter().map(|&v| v.abs_diff(median)).collect();
    median_u64(&deviations)
}

fn median_f64(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite wall times"));
    sorted[sorted.len() / 2]
}

/// Serves the same workload `samples` times with the registry mirroring
/// on or off and reduces the runs to robust statistics.
fn overhead_run(cams: &[Camera], shards: usize, stats: bool, samples: usize) -> OverheadRun {
    let mut walls = Vec::with_capacity(samples);
    let mut p99s = Vec::with_capacity(samples);
    for _ in 0..samples {
        let report = serve_with_stats(cams, shards, true, true, stats);
        walls.push(report.wall.as_secs_f64());
        p99s.push(
            report
                .snapshot
                .decision_latency
                .expect("overhead run processed frames")
                .p99_us,
        );
    }
    let median_wall_secs = median_f64(&walls);
    let wall_devs: Vec<f64> = walls.iter().map(|w| (w - median_wall_secs).abs()).collect();
    let median_p99_us = median_u64(&p99s);
    OverheadRun {
        samples,
        median_wall_secs,
        mad_wall_secs: median_f64(&wall_devs),
        median_p99_us,
        mad_p99_us: mad_u64(&p99s, median_p99_us),
    }
}

fn skewed_run(report: &FleetReport) -> SkewedRun {
    let agg = report.snapshot.aggregate;
    let latency = report
        .snapshot
        .decision_latency
        .expect("skewed run processed frames");
    SkewedRun {
        wall_secs: report.wall.as_secs_f64(),
        processed: agg.processed,
        shed: agg.shed,
        shed_rate: agg.shed as f64 / (agg.processed + agg.shed).max(1) as f64,
        p50_decision_latency_us: latency.p50_us,
        p99_decision_latency_us: latency.p99_us,
        stolen: report.snapshot.stolen,
        steal_fail: report.snapshot.steal_fail,
    }
}

fn main() {
    let scale = scale_from_args();
    let shards = usize_flag("--shards").unwrap_or(4);
    let frames = usize_flag("--frames").unwrap_or(match scale {
        DatasetScale::Tiny => 240,
        DatasetScale::Small => 400,
        DatasetScale::Full => 1200,
    });
    let mut sweep = vec![1usize, 4, 16, 64, 256];
    if bool_flag("--huge") {
        sweep.push(1024);
    }
    println!(
        "Fleet scaling: heterogeneous streams on a {shards}-shard pool \
         ({frames} frames/stream at scale = {scale:?}, median of {SAMPLES} \
         serves per point, work stealing + priority lanes on)\n"
    );

    let mut criterion = Criterion::default().sample_size(SAMPLES);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &n in &sweep {
        // Generate and encode the cameras *before* starting the fleet:
        // the timings below measure serving, not content synthesis.
        let cams = cameras(n, scale, frames);
        let mut last: Option<FleetReport> = None;
        let est = criterion
            .bench_estimate(&format!("fleet_scale/streams={n}"), |b| {
                b.iter(|| last = Some(serve(&cams, shards, true, true)))
            })
            .expect("sampled at least once");
        let report = last.expect("at least one serve completed");
        let agg = report.snapshot.aggregate;
        let median_secs = est.median.as_secs_f64();
        let worst_err = report
            .snapshot
            .streams
            .iter()
            .filter_map(|s| s.target_rate.map(|t| ((s.achieved_rate() - t) / t).abs()))
            .fold(f64::NAN, f64::max);
        assert!(
            worst_err.is_finite(),
            "camera mix must include an adaptive stream at every size"
        );
        let shed_rate = agg.shed as f64 / (agg.processed + agg.shed).max(1) as f64;
        let p99 = report
            .snapshot
            .decision_latency
            .expect("sweep processed frames")
            .p99_us;
        rows.push(vec![
            n.to_string(),
            agg.processed.to_string(),
            format!("{median_secs:.2} ± {:.2}", est.mad.as_secs_f64()),
            format!("{:.0}", agg.processed as f64 / median_secs),
            pct(agg.kept as f64 / agg.processed.max(1) as f64),
            pct(shed_rate),
            format!("{p99}"),
            pct(worst_err),
        ]);
        points.push(BenchPoint {
            streams: n,
            samples: est.samples,
            median_secs,
            mad_secs: est.mad.as_secs_f64(),
            median_fps: agg.processed as f64 / median_secs,
            processed: agg.processed,
            kept: agg.kept,
            shed: agg.shed,
            shed_rate,
            p99_decision_latency_us: p99,
            worst_rate_err: worst_err,
        });
    }
    println!(
        "\n{}",
        table(
            &[
                "streams",
                "frames",
                "median wall (s)",
                "agg fps",
                "kept",
                "shed rate",
                "p99 µs",
                "worst |rate err|",
            ],
            &rows
        )
    );
    println!(
        "(Fixed pool: aggregate fps should hold roughly flat as streams \
         multiply until the shards saturate; the shed rate shows \
         back-pressure doing its job. Adaptive streams target \
         {TARGET_RATE} sampling with no offline calibration.)"
    );

    // The counter-overhead A/B: the same workload with the observability
    // plane's registry mirroring on (the default) and off. The per-stream
    // cells always count (snapshots need them); `stats: false` removes
    // only the extra relaxed increments into the shared registry — the
    // exact cost the sieve-stats plane adds to every decision.
    let cams = cameras(OVERHEAD_STREAMS, scale, frames);
    let instrumented = overhead_run(&cams, shards, true, OVERHEAD_SAMPLES);
    let uninstrumented = overhead_run(&cams, shards, false, OVERHEAD_SAMPLES);
    let p99_diff = instrumented
        .median_p99_us
        .abs_diff(uninstrumented.median_p99_us);
    let p99_mad = instrumented.mad_p99_us.max(uninstrumented.mad_p99_us);
    let (lo, hi) = (
        instrumented.median_p99_us.min(uninstrumented.median_p99_us),
        instrumented.median_p99_us.max(uninstrumented.median_p99_us),
    );
    // Within the runs' own noise, or within one power-of-two histogram
    // bucket (the p99 readout's resolution — adjacent buckets differ 2x).
    let p99_within_noise = p99_diff <= p99_mad || hi <= lo.saturating_mul(2);
    println!(
        "\nCounter overhead: {OVERHEAD_STREAMS} streams, {frames} \
         frames/stream, {OVERHEAD_SAMPLES} serves per config"
    );
    let overhead_row = |name: &str, run: &OverheadRun| {
        vec![
            name.into(),
            format!("{:.2} ± {:.2}", run.median_wall_secs, run.mad_wall_secs),
            format!("{} ± {}", run.median_p99_us, run.mad_p99_us),
        ]
    };
    println!(
        "{}",
        table(
            &["config", "median wall (s)", "p99 µs (median ± MAD)"],
            &[
                overhead_row("instrumented", &instrumented),
                overhead_row("uninstrumented", &uninstrumented),
            ]
        )
    );
    println!(
        "instrumented p99 within noise of uninstrumented: {p99_within_noise} \
         (|Δ| = {p99_diff}us, MAD = {p99_mad}us)"
    );

    // The skewed comparison: identical cameras, two scheduler configs.
    let skew_frames = frames.min(120);
    let cams = skewed_cameras(SKEWED_STREAMS, shards, scale, skew_frames);
    let hot_streams = (0..SKEWED_STREAMS)
        .filter(|&i| shard_of(i as u64, shards) == 0)
        .count();
    println!(
        "\nSkewed workload: {SKEWED_STREAMS} streams, {hot_streams} hot \
         (full-decode MSE, all hashed to shard 0), {skew_frames} \
         frames/stream"
    );
    let baseline = skewed_run(&serve(&cams, shards, false, false));
    let stealing = skewed_run(&serve(&cams, shards, true, true));
    println!(
        "{}",
        table(
            &[
                "config",
                "wall (s)",
                "shed rate",
                "p50 µs",
                "p99 µs",
                "stolen"
            ],
            &[
                vec![
                    "round-robin".into(),
                    format!("{:.2}", baseline.wall_secs),
                    pct(baseline.shed_rate),
                    baseline.p50_decision_latency_us.to_string(),
                    baseline.p99_decision_latency_us.to_string(),
                    baseline.stolen.to_string(),
                ],
                vec![
                    "stealing+priority".into(),
                    format!("{:.2}", stealing.wall_secs),
                    pct(stealing.shed_rate),
                    stealing.p50_decision_latency_us.to_string(),
                    stealing.p99_decision_latency_us.to_string(),
                    stealing.stolen.to_string(),
                ],
            ]
        )
    );
    let p99_better = stealing.p99_decision_latency_us <= baseline.p99_decision_latency_us;
    let shed_better = stealing.shed_rate <= baseline.shed_rate;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if p99_better && shed_better {
        println!("stealing beats the round-robin baseline on p99 latency and shed rate");
    } else if cores < 2 {
        // Work stealing adds *capacity*: an idle core absorbs the hot
        // shard's backlog. On a single-core host there is no idle core —
        // total decode work is CPU-bound either way, and redistribution
        // can only smear the hot backlog's queueing delay onto the cold
        // streams. The comparison is still recorded, but the gate is
        // informational here.
        println!(
            "NOTE: single-core host — stealing cannot add capacity, gate is \
             informational (p99 better: {p99_better}, shed better: {shed_better})"
        );
    } else {
        // Don't fail the run (CI smoke uses tiny frame counts where the
        // contrast can vanish into noise); the committed artifact from a
        // full run is the record.
        println!(
            "WARNING: stealing did not beat baseline (p99 better: \
             {p99_better}, shed better: {shed_better})"
        );
    }

    let artifact = BenchArtifact {
        benchmark: "fleet_scale".to_string(),
        scale: format!("{scale:?}"),
        shards,
        frames_per_stream: frames,
        points,
        overhead: Overhead {
            streams: OVERHEAD_STREAMS,
            frames_per_stream: frames,
            instrumented,
            uninstrumented,
            p99_within_noise,
        },
        skewed: SkewedComparison {
            streams: SKEWED_STREAMS,
            hot_streams,
            frames_per_stream: skew_frames,
            baseline,
            stealing,
        },
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes") + "\n";
    validate(&json).expect("generated artifact passes its own schema");
    if bool_flag("--no-artifact") {
        println!("\n--no-artifact: skipping BENCH_fleet_scale.json write");
    } else {
        std::fs::write(ARTIFACT_PATH, json).expect("artifact written");
        println!("\nwrote BENCH_fleet_scale.json");
    }
}
