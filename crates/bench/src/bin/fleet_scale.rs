//! Fleet scaling: aggregate edge throughput as concurrent streams grow on
//! a fixed-size worker pool.
//!
//! For each fleet size the harness admits N heterogeneous synthetic
//! streams (the five Table I datasets cycled, per-stream seeds derived
//! from `(fleet_seed, stream_id)`, staggered GOP cadences), feeds them
//! from concurrent camera threads through bounded per-stream queues, and
//! reports wall time, aggregate frames/second, the kept fraction, shed
//! events and — for the adaptive streams — how far the on-line controller
//! landed from its target sampling rate.
//!
//! Each fleet size is served repeatedly under the criterion shim and the
//! median ± MAD serving time is serialized to `BENCH_fleet_scale.json`
//! at the repository root, so CI (or a later session) can diff
//! throughput against this run.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fleet_scale`
//! (`--scale small` for longer streams, `--shards N` for the pool size).

use criterion::Criterion;
use serde::Serialize;
use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_core::{FrameSelector, IFrameSelector};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_filters::{Budget, MseSelector, UniformSelector};
use sieve_fleet::{Fleet, FleetConfig, FleetReport, FramePacket, Ingest, StreamConfig};
use sieve_video::{EncodedVideo, EncoderConfig};

const FLEET_SEED: u64 = 0x51EE_E00D;
const TARGET_RATE: f64 = 0.1;
const SAMPLES: usize = 3;

/// Where the serialized results land: the workspace root, two levels up
/// from this crate's manifest.
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");

fn shards_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(4)
}

/// One pre-encoded synthetic camera.
struct Camera {
    name: String,
    encoded: EncodedVideo,
    selector: Box<dyn FrameSelector + Send>,
    target_rate: Option<f64>,
}

fn cameras(n: usize, scale: DatasetScale, frames: usize) -> Vec<Camera> {
    (0..n)
        .map(|i| {
            let dataset = DatasetId::ALL[i % DatasetId::ALL.len()];
            let spec = DatasetSpec::for_stream(dataset, FLEET_SEED, i as u64);
            let video = spec.generate(scale);
            let gop = 60 + 30 * (i % 4); // staggered scenecut cadences
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 120),
                video.frames().take(frames),
            );
            let (selector, target_rate): (Box<dyn FrameSelector + Send>, Option<f64>) = match i % 3
            {
                0 => (Box::new(IFrameSelector::new()), None),
                1 => (
                    Box::new(MseSelector::mse(Budget::TargetRate(TARGET_RATE))),
                    Some(TARGET_RATE),
                ),
                _ => (Box::new(UniformSelector::new(10)), None),
            };
            Camera {
                name: format!("{dataset}#{i}"),
                encoded,
                selector,
                target_rate,
            }
        })
        .collect()
}

/// Serves every camera's frames through a fresh fleet and returns the
/// shutdown report. Concurrent cameras push every frame, re-offering shed
/// frames (with a short back-off) so the throughput number reflects full
/// processing of the workload; each refusal still counts as one shed
/// event — the back-pressure signal the table reports.
fn serve(cams: &[Camera], shards: usize) -> FleetReport {
    let fleet = Fleet::new(FleetConfig {
        shards,
        queue_capacity: 16,
        global_frame_budget: 16 * shards.max(1) * 4,
        max_streams: cams.len().max(16),
    });
    let mut joined = Vec::new();
    for cam in cams {
        let mut cfg = StreamConfig::new(
            cam.name.clone(),
            cam.encoded.resolution(),
            cam.encoded.quality(),
        );
        if let Some(r) = cam.target_rate {
            cfg = cfg.with_target_rate(r);
        }
        joined.push(fleet.join(cam.selector.as_ref(), cfg).expect("admission"));
    }
    std::thread::scope(|scope| {
        for (cam, &id) in cams.iter().zip(&joined) {
            let fleet = &fleet;
            let encoded = &cam.encoded;
            scope.spawn(move || {
                for (i, ef) in encoded.frames().iter().enumerate() {
                    loop {
                        match fleet.push(id, FramePacket::of(i, ef)).expect("push") {
                            Ingest::Queued => break,
                            Ingest::Shed(_) => {
                                std::thread::sleep(std::time::Duration::from_micros(200));
                            }
                        }
                    }
                }
                fleet.leave(id).expect("leave");
            });
        }
    });
    fleet.shutdown()
}

/// One serialized operating point: a fleet size with its robust timing
/// estimate and the counters of the final sampled run.
#[derive(Debug, Serialize)]
struct BenchPoint {
    streams: usize,
    samples: usize,
    median_secs: f64,
    mad_secs: f64,
    /// Aggregate frames/second at the median serving time.
    median_fps: f64,
    processed: u64,
    kept: u64,
    shed: u64,
    /// Worst relative |achieved - target| / target over adaptive streams
    /// in the final run, if any stream ran the on-line controller.
    worst_rate_err: Option<f64>,
}

/// The whole artifact written to `BENCH_fleet_scale.json`.
#[derive(Debug, Serialize)]
struct BenchArtifact {
    benchmark: String,
    scale: String,
    shards: usize,
    frames_per_stream: usize,
    points: Vec<BenchPoint>,
}

fn main() {
    let scale = scale_from_args();
    let shards = shards_from_args();
    let frames = match scale {
        DatasetScale::Tiny => 240,
        DatasetScale::Small => 400,
        DatasetScale::Full => 1200,
    };
    println!(
        "Fleet scaling: heterogeneous streams on a {shards}-shard pool \
         ({frames} frames/stream at scale = {scale:?}, median of {SAMPLES} \
         serves per point)\n"
    );

    let mut criterion = Criterion::default().sample_size(SAMPLES);
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for n in [1usize, 4, 8, 16] {
        // Generate and encode the cameras *before* starting the fleet:
        // the timings below measure serving, not content synthesis.
        let cams = cameras(n, scale, frames);
        let mut last: Option<FleetReport> = None;
        let est = criterion
            .bench_estimate(&format!("fleet_scale/streams={n}"), |b| {
                b.iter(|| last = Some(serve(&cams, shards)))
            })
            .expect("sampled at least once");
        let report = last.expect("at least one serve completed");
        let agg = report.snapshot.aggregate;
        let median_secs = est.median.as_secs_f64();
        let adaptive_err: Vec<f64> = report
            .snapshot
            .streams
            .iter()
            .filter_map(|s| s.target_rate.map(|t| ((s.achieved_rate() - t) / t).abs()))
            .collect();
        let worst_err = adaptive_err.iter().cloned().fold(0.0, f64::max);
        rows.push(vec![
            n.to_string(),
            agg.processed.to_string(),
            format!("{median_secs:.2} ± {:.2}", est.mad.as_secs_f64()),
            format!("{:.0}", agg.processed as f64 / median_secs),
            pct(agg.kept as f64 / agg.processed.max(1) as f64),
            agg.shed.to_string(),
            if adaptive_err.is_empty() {
                "-".to_string()
            } else {
                pct(worst_err)
            },
        ]);
        points.push(BenchPoint {
            streams: n,
            samples: est.samples,
            median_secs,
            mad_secs: est.mad.as_secs_f64(),
            median_fps: agg.processed as f64 / median_secs,
            processed: agg.processed,
            kept: agg.kept,
            shed: agg.shed,
            worst_rate_err: (!adaptive_err.is_empty()).then_some(worst_err),
        });
    }
    println!(
        "\n{}",
        table(
            &[
                "streams",
                "frames",
                "median wall (s)",
                "agg fps",
                "kept",
                "refusals (retried)",
                "worst |rate err|",
            ],
            &rows
        )
    );
    println!(
        "(Fixed pool: aggregate fps should hold roughly flat as streams \
         multiply until the shards saturate; shed events show back-pressure \
         doing its job. Adaptive streams target {TARGET_RATE} sampling \
         with no offline calibration.)"
    );

    let artifact = BenchArtifact {
        benchmark: "fleet_scale".to_string(),
        scale: format!("{scale:?}"),
        shards,
        frames_per_stream: frames,
        points,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
    std::fs::write(ARTIFACT_PATH, json + "\n").expect("artifact written");
    println!("\nwrote BENCH_fleet_scale.json");
}
