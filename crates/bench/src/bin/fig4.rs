//! Fig 4: end-to-end throughput (frames/second) of the five baselines.
//!
//! Builds per-video workloads (costs measured on this machine, stream sizes
//! measured from real encodes, frame counts extrapolated to the paper's
//! 4 hours per video), then replays 1, 3 and 5 videos through the
//! tandem-queue simulator on the paper's 3-tier topology (30 Mbps WAN).

use sieve_bench::harness::{build_workloads, end_to_end_sweep};
use sieve_bench::report::table;
use sieve_bench::scale_from_args;
use sieve_core::Baseline;

/// Frames per video: the paper's 4 hours at 30 fps.
const FRAMES_PER_VIDEO: usize = 4 * 3600 * 30;

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig 4: frames/second processed by each baseline (costs calibrated at \
         scale = {scale:?}, {FRAMES_PER_VIDEO} frames/video)\n"
    );
    let workloads = build_workloads(scale, FRAMES_PER_VIDEO);
    let topology = sieve_bench::harness::post_event_topology();
    let sweep = end_to_end_sweep(&workloads, &topology);

    let mut rows = Vec::new();
    for baseline in Baseline::ALL {
        let mut row = vec![baseline.label().to_string()];
        for (k, outcomes) in &sweep {
            let o = outcomes
                .iter()
                .find(|o| o.baseline == baseline)
                .expect("all baselines simulated");
            row.push(format!("{:.0}", o.throughput_fps));
            let _ = k;
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Baseline".to_string())
        .chain(
            sweep
                .iter()
                .map(|(k, _)| format!("{k} video{} (fps)", if *k == 1 { "" } else { "s" })),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("{}", table(&header_refs, &rows));
    println!(
        "(Paper shape: the three semantic-encoding baselines dominate, and \
         the 3-tier 'I-frame edge + Cloud NN' wins overall; uniform sampling \
         and MSE are bounded by full-stream decoding at the edge.)"
    );
}
