//! Ablations beyond the paper's headline experiments:
//!
//! 1. scenecut sweep at fixed GOP — the sensitivity knob in isolation;
//! 2. GOP sweep at fixed scenecut — what blind keyframing alone achieves;
//! 3. object size vs tuned scenecut — the paper's per-camera-tuning
//!    rationale (smaller objects need more sensitive thresholds);
//! 4. NN split point vs WAN bandwidth — the deployment service's other
//!    option (Neurosurgeon-style partitioning).

use sieve_bench::harness::Prepared;
use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_core::{score_encoding, IFrameSeeker};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_nn::{best_split, reference_model, TierSpec};
use sieve_video::EncoderConfig;

fn main() {
    let scale = scale_from_args();
    scenecut_sweep(scale);
    gop_sweep(scale);
    object_size_vs_scenecut(scale);
    nn_split_vs_bandwidth();
}

fn scenecut_sweep(scale: DatasetScale) {
    println!("Ablation 1: scenecut threshold sweep (Coral reef, GOP 600)\n");
    let prepared = Prepared::new(DatasetId::CoralReef, scale);
    let video = &prepared.video;
    let rows: Vec<Vec<String>> = [0u16, 40, 100, 150, 200, 250, 300, 400]
        .iter()
        .map(|&sc| {
            let v = sieve_video::EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(600, sc),
                video.frames(),
            );
            let q = score_encoding(&v, video.labels());
            vec![
                sc.to_string(),
                pct(q.accuracy),
                pct(q.sampling_rate),
                format!("{:.3}", q.f1),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["scenecut", "accuracy", "sampled", "F1"], &rows)
    );
}

fn gop_sweep(scale: DatasetScale) {
    println!("Ablation 2: GOP-only sweep (scenecut disabled)\n");
    let prepared = Prepared::new(DatasetId::CoralReef, scale);
    let video = &prepared.video;
    let rows: Vec<Vec<String>> = [30usize, 100, 250, 600]
        .iter()
        .map(|&gop| {
            let v = sieve_video::EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 0),
                video.frames(),
            );
            let q = score_encoding(&v, video.labels());
            vec![
                gop.to_string(),
                pct(q.accuracy),
                pct(q.sampling_rate),
                format!("{:.3}", q.f1),
            ]
        })
        .collect();
    println!("{}", table(&["GOP", "accuracy", "sampled", "F1"], &rows));
    println!(
        "(Blind keyframing needs far more I-frames for the same accuracy — \
         the motivation for scenecut-driven semantic encoding.)\n"
    );
}

fn object_size_vs_scenecut(scale: DatasetScale) {
    println!("Ablation 3: object size vs tuned scenecut (same scene otherwise)\n");
    let mut rows = Vec::new();
    for &obj_scale in &[0.15f32, 0.25, 0.40] {
        let mut spec = DatasetSpec::of(DatasetId::JacksonSquare);
        spec.object_scale = obj_scale;
        let video = spec.generate(scale);
        // Find the highest-F1 scenecut at fixed GOP.
        let mut best = (0u16, f64::MIN);
        for sc in [60u16, 100, 150, 200, 250, 300] {
            let v = sieve_video::EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(600, sc),
                video.frames(),
            );
            let q = score_encoding(&v, video.labels());
            if q.f1 > best.1 {
                best = (sc, q.f1);
            }
        }
        rows.push(vec![
            format!("{:.0}% of frame height", obj_scale * 100.0),
            best.0.to_string(),
            format!("{:.3}", best.1),
        ]);
    }
    println!("{}", table(&["object size", "best scenecut", "F1"], &rows));
    println!(
        "(Paper: cameras whose objects appear smaller tune to more sensitive \
         scenecut values — the reason parameters are tuned per camera.)\n"
    );
}

fn nn_split_vs_bandwidth() {
    println!("Ablation 4: NN partition point vs WAN bandwidth\n");
    let model = reference_model(7);
    let input = [3usize, 32, 32];
    let rows: Vec<Vec<String>> = [0.5f64, 2.0, 8.0, 30.0, 120.0, 1000.0]
        .iter()
        .map(|&mbps| {
            let tiers = TierSpec {
                bandwidth_bytes_per_sec: mbps * 1e6 / 8.0,
                ..TierSpec::paper_default()
            };
            let b = best_split(&model, &input, &tiers);
            vec![
                format!("{mbps} Mb/s"),
                b.split.to_string(),
                b.transfer_bytes.to_string(),
                format!("{:.2} ms", b.total_secs() * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["WAN", "split layer", "bytes/frame", "latency"], &rows)
    );
    println!(
        "(Thin links push the split deeper into the network, shipping the \
         smallest activation; fat links ship raw inputs to the faster cloud.)"
    );
}

// Silence the unused-import lint when features change.
#[allow(unused)]
fn _keep(seeker: IFrameSeeker) {}
