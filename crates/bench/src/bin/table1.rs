//! Table I: the datasets used in the evaluation.
//!
//! Prints the synthetic dataset registry in the paper's layout, plus the
//! scaled rendition actually generated at the chosen `--scale`.

use sieve_bench::report::table;
use sieve_bench::scale_from_args;
use sieve_datasets::DatasetSpec;

fn main() {
    let scale = scale_from_args();
    println!("Table I: datasets (synthetic analogues; scale = {scale:?})\n");
    let rows: Vec<Vec<String>> = DatasetSpec::all()
        .iter()
        .map(|s| {
            let cfg = s.video_config(scale);
            let video = s.generate(scale);
            vec![
                s.id.to_string(),
                s.classes
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", "),
                s.paper_resolution.to_string(),
                format!("{}", s.fps),
                format!(
                    "{} fr ({:.1} min)",
                    cfg.schedule.duration_frames,
                    cfg.schedule.duration_frames as f64 / s.fps as f64 / 60.0
                ),
                format!("{}", cfg.scene.resolution),
                format!("{}", video.events().len()),
                if s.has_labels { "Yes" } else { "No" }.into(),
                s.description.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &[
                "Dataset",
                "Objects",
                "Paper res",
                "FPS",
                "Generated",
                "Gen res",
                "Events",
                "Labels?",
                "Description"
            ],
            &rows
        )
    );
    println!(
        "(The paper records 8 h per labelled dataset; renditions are \
         time-compressed per DESIGN.md, preserving event structure.)"
    );
}
