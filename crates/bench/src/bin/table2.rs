//! Table II: semantic vs default encoding parameters.
//!
//! Tunes (GOP, scenecut) per camera on each labelled dataset's training
//! half, then reports accuracy (Acc), sample size (SS) and F1 for both the
//! tuned and the default (GOP 250, scenecut 40) parameters on the eval
//! half.

use sieve_bench::harness::{harness_grid, semantic_vs_default, Prepared};
use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_datasets::DatasetId;

fn main() {
    let scale = scale_from_args();
    let grid = harness_grid();
    println!(
        "Table II: semantic vs default parameters (scale = {scale:?}, grid = {} configs)\n",
        grid.len()
    );
    let mut rows = Vec::new();
    for id in DatasetId::LABELLED {
        let prepared = Prepared::new(id, scale);
        let r = semantic_vs_default(&prepared, &grid);
        rows.push(vec![
            r.dataset.clone(),
            format!("({}, {})", r.tuned.gop_size, r.tuned.scenecut),
            pct(r.semantic.accuracy),
            pct(r.semantic.sampling_rate),
            pct(r.semantic.f1),
            pct(r.default.accuracy),
            pct(r.default.sampling_rate),
            pct(r.default.f1),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "Dataset",
                "tuned (GOP, sc)",
                "Sem Acc",
                "Sem SS",
                "Sem F1",
                "Def Acc",
                "Def SS",
                "Def F1"
            ],
            &rows
        )
    );
    println!(
        "(Paper shape: semantic parameters achieve 96-99% accuracy at 1-3% \
         sample size, beating the defaults on F1 on every dataset.)"
    );
}
