//! The hostile-WAN sweep: the whole fleet's kept frames funneled through
//! one bandwidth-capped, lossy edge→cloud uplink, swept over fragment
//! loss 0–10% with the FEC-on/off × feedback-on/off A/B grid at every
//! point.
//!
//! The link is deliberately provisioned *below* the fleet's unthrottled
//! offered load (a fixed fraction of `streams × fps × target_rate ×
//! mean_frame_bytes`), so an open-loop sender congests the queue and
//! loses blocks even at 0% random loss — the premise the feedback path
//! exists for. The grid then shows the two mechanisms doing their
//! separate jobs:
//!
//! * **FEC** turns recoverable fragment loss into delivered blocks:
//!   at 5% loss the FEC-on arms recover strictly more blocks than the
//!   FEC-off arms (which can recover none);
//! * **feedback** fits the offered load to what the channel can carry:
//!   the feedback-on arm tracks its *tightened* effective target
//!   (`target × mean WAN factor`) within ±20%, while the feedback-off
//!   arm keeps shipping at the raw target and misses by far more.
//!
//! Every run asserts the transport ledger: each kept frame ships as
//! exactly one block, and every block resolves to exactly one of
//! delivered / recovered / lost.
//!
//! Results land in `BENCH_wan.json` at the repository root,
//! schema-validated by [`sieve_bench::wan_artifact`] (which also encodes
//! the two inequalities above, so a transport regression fails the
//! committed artifact's unit test).
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig4_fleet`
//! (`--frames N` to override frames/stream, `--quick` for the CI smoke's
//! reduced sweep, `--no-artifact` to skip the write).

use std::sync::Arc;

use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_bench::wan_artifact::{
    validate, validate_with_rate_bound, WanArtifact, WanFecShape, WanPoint, WanRun, WanRuns,
    QUICK_RATE_ERR_BOUND,
};
use sieve_core::adapt::wan_signal;
use sieve_datasets::{DatasetId, DatasetSpec};
use sieve_filters::{Budget, MseSelector};
use sieve_fleet::{Fleet, FleetConfig, FramePacket, Ingest, StreamConfig};
use sieve_net::{FecConfig, SharedUplink, Uplink, UplinkConfig, WanConfig};
use sieve_stats::Registry;
use sieve_video::{EncodedVideo, EncoderConfig};

const WAN_SEED: u64 = 0x5EE7_EA51;
const TARGET_RATE: f64 = 0.3;
const STREAMS: usize = 8;
const SHARDS: usize = 4;
const MTU: usize = 1200;
/// Link capacity as a fraction of the fleet's unthrottled offered load
/// (payload bytes only — FEC parity and headers ride on top, which is
/// exactly why the open-loop FEC-on arm congests hardest).
const CAP_FRACTION: f64 = 0.7;
/// Queue depth in seconds of line rate. The ECN mark threshold sits at a
/// quarter of this, so the headroom between "marked" and "tail-dropped"
/// is three quarters of it — that band must absorb the burst of several
/// streams keeping their (large) I-frames at once, plus the scheduling
/// skew the channel clock clamps into near-simultaneous sends. Sustained
/// overdrive past the feedback's reach still tail-drops.
const QUEUE_SECS: f64 = 2.0;
const FEEDBACK_QUANTUM_SECS: f64 = 0.1;
const FEEDBACK_DELAY_SECS: f64 = 0.05;

/// Where the serialized results land: the workspace root, two levels up
/// from this crate's manifest.
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wan.json");

fn usize_flag(name: &str) -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// One pre-encoded synthetic camera. Every stream is adaptive (MSE at
/// [`TARGET_RATE`]) so the feedback factor acts on the whole fleet.
struct Camera {
    name: String,
    encoded: EncodedVideo,
    selector: MseSelector,
}

fn cameras(n: usize, scale: sieve_datasets::DatasetScale, frames: usize) -> Vec<Camera> {
    (0..n)
        .map(|i| {
            let dataset = DatasetId::ALL[i % DatasetId::ALL.len()];
            let spec = DatasetSpec::for_stream(dataset, WAN_SEED, i as u64);
            let video = spec.generate(scale);
            let gop = 60 + 30 * (i % 4); // staggered scenecut cadences
            let encoded = EncodedVideo::encode(
                video.resolution(),
                video.fps(),
                EncoderConfig::new(gop, 120),
                video.frames().take(frames),
            );
            Camera {
                name: format!("{dataset}#{i}"),
                encoded,
                selector: MseSelector::mse(Budget::TargetRate(TARGET_RATE)),
            }
        })
        .collect()
}

/// The fleet's unthrottled offered load in bits/second: every camera
/// keeping `TARGET_RATE` of its frames at its own fps and mean encoded
/// frame size. Deterministic (no serve needed), so the link capacity is
/// the same for every arm of the grid.
fn offered_load_bps(cams: &[Camera]) -> f64 {
    cams.iter()
        .map(|cam| {
            let frames = cam.encoded.frames();
            let total: usize = frames
                .iter()
                .map(sieve_video::EncodedFrame::size_bytes)
                .sum();
            let mean = total as f64 / frames.len().max(1) as f64;
            mean * 8.0 * f64::from(cam.encoded.fps()) * TARGET_RATE
        })
        .sum()
}

/// Longest stream duration in stream time — the denominator for goodput.
fn duration_secs(cams: &[Camera], frames: usize) -> f64 {
    cams.iter()
        .map(|cam| frames as f64 / f64::from(cam.encoded.fps()))
        .fold(0.0, f64::max)
}

/// Serves the whole fleet once through a fresh uplink and reduces the run
/// to one artifact row. Panics on any ledger violation.
fn serve(
    cams: &[Camera],
    loss: f64,
    fec: FecConfig,
    feedback: bool,
    capacity_bps: f64,
    duration: f64,
) -> WanRun {
    // Each arm starts from an untightened control factor; the uplink's
    // feedback (when enabled) is the only writer during the run.
    wan_signal().reset();
    let registry = Arc::new(Registry::new());
    let mut wan = WanConfig::paper_wan(
        WAN_SEED
            ^ (loss * 1e4) as u64
            ^ ((fec.group_parity as u64) << 20)
            ^ ((feedback as u64) << 21),
        loss,
    );
    wan.bandwidth_bps = capacity_bps;
    wan.queue_bytes = (capacity_bps / 8.0 * QUEUE_SECS) as usize;
    let mut cfg = UplinkConfig::over(wan);
    cfg.mtu = MTU;
    cfg.fec = fec;
    cfg.feedback = feedback;
    cfg.feedback_quantum_secs = FEEDBACK_QUANTUM_SECS;
    cfg.feedback_delay_secs = FEEDBACK_DELAY_SECS;
    // Explicit registry (fresh per arm), process-global signal: the
    // fleet's per-stream controllers couple to `wan_signal()`, so applied
    // feedback tightens every stream's effective target.
    let uplink = Uplink::with_registry(cfg, &registry).expect("uplink config");
    let shared = SharedUplink::new(uplink);

    let fleet = Fleet::new(FleetConfig {
        shards: SHARDS,
        queue_capacity: 16,
        global_frame_budget: 16 * SHARDS * 4,
        max_streams: cams.len().max(16),
        work_stealing: true,
        priority_lanes: true,
        stats: true,
    });
    let mut joined = Vec::new();
    for (idx, cam) in cams.iter().enumerate() {
        let cfg = StreamConfig::new(
            cam.name.clone(),
            cam.encoded.resolution(),
            cam.encoded.quality(),
        )
        .with_target_rate(TARGET_RATE);
        // Golden-ratio sub-frame phase: cameras are not frame-locked to
        // each other, so spread each round's sends across the frame
        // period instead of letting every stream's I-frames at GOP
        // multiples land on the same virtual instant.
        let fps = f64::from(cam.encoded.fps());
        let phase = (idx as f64 * 0.618_033_988_749_895).fract() / fps;
        let sink = shared.keep_sink(fps, phase);
        joined.push(
            fleet
                .join_with_sink(&cam.selector, cfg, sink)
                .expect("admission"),
        );
    }
    // Feed in lock-step rounds: frame `i` of *every* stream is offered
    // before frame `i+1` of any, so the streams' virtual clocks stay
    // aligned (within a lane's queue depth). Free-running per-stream
    // feeders would let one camera finish its whole tape first, and the
    // channel's monotone clock would then compress the laggards' sends
    // into bursts that overflow any queue regardless of keep rate.
    let mut backoff_us = 100u64;
    for i in 0.. {
        let mut any = false;
        for (cam, &id) in cams.iter().zip(&joined) {
            let Some(ef) = cam.encoded.frames().get(i) else {
                continue;
            };
            any = true;
            loop {
                match fleet.push(id, FramePacket::of(i, ef)).expect("push") {
                    Ingest::Queued => {
                        backoff_us = 100;
                        break;
                    }
                    Ingest::Shed(_) => {
                        std::thread::sleep(std::time::Duration::from_micros(backoff_us));
                        backoff_us = (backoff_us * 2).min(5_000);
                    }
                }
            }
        }
        if !any {
            break;
        }
    }
    for &id in &joined {
        fleet.leave(id).expect("leave");
    }
    let report = fleet.shutdown();
    shared.finish();
    let c = shared.counts();
    let agg = report.snapshot.aggregate;

    // The transport ledger, asserted on every run of every arm.
    assert_eq!(
        c.blocks_sent, agg.kept,
        "every kept frame must ship as exactly one block"
    );
    assert_eq!(
        c.blocks_sent,
        c.blocks_delivered + c.blocks_recovered + c.blocks_lost,
        "every block must resolve to exactly one outcome"
    );

    let achieved = c.blocks_usable() as f64 / agg.processed.max(1) as f64;
    let effective_target = TARGET_RATE * c.mean_factor();
    WanRun {
        frames_observed: agg.processed,
        frames_kept: agg.kept,
        blocks_sent: c.blocks_sent,
        blocks_delivered: c.blocks_delivered,
        blocks_recovered: c.blocks_recovered,
        blocks_lost: c.blocks_lost,
        packets_sent: c.packets_sent,
        packets_lost: c.packets_lost,
        packets_congestion_dropped: c.packets_congestion_dropped,
        packets_reordered: c.packets_reordered,
        delivered_bytes: c.delivered_bytes,
        goodput_bps: c.delivered_bytes as f64 * 8.0 / duration,
        achieved_cloud_rate: achieved,
        effective_target,
        rate_err: (achieved - effective_target).abs() / effective_target,
        mean_wan_factor: c.mean_factor(),
    }
}

fn main() {
    let scale = scale_from_args();
    let quick = bool_flag("--quick");
    // The full sweep runs long enough that the congestion-discovery
    // transient (the first ~2 s before AIMD finds the link) is amortized
    // out of the achieved-rate accounting.
    let frames = usize_flag("--frames").unwrap_or(if quick { 120 } else { 600 });
    // The quick sweep keeps the three points the schema asserts on: the
    // lossless anchor, the 5% headline and the 10% endpoint.
    let losses: &[f64] = if quick {
        &[0.0, 0.05, 0.10]
    } else {
        &[0.0, 0.01, 0.025, 0.05, 0.10]
    };

    let cams = cameras(STREAMS, scale, frames);
    let offered = offered_load_bps(&cams);
    let capacity = CAP_FRACTION * offered;
    let duration = duration_secs(&cams, frames);
    println!(
        "Hostile WAN sweep: {STREAMS} adaptive streams (target {TARGET_RATE}) × \
         {frames} frames at scale = {scale:?}\n\
         unthrottled offered load ≈ {:.2} Mbit/s, link capacity {:.2} Mbit/s \
         ({:.0}% — open-loop senders congest by construction)\n",
        offered / 1e6,
        capacity / 1e6,
        CAP_FRACTION * 100.0
    );

    let fec_on = FecConfig::default_on();
    let fec_off = FecConfig::off();
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &loss in losses {
        let mut arm = |fec: FecConfig, feedback: bool, label: &str| {
            let run = serve(&cams, loss, fec, feedback, capacity, duration);
            rows.push(vec![
                pct(loss),
                label.to_string(),
                run.frames_kept.to_string(),
                run.blocks_delivered.to_string(),
                run.blocks_recovered.to_string(),
                run.blocks_lost.to_string(),
                run.packets_congestion_dropped.to_string(),
                format!("{:.2}", run.goodput_bps / 1e6),
                format!("{:.3}", run.achieved_cloud_rate),
                format!("{:.3}", run.effective_target),
                pct(run.rate_err),
            ]);
            run
        };
        let runs = WanRuns {
            fec_on_feedback_on: arm(fec_on, true, "fec+fb"),
            fec_on_feedback_off: arm(fec_on, false, "fec"),
            fec_off_feedback_on: arm(fec_off, true, "fb"),
            fec_off_feedback_off: arm(fec_off, false, "open"),
        };
        points.push(WanPoint { loss, runs });
    }
    wan_signal().reset(); // leave no tightened factor behind for later code
    println!(
        "{}",
        table(
            &[
                "loss",
                "arm",
                "kept",
                "delivered",
                "recovered",
                "lost",
                "cong drop",
                "goodput Mb/s",
                "achieved",
                "eff target",
                "|rate err|",
            ],
            &rows
        )
    );
    println!(
        "\n(FEC turns fragment loss into recovered blocks; feedback tightens \
         the fleet's effective target until the offered load fits the link. \
         The open-loop arms keep shipping at {TARGET_RATE} and pay in lost \
         blocks.)"
    );

    let artifact = WanArtifact {
        benchmark: "fig4_fleet".to_string(),
        scale: format!("{scale:?}"),
        streams: STREAMS,
        frames_per_stream: frames,
        target_rate: TARGET_RATE,
        mtu: MTU,
        fec: WanFecShape {
            group_data: fec_on.group_data,
            group_parity: fec_on.group_parity,
        },
        bandwidth_bps: capacity,
        points,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes") + "\n";
    // The quick smoke's 120-frame sweep is transient-dominated, so its
    // feedback-on rate error gets the looser CI bound; a written artifact
    // always meets the strict committed-artifact bound.
    if quick {
        validate_with_rate_bound(&json, QUICK_RATE_ERR_BOUND)
            .expect("generated artifact passes its own schema (quick bound)");
    } else {
        validate(&json).expect("generated artifact passes its own schema");
    }
    if bool_flag("--no-artifact") {
        println!("\n--no-artifact: skipping BENCH_wan.json write");
    } else {
        std::fs::write(ARTIFACT_PATH, json).expect("artifact written");
        println!("\nwrote BENCH_wan.json");
    }
}
