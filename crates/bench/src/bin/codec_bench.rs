//! Raw codec speed: the SIMD kernel tier and the GOP-parallel encoder
//! against the portable scalar tier, on one synthetic eval scene.
//!
//! Two sweeps:
//!
//! * **Micro-kernels** — each of the hot-loop kernels (`sad16`, forward and
//!   inverse DCT, `quantize64`, `sse_u8` for MSE, `avg2x2_f32` for the
//!   lookahead/SIFT downsample) timed through the runtime dispatcher and
//!   through the scalar reference tier, back to back in one process.
//! * **Whole pipeline** — encode throughput at scalar/1-thread (the seed
//!   configuration), SIMD/1-thread, and SIMD/N-thread GOP-parallel; decode
//!   throughput scalar vs SIMD over the batch decoder.
//!
//! Results land in `BENCH_codec.json` at the repository root,
//! schema-validated by [`sieve_bench::codec_artifact`] so CI (or a later
//! session) can diff the speed trajectory against this run.
//!
//! Run with: `cargo run --release -p sieve-bench --bin codec_bench`
//! (`--scale small` for more frames, `--quick` for the CI smoke's reduced
//! sample counts, `--no-artifact` to skip the JSON write).

use criterion::{black_box, Criterion};
use sieve_bench::codec_artifact::{
    seed_baseline_fps, validate, CodecArtifact, DecodePoint, EncodePoint, KernelPoint,
};
use sieve_bench::report::table;
use sieve_bench::scale_from_args;
use sieve_datasets::{DatasetId, DatasetSpec};
use sieve_video::kernels::{self, scalar};
use sieve_video::{EncodedVideo, EncoderConfig, Frame};

/// Where the serialized results land: the workspace root, two levels up
/// from this crate's manifest.
const ARTIFACT_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_codec.json");

fn bool_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn f64_flag(name: &str) -> Option<f64> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

/// The fixed denominator of the headline speedup: the growth-seed
/// encoder's single-thread throughput on this scene. `--seed-fps` re-pins
/// it (e.g. after re-measuring the seed commit on a new machine);
/// otherwise it is carried forward from the committed artifact. With
/// neither available, the current scalar single-thread figure stands in —
/// strictly conservative, since the seed lacks this PR's structural
/// hot-loop work.
fn resolve_seed_baseline(scalar_1t_fps: f64) -> f64 {
    if let Some(fps) = f64_flag("--seed-fps") {
        println!("seed baseline: {fps:.1} fps (--seed-fps)");
        return fps;
    }
    if let Ok(prev) = std::fs::read_to_string(ARTIFACT_PATH) {
        if let Some(fps) = seed_baseline_fps(&prev) {
            println!("seed baseline: {fps:.1} fps (carried from BENCH_codec.json)");
            return fps;
        }
    }
    println!("seed baseline: {scalar_1t_fps:.1} fps (no prior artifact; using current scalar-1t)");
    scalar_1t_fps
}

/// Deterministic byte plane for the kernel sweeps.
fn noise_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            // xorshift64* keeps this dependency-free and reproducible.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        })
        .collect()
}

struct KernelBench {
    criterion: Criterion,
    samples: usize,
    points: Vec<KernelPoint>,
    rows: Vec<Vec<String>>,
}

impl KernelBench {
    fn new(samples: usize) -> Self {
        Self {
            criterion: Criterion::default().sample_size(samples),
            samples,
            points: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Times `simd` (through the dispatcher) and `scalar` back to back and
    /// records the pair.
    fn pair<F: FnMut(), G: FnMut()>(&mut self, name: &str, mut simd: F, mut scalar: G) {
        let simd_est = self
            .criterion
            .bench_estimate(&format!("codec/{name}/simd"), |b| b.iter(&mut simd))
            .expect("sampled at least once");
        let scalar_est = self
            .criterion
            .bench_estimate(&format!("codec/{name}/scalar"), |b| b.iter(&mut scalar))
            .expect("sampled at least once");
        let speedup = scalar_est.median.as_secs_f64() / simd_est.median.as_secs_f64();
        self.rows.push(vec![
            name.to_string(),
            format!("{:.3?}", scalar_est.median),
            format!("{:.3?}", simd_est.median),
            format!("{speedup:.2}x"),
        ]);
        self.points.push(KernelPoint {
            name: name.to_string(),
            samples: self.samples,
            scalar_median_ns: scalar_est.median.as_nanos() as f64,
            scalar_mad_ns: scalar_est.mad.as_nanos() as f64,
            simd_median_ns: simd_est.median.as_nanos() as f64,
            simd_mad_ns: simd_est.mad.as_nanos() as f64,
            speedup,
        });
    }
}

/// The micro-kernel sweep. Each iteration covers a whole plane / a batch of
/// blocks so per-call dispatch overhead is amortized the way the codec
/// amortizes it.
fn kernel_sweep(samples: usize) -> (Vec<KernelPoint>, Vec<Vec<String>>) {
    let mut bench = KernelBench::new(samples);
    // SAD over a 256x256 plane of 16x16 blocks, the motion-search shape.
    let w = 256usize;
    let cur = noise_bytes(w * w, 0xA11CE);
    let refp = noise_bytes(w * w, 0xB0B);
    bench.pair(
        "sad16",
        || {
            let mut acc = 0u32;
            for by in 0..w / 16 {
                for bx in 0..w / 16 {
                    let o = by * 16 * w + bx * 16;
                    acc = acc.wrapping_add(kernels::sad16(&cur[o..], w, &refp[o..], w));
                }
            }
            black_box(acc);
        },
        || {
            let mut acc = 0u32;
            for by in 0..w / 16 {
                for bx in 0..w / 16 {
                    let o = by * 16 * w + bx * 16;
                    acc = acc.wrapping_add(scalar::sad16(&cur[o..], w, &refp[o..], w));
                }
            }
            black_box(acc);
        },
    );

    // DCT / quantize over a batch of 256 blocks.
    let blocks: Vec<[i32; 64]> = (0..256)
        .map(|i| {
            let bytes = noise_bytes(64, 0xD07 + i as u64);
            let mut b = [0i32; 64];
            for (o, &v) in b.iter_mut().zip(&bytes) {
                *o = v as i32 - 128;
            }
            b
        })
        .collect();
    let (mut coeffs_a, mut coeffs_b) = ([0f32; 64], [0f32; 64]);
    bench.pair(
        "dct8_forward",
        || {
            for b in &blocks {
                kernels::dct8_forward(b, &mut coeffs_a);
                black_box(&coeffs_a);
            }
        },
        || {
            for b in &blocks {
                scalar::dct8_forward(b, &mut coeffs_b);
                black_box(&coeffs_b);
            }
        },
    );
    let coeff_blocks: Vec<[f32; 64]> = blocks
        .iter()
        .map(|b| {
            let mut c = [0f32; 64];
            scalar::dct8_forward(b, &mut c);
            c
        })
        .collect();
    let (mut resid_a, mut resid_b) = ([0i32; 64], [0i32; 64]);
    bench.pair(
        "dct8_inverse",
        || {
            for c in &coeff_blocks {
                kernels::dct8_inverse(c, &mut resid_a);
                black_box(&resid_a);
            }
        },
        || {
            for c in &coeff_blocks {
                scalar::dct8_inverse(c, &mut resid_b);
                black_box(&resid_b);
            }
        },
    );
    let steps: [f32; 64] = std::array::from_fn(|i| sieve_video::quant::BASE_LUMA[i] as f32);
    let (mut levels_a, mut levels_b) = ([0i32; 64], [0i32; 64]);
    bench.pair(
        "quantize64",
        || {
            for c in &coeff_blocks {
                kernels::quantize64(c, &steps, &mut levels_a);
                black_box(&levels_a);
            }
        },
        || {
            for c in &coeff_blocks {
                scalar::quantize64(c, &steps, &mut levels_b);
                black_box(&levels_b);
            }
        },
    );

    // SSE (the MSE detector's inner loop) over a 64 KiB plane pair.
    let a = noise_bytes(1 << 16, 0x5EED);
    let b = noise_bytes(1 << 16, 0xFEED);
    bench.pair(
        "sse_u8",
        || {
            black_box(kernels::sse_u8(&a, &b));
        },
        || {
            black_box(scalar::sse_u8(&a, &b));
        },
    );

    // 2x2 box average (lookahead downsample / SIFT octaves), 256 rows.
    let fw = 512usize;
    let fa: Vec<f32> = noise_bytes(fw * 256, 0xF00)
        .iter()
        .map(|&v| v as f32)
        .collect();
    let mut row_a = vec![0f32; fw / 2];
    let mut row_b = vec![0f32; fw / 2];
    bench.pair(
        "avg2x2_f32",
        || {
            for y in 0..128 {
                let top = &fa[(2 * y) * fw..][..fw];
                let bottom = &fa[(2 * y + 1) * fw..][..fw];
                kernels::avg2x2_f32(top, bottom, &mut row_a);
                black_box(&row_a);
            }
        },
        || {
            for y in 0..128 {
                let top = &fa[(2 * y) * fw..][..fw];
                let bottom = &fa[(2 * y + 1) * fw..][..fw];
                scalar::avg2x2_f32(top, bottom, &mut row_b);
                black_box(&row_b);
            }
        },
    );
    (bench.points, bench.rows)
}

fn main() {
    let scale = scale_from_args();
    let quick = bool_flag("--quick");
    let kernel_samples = if quick { 5 } else { 15 };
    let pipeline_samples = if quick { 3 } else { 7 };
    let level = kernels::active_level();
    println!(
        "Codec raw speed: kernel tier = {level}, {} cores \
         (scalar columns pin the dispatcher to its portable tier)\n",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    // -- Micro-kernels ------------------------------------------------------
    let (kernel_points, kernel_rows) = kernel_sweep(kernel_samples);
    println!(
        "\n{}",
        table(&["kernel", "scalar", "simd", "speedup"], &kernel_rows)
    );

    // -- Whole pipeline -----------------------------------------------------
    // One eval scene, encoded with the harness's mid-grid parameters.
    let spec = DatasetSpec::of(DatasetId::JacksonSquare);
    let video = spec.generate(scale);
    let frame_cap = if quick { 24 } else { 96 };
    let n_frames = video.frame_count().min(frame_cap);
    let frames: Vec<Frame> = (0..n_frames).map(|i| video.frame(i)).collect();
    let res = video.resolution();
    let config = EncoderConfig::new(30, 150);
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut criterion = Criterion::default().sample_size(pipeline_samples);

    let mut encode_fps = |name: &str, scalar_tier: bool, workers: usize| {
        kernels::force_scalar(scalar_tier);
        let est = criterion
            .bench_estimate(name, |b| {
                b.iter(|| {
                    black_box(EncodedVideo::encode_parallel(
                        res,
                        video.fps(),
                        config,
                        &frames,
                        workers,
                    ))
                })
            })
            .expect("sampled at least once");
        kernels::force_scalar(false);
        n_frames as f64 / est.median.as_secs_f64()
    };
    // The seed configuration: scalar kernels, one thread.
    let scalar_1t = encode_fps("codec/encode/scalar-1t", true, 1);
    let simd_1t = encode_fps("codec/encode/simd-1t", false, 1);
    let simd_nt = encode_fps("codec/encode/simd-nt", false, workers);

    let encoded = EncodedVideo::encode_parallel(res, video.fps(), config, &frames, workers);
    let mut decode_fps = |name: &str, scalar_tier: bool| {
        kernels::force_scalar(scalar_tier);
        let mut decoder = sieve_video::Decoder::new(res, config.quality);
        let est = criterion
            .bench_estimate(name, |b| {
                b.iter(|| {
                    decoder.reset();
                    let mut count = 0usize;
                    decoder
                        .decode_batch(encoded.frames(), |_, f| count += f.y().width())
                        .expect("bitstream decodes");
                    black_box(count)
                })
            })
            .expect("sampled at least once");
        kernels::force_scalar(false);
        n_frames as f64 / est.median.as_secs_f64()
    };
    let dec_scalar = decode_fps("codec/decode/scalar", true);
    let dec_simd = decode_fps("codec/decode/simd", false);

    let seed_1t = resolve_seed_baseline(scalar_1t);
    let encode = EncodePoint {
        samples: pipeline_samples,
        seed_1t_fps: seed_1t,
        scalar_1t_fps: scalar_1t,
        simd_1t_fps: simd_1t,
        simd_nt_fps: simd_nt,
        workers,
        speedup_simd: simd_1t / scalar_1t,
        speedup_total: simd_nt / seed_1t,
    };
    let decode = DecodePoint {
        samples: pipeline_samples,
        scalar_fps: dec_scalar,
        simd_fps: dec_simd,
        speedup: dec_simd / dec_scalar,
    };
    println!(
        "\n{}",
        table(
            &[
                "pipeline",
                "seed fps",
                "scalar fps",
                "simd fps",
                "simd N-thread fps",
                "speedup",
            ],
            &[
                vec![
                    format!("encode ({n_frames} frames, {workers} workers)"),
                    format!("{seed_1t:.1}"),
                    format!("{scalar_1t:.1}"),
                    format!("{simd_1t:.1}"),
                    format!("{simd_nt:.1}"),
                    format!("{:.2}x vs seed", encode.speedup_total),
                ],
                vec![
                    format!("decode ({n_frames} frames)"),
                    "-".to_string(),
                    format!("{dec_scalar:.1}"),
                    format!("{dec_simd:.1}"),
                    "-".to_string(),
                    format!("{:.2}x vs scalar", decode.speedup),
                ],
            ]
        )
    );

    let artifact = CodecArtifact {
        benchmark: "codec".to_string(),
        kernel_level: level.to_string(),
        width: res.width(),
        height: res.height(),
        frames: n_frames,
        kernels: kernel_points,
        encode,
        decode,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("artifact serializes") + "\n";
    validate(&json).expect("generated artifact passes its own schema");
    if bool_flag("--no-artifact") {
        println!("\n--no-artifact: skipping BENCH_codec.json write");
    } else {
        std::fs::write(ARTIFACT_PATH, json).expect("artifact written");
        println!("\nwrote BENCH_codec.json");
    }
}
