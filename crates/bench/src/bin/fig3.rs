//! Fig 3: accuracy at different sampling rates — SiEVE vs SIFT vs MSE.
//!
//! For each labelled dataset, sweeps the scenecut threshold to produce
//! SiEVE operating points between ~0.5% and ~4% sampled frames, calibrates
//! the MSE and SIFT thresholds to the same sampling rates, and prints the
//! accuracy series (the paper's two sub-figures plus the Venice summary).

use sieve_bench::harness::{accuracy_sweep, Prepared};
use sieve_bench::report::{pct, table};
use sieve_bench::scale_from_args;
use sieve_datasets::DatasetId;

fn main() {
    let scale = scale_from_args();
    // Scenecut sweep spanning the codec's useful band: low values sample
    // sparsely, high values aggressively.
    let scenecuts = [60u16, 100, 130, 150, 170, 200, 240];
    println!("Fig 3: accuracy vs percentage of sampled frames (scale = {scale:?})\n");
    let mut summaries = Vec::new();
    for id in DatasetId::LABELLED {
        let prepared = Prepared::new(id, scale);
        let points = accuracy_sweep(&prepared, 600, &scenecuts);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{:.2}%", 100.0 * p.sampling),
                    pct(p.sieve),
                    pct(p.sift),
                    pct(p.mse),
                ]
            })
            .collect();
        println!("{id} ({} eval frames):", prepared.eval_labels().len());
        println!("{}", table(&["sampled", "SiEVE", "SIFT", "MSE"], &rows));
        // Paper-style summary: mean advantage over each baseline.
        let n = points.len() as f64;
        let mean_vs_sift: f64 = points.iter().map(|p| p.sieve - p.sift).sum::<f64>() / n;
        let mean_vs_mse: f64 = points.iter().map(|p| p.sieve - p.mse).sum::<f64>() / n;
        summaries.push((id, mean_vs_sift, mean_vs_mse));
    }
    println!("Summary (mean accuracy advantage of SiEVE across the sweep):");
    for (id, vs_sift, vs_mse) in summaries {
        println!(
            "  {id}: +{:.1}% vs SIFT, +{:.1}% vs MSE",
            100.0 * vs_sift,
            100.0 * vs_mse
        );
    }
}
