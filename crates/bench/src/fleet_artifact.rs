//! The `BENCH_fleet_scale.json` schema: serialized types plus a
//! stability validator.
//!
//! The fleet-scale artifact is diffed PR-over-PR (a later session compares
//! its numbers against this run's), so its *shape* is a contract:
//! [`validate`] asserts the exact key sets, that every operating point
//! carries a real `worst_rate_err` number (the 1-stream point used to emit
//! `null` because no adaptive stream existed at n=1 — the camera mix now
//! guarantees one at every size), and that the skewed-workload comparison
//! records both scheduler configurations. The `fleet_scale` binary
//! validates what it is about to write; a unit test validates the
//! committed artifact at the repository root, so a schema regression fails
//! `cargo test` before it lands.

use serde::Serialize;

/// One serialized operating point: a fleet size with its robust timing
/// estimate and the counters of the final sampled run.
#[derive(Debug, Serialize)]
pub struct BenchPoint {
    /// Concurrent streams at this point.
    pub streams: usize,
    /// Timing samples taken.
    pub samples: usize,
    /// Median serving wall time, seconds.
    pub median_secs: f64,
    /// Median absolute deviation of the serving time, seconds.
    pub mad_secs: f64,
    /// Aggregate frames/second at the median serving time.
    pub median_fps: f64,
    /// Frames decided in the final run.
    pub processed: u64,
    /// Frames kept in the final run.
    pub kept: u64,
    /// Admission refusals in the final run (feeders retry, so every frame
    /// is still eventually processed; refusals measure back-pressure).
    pub shed: u64,
    /// `shed / (processed + shed)` of the final run.
    pub shed_rate: f64,
    /// 99th-percentile push→decision latency of the final run, µs.
    pub p99_decision_latency_us: u64,
    /// Worst relative |achieved − target| / target over adaptive streams
    /// in the final run. Always present: the camera mix places the
    /// adaptive MSE stream first, so every fleet size has at least one.
    pub worst_rate_err: f64,
}

/// One scheduler configuration's outcome on the skewed workload.
#[derive(Debug, Serialize)]
pub struct SkewedRun {
    /// Serving wall time, seconds.
    pub wall_secs: f64,
    /// Frames decided.
    pub processed: u64,
    /// Admission refusals (feeders retried them).
    pub shed: u64,
    /// `shed / (processed + shed)`.
    pub shed_rate: f64,
    /// Median push→decision latency, µs.
    pub p50_decision_latency_us: u64,
    /// 99th-percentile push→decision latency, µs.
    pub p99_decision_latency_us: u64,
    /// Frames processed on a non-home shard (0 when stealing is off).
    pub stolen: u64,
    /// Steal attempts that lost the victim-lock race.
    pub steal_fail: u64,
}

/// One side of the instrumentation-overhead A/B: robust statistics over
/// `samples` identical serves of the same workload.
#[derive(Debug, Serialize)]
pub struct OverheadRun {
    /// Serves timed.
    pub samples: usize,
    /// Median serving wall time, seconds.
    pub median_wall_secs: f64,
    /// Median absolute deviation of the wall time, seconds.
    pub mad_wall_secs: f64,
    /// Median of the per-run p99 push→decision latencies, µs.
    pub median_p99_us: u64,
    /// Median absolute deviation of the per-run p99 latencies, µs.
    pub mad_p99_us: u64,
}

/// The counter-overhead experiment: the same workload served with the
/// per-stage registry mirroring on (`FleetConfig::stats = true`, the
/// default) and off, proving the observability plane's relaxed sharded
/// counters cost nothing measurable on the decision path.
#[derive(Debug, Serialize)]
pub struct Overhead {
    /// Concurrent streams in the A/B workload.
    pub streams: usize,
    /// Frames per stream.
    pub frames_per_stream: usize,
    /// Registry mirroring on (the shipping default).
    pub instrumented: OverheadRun,
    /// Registry mirroring off (`FleetConfig::stats = false`).
    pub uninstrumented: OverheadRun,
    /// True when the instrumented median p99 sits within the runs' MAD of
    /// the uninstrumented one, or within one power-of-two histogram
    /// bucket (a factor of two — the quantile readout's resolution).
    pub p99_within_noise: bool,
}

/// The skewed (hot-camera) workload: every hot stream hashes to shard 0,
/// so the round-robin baseline leaves the other shards idle while shard 0
/// drowns — the scenario work stealing exists for.
#[derive(Debug, Serialize)]
pub struct SkewedComparison {
    /// Total streams.
    pub streams: usize,
    /// Streams whose home shard is the hot shard (full-decode, high keep).
    pub hot_streams: usize,
    /// Frames per stream.
    pub frames_per_stream: usize,
    /// Thread-per-shard round-robin (stealing and priority lanes off).
    pub baseline: SkewedRun,
    /// Work stealing + keep-rate-derived priority lanes on.
    pub stealing: SkewedRun,
}

/// The whole artifact written to `BENCH_fleet_scale.json`.
#[derive(Debug, Serialize)]
pub struct BenchArtifact {
    /// Always `"fleet_scale"`.
    pub benchmark: String,
    /// Dataset scale the run used (`Tiny`/`Small`/`Full`).
    pub scale: String,
    /// Worker pool size.
    pub shards: usize,
    /// Frames fed per stream in the sweep.
    pub frames_per_stream: usize,
    /// The fleet-size sweep, ascending.
    pub points: Vec<BenchPoint>,
    /// The instrumented-vs-uninstrumented counter-overhead A/B.
    pub overhead: Overhead,
    /// The skewed-workload baseline-vs-stealing comparison.
    pub skewed: SkewedComparison,
}

const ARTIFACT_KEYS: &[&str] = &[
    "benchmark",
    "scale",
    "shards",
    "frames_per_stream",
    "points",
    "overhead",
    "skewed",
];
const POINT_KEYS: &[&str] = &[
    "streams",
    "samples",
    "median_secs",
    "mad_secs",
    "median_fps",
    "processed",
    "kept",
    "shed",
    "shed_rate",
    "p99_decision_latency_us",
    "worst_rate_err",
];
const OVERHEAD_KEYS: &[&str] = &[
    "streams",
    "frames_per_stream",
    "instrumented",
    "uninstrumented",
    "p99_within_noise",
];
const OVERHEAD_RUN_KEYS: &[&str] = &[
    "samples",
    "median_wall_secs",
    "mad_wall_secs",
    "median_p99_us",
    "mad_p99_us",
];
const SKEWED_KEYS: &[&str] = &[
    "streams",
    "hot_streams",
    "frames_per_stream",
    "baseline",
    "stealing",
];
const RUN_KEYS: &[&str] = &[
    "wall_secs",
    "processed",
    "shed",
    "shed_rate",
    "p50_decision_latency_us",
    "p99_decision_latency_us",
    "stolen",
    "steal_fail",
];

fn expect_keys(map: &serde::Map, keys: &[&str], what: &str) -> Result<(), String> {
    let have: Vec<&str> = map.iter().map(|(k, _)| k).collect();
    if have != keys {
        return Err(format!("{what}: keys {have:?}, expected exactly {keys:?}"));
    }
    Ok(())
}

fn number_of(map: &serde::Map, key: &str, what: &str) -> Result<f64, String> {
    match map.get(key) {
        Some(serde::Value::Number(n)) => Ok(n.as_f64()),
        Some(v) => Err(format!("{what}.{key}: expected a number, got {}", v.kind())),
        None => Err(format!("{what}.{key}: missing")),
    }
}

fn check_overhead(root: &serde::Map) -> Result<(), String> {
    let overhead = root
        .get("overhead")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| "root.overhead: expected an object".to_string())?;
    expect_keys(overhead, OVERHEAD_KEYS, "overhead")?;
    for side in ["instrumented", "uninstrumented"] {
        let what = format!("overhead.{side}");
        let run = overhead
            .get(side)
            .and_then(serde::Value::as_object)
            .ok_or_else(|| format!("{what}: expected an object"))?;
        expect_keys(run, OVERHEAD_RUN_KEYS, &what)?;
        let samples = number_of(run, "samples", &what)?;
        if samples < 2.0 {
            return Err(format!(
                "{what}.samples: {samples} too few for a MAD to mean anything"
            ));
        }
        number_of(run, "median_p99_us", &what)?;
    }
    // The point of the experiment: the verdict is a real bool, not null.
    match overhead.get("p99_within_noise") {
        Some(serde::Value::Bool(_)) => Ok(()),
        other => Err(format!(
            "overhead.p99_within_noise: expected a bool, got {:?}",
            other.map(serde::Value::kind)
        )),
    }
}

fn check_run(map: &serde::Map, what: &str) -> Result<(), String> {
    let run = map
        .get(what)
        .and_then(serde::Value::as_object)
        .ok_or_else(|| format!("skewed.{what}: expected an object"))?;
    expect_keys(run, RUN_KEYS, &format!("skewed.{what}"))?;
    let rate = number_of(run, "shed_rate", what)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("skewed.{what}.shed_rate: {rate} outside [0, 1]"));
    }
    Ok(())
}

/// Asserts the artifact's schema stability; see the module docs. `json`
/// is the full text of `BENCH_fleet_scale.json`.
///
/// # Errors
///
/// A human-readable description of the first violated schema rule.
pub fn validate(json: &str) -> Result<(), String> {
    let root = serde_json::parse_value_str(json).map_err(|e| format!("unparseable JSON: {e}"))?;
    let root = root
        .as_object()
        .ok_or_else(|| "root: expected an object".to_string())?;
    expect_keys(root, ARTIFACT_KEYS, "root")?;
    if root.get("benchmark").and_then(serde::Value::as_str) != Some("fleet_scale") {
        return Err("root.benchmark: expected \"fleet_scale\"".to_string());
    }
    let points = root
        .get("points")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| "root.points: expected an array".to_string())?;
    if points.is_empty() {
        return Err("root.points: must not be empty".to_string());
    }
    let mut prev_streams = 0.0;
    for (i, point) in points.iter().enumerate() {
        let what = format!("points[{i}]");
        let point = point
            .as_object()
            .ok_or_else(|| format!("{what}: expected an object"))?;
        expect_keys(point, POINT_KEYS, &what)?;
        let streams = number_of(point, "streams", &what)?;
        if streams <= prev_streams {
            return Err(format!("{what}.streams: sweep must be ascending"));
        }
        prev_streams = streams;
        // The regression this module exists for: `worst_rate_err` must be
        // a real number at *every* point, including streams = 1.
        let err = number_of(point, "worst_rate_err", &what)?;
        if !err.is_finite() || err < 0.0 {
            return Err(format!("{what}.worst_rate_err: {err} not a finite rate"));
        }
        let rate = number_of(point, "shed_rate", &what)?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{what}.shed_rate: {rate} outside [0, 1]"));
        }
        number_of(point, "p99_decision_latency_us", &what)?;
    }
    check_overhead(root)?;
    let skewed = root
        .get("skewed")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| "root.skewed: expected an object".to_string())?;
    expect_keys(skewed, SKEWED_KEYS, "skewed")?;
    check_run(skewed, "baseline")?;
    check_run(skewed, "stealing")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchArtifact {
        let run = |stolen| SkewedRun {
            wall_secs: 1.0,
            processed: 100,
            shed: 10,
            shed_rate: 10.0 / 110.0,
            p50_decision_latency_us: 64,
            p99_decision_latency_us: 512,
            stolen,
            steal_fail: 1,
        };
        BenchArtifact {
            benchmark: "fleet_scale".into(),
            scale: "Tiny".into(),
            shards: 4,
            frames_per_stream: 240,
            points: vec![BenchPoint {
                streams: 1,
                samples: 3,
                median_secs: 0.5,
                mad_secs: 0.01,
                median_fps: 480.0,
                processed: 240,
                kept: 24,
                shed: 0,
                shed_rate: 0.0,
                p99_decision_latency_us: 128,
                worst_rate_err: 0.05,
            }],
            overhead: Overhead {
                streams: 16,
                frames_per_stream: 240,
                instrumented: OverheadRun {
                    samples: 5,
                    median_wall_secs: 0.5,
                    mad_wall_secs: 0.02,
                    median_p99_us: 512,
                    mad_p99_us: 0,
                },
                uninstrumented: OverheadRun {
                    samples: 5,
                    median_wall_secs: 0.5,
                    mad_wall_secs: 0.02,
                    median_p99_us: 512,
                    mad_p99_us: 0,
                },
                p99_within_noise: true,
            },
            skewed: SkewedComparison {
                streams: 256,
                hot_streams: 64,
                frames_per_stream: 120,
                baseline: run(0),
                stealing: run(500),
            },
        }
    }

    fn to_json(a: &BenchArtifact) -> String {
        serde_json::to_string_pretty(a).expect("serializes")
    }

    #[test]
    fn generated_artifact_validates() {
        validate(&to_json(&sample())).expect("schema-clean");
    }

    #[test]
    fn null_rate_err_is_rejected() {
        let json = to_json(&sample()).replace("0.05", "null");
        let err = validate(&json).expect_err("null must fail");
        assert!(err.contains("worst_rate_err"), "{err}");
    }

    #[test]
    fn missing_and_extra_keys_are_rejected() {
        let json = to_json(&sample()).replace("\"stolen\"", "\"purloined\"");
        assert!(validate(&json).is_err(), "renamed key must fail");
        let json = to_json(&sample()).replace("fleet_scale", "fleet_scale_v2");
        assert!(validate(&json).is_err(), "benchmark name is pinned");
    }

    #[test]
    fn null_overhead_verdict_is_rejected() {
        let json =
            to_json(&sample()).replace("\"p99_within_noise\": true", "\"p99_within_noise\": null");
        let err = validate(&json).expect_err("null verdict must fail");
        assert!(err.contains("p99_within_noise"), "{err}");
    }

    #[test]
    fn committed_artifact_is_schema_stable() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet_scale.json");
        let json = std::fs::read_to_string(path).expect("committed artifact exists");
        validate(&json).unwrap_or_else(|e| panic!("committed artifact violates schema: {e}"));
    }
}
