//! Experiment harnesses: the code behind every table and figure.
//!
//! Each public function reproduces one experiment of the paper's Section V
//! and returns structured results; the `src/bin/*` binaries print them in
//! the paper's layout. Everything here is deterministic given the dataset
//! seeds; wall-clock measurements (Table III, cost calibration) depend on
//! the machine but not on ordering.

use std::time::Instant;

use sieve_core::{
    score_selection, simulate_all, tune, BaselineOutcome, ConfigGrid, DetectionQuality,
    FrameSelector, IFrameSeeker, VideoWorkload, WorkloadCosts,
};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec, LabelSet, SyntheticVideo};
use sieve_filters::{Budget, ChangeDetector, MseDetector, MseSelector, SiftDetector, SiftSelector};
use sieve_nn::{frame_to_tensor, reference_model};
use sieve_simnet::ThreeTier;
use sieve_video::{
    BitstreamStats, Decoder, EncodedVideo, EncoderConfig, Frame, Resolution, VideoIndex,
};

/// A dataset generated at some scale, with the paper's train/eval split
/// (first half tunes parameters, second half evaluates).
#[derive(Debug)]
pub struct Prepared {
    /// Dataset description.
    pub spec: DatasetSpec,
    /// The generated synthetic feed.
    pub video: SyntheticVideo,
    /// Scale it was generated at.
    pub scale: DatasetScale,
}

impl Prepared {
    /// Generates dataset `id` at `scale`.
    pub fn new(id: DatasetId, scale: DatasetScale) -> Self {
        let spec = DatasetSpec::of(id);
        let video = spec.generate(scale);
        Self { spec, video, scale }
    }

    /// Frame index where the train half ends and the eval half begins.
    pub fn split(&self) -> usize {
        self.video.frame_count() / 2
    }

    /// Ground-truth labels of the eval half.
    pub fn eval_labels(&self) -> &[LabelSet] {
        &self.video.labels()[self.split()..]
    }

    /// Renders the eval half's frames.
    pub fn eval_frames(&self) -> impl Iterator<Item = Frame> + '_ {
        (self.split()..self.video.frame_count()).map(|i| self.video.frame(i))
    }

    /// Encodes the eval half with `config`.
    pub fn encode_eval(&self, config: EncoderConfig) -> EncodedVideo {
        EncodedVideo::encode(
            self.video.resolution(),
            self.video.fps(),
            config,
            self.eval_frames(),
        )
    }

    /// Tunes (GOP, scenecut) on the train half with `grid`.
    pub fn tune_train(&self, grid: &ConfigGrid) -> EncoderConfig {
        let half = self.split();
        let outcome = tune(
            self.video.resolution(),
            self.video.fps(),
            grid,
            &self.video.labels()[..half],
            || {
                let v = &self.video;
                (0..half).map(move |i| v.frame(i))
            },
        );
        outcome.best.config
    }
}

/// The tuning grid used by the harnesses: a refinement of the paper's grid
/// around this codec's useful scenecut band.
pub fn harness_grid() -> ConfigGrid {
    ConfigGrid {
        gop_sizes: vec![100, 300, 600],
        scenecuts: vec![40, 100, 150, 200, 250],
    }
}

// ---------------------------------------------------------------------------
// Fig 3: accuracy vs percentage of sampled frames.
// ---------------------------------------------------------------------------

/// One point of the Fig 3 sweep: at a common sampling rate, the per-frame
/// label accuracy of SiEVE, SIFT and MSE.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Fraction of frames analysed (x-axis).
    pub sampling: f64,
    /// SiEVE accuracy at this rate.
    pub sieve: f64,
    /// SIFT-matching accuracy at the same rate.
    pub sift: f64,
    /// MSE accuracy at the same rate.
    pub mse: f64,
}

/// Runs the Fig 3 sweep on the eval half of `prepared`.
///
/// For each scenecut in `scenecuts`, the eval half is semantically encoded
/// (GOP fixed at `gop`); the resulting I-frame rate defines the sampling
/// budget at which the baselines' thresholds are calibrated — the paper's
/// fair-comparison methodology. The whole sweep routes through
/// [`FrameSelector::calibrate_fractions`], so each baseline decodes and
/// scores the default-encoded stream (decode artifacts included, exactly
/// like NoScope-style filters) *once* across all operating points.
pub fn accuracy_sweep(prepared: &Prepared, gop: usize, scenecuts: &[u16]) -> Vec<SweepPoint> {
    let labels = prepared.eval_labels();
    let default_video = prepared.encode_eval(EncoderConfig::x264_default());

    // SiEVE's operating points: one semantic encode per scenecut; the
    // I-frame rates become the baselines' matched sampling targets.
    let sieve_points: Vec<_> = scenecuts
        .iter()
        .map(|&sc| {
            let encoded = prepared.encode_eval(EncoderConfig::new(gop, sc));
            let selected = IFrameSeeker::new(&encoded).i_frame_indices();
            score_selection(labels, &selected)
        })
        .collect();
    let fractions: Vec<f64> = sieve_points
        .iter()
        .map(|q| q.sampling_rate.clamp(1e-6, 1.0))
        .collect();

    // Batched calibration: one decode+scoring pass per baseline, every
    // matched target swept in memory.
    let mse_curve = MseSelector::mse(Budget::Threshold(0.0))
        .calibrate_fractions(&default_video, &fractions)
        .expect("default stream decodes");
    let sift_curve = SiftSelector::sift(Budget::Threshold(0.0))
        .calibrate_fractions(&default_video, &fractions)
        .expect("default stream decodes");

    let mut points: Vec<SweepPoint> = sieve_points
        .iter()
        .zip(mse_curve.points.iter().zip(&sift_curve.points))
        .map(|(sieve_q, (mse_pt, sift_pt))| SweepPoint {
            sampling: sieve_q.sampling_rate,
            sieve: sieve_q.accuracy,
            sift: score_selection(labels, &sift_pt.selected).accuracy,
            mse: score_selection(labels, &mse_pt.selected).accuracy,
        })
        .collect();
    points.sort_by(|a, b| a.sampling.partial_cmp(&b.sampling).expect("finite"));
    points
}

// ---------------------------------------------------------------------------
// Table II: semantic vs default encoding parameters.
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticVsDefault {
    /// Dataset name.
    pub dataset: String,
    /// The tuned configuration.
    pub tuned: EncoderConfig,
    /// Quality of the tuned parameters on the eval half.
    pub semantic: DetectionQuality,
    /// Quality of the default parameters (GOP 250, scenecut 40).
    pub default: DetectionQuality,
}

/// Computes one Table II row: tune on the train half, evaluate tuned and
/// default parameters on the eval half.
pub fn semantic_vs_default(prepared: &Prepared, grid: &ConfigGrid) -> SemanticVsDefault {
    let tuned = prepared.tune_train(grid);
    let labels = prepared.eval_labels();
    let quality_of = |cfg: EncoderConfig| {
        let encoded = prepared.encode_eval(cfg);
        let selected = IFrameSeeker::new(&encoded).i_frame_indices();
        score_selection(labels, &selected)
    };
    SemanticVsDefault {
        dataset: prepared.spec.id.to_string(),
        tuned,
        semantic: quality_of(tuned),
        default: quality_of(EncoderConfig::x264_default()),
    }
}

// ---------------------------------------------------------------------------
// Table III: speed of event detection.
// ---------------------------------------------------------------------------

/// One row of Table III: frames/second each event detector can sustain.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedRow {
    /// Dataset name.
    pub dataset: String,
    /// Stream resolution measured at.
    pub resolution: Resolution,
    /// Frames scanned per second by SiEVE (metadata seek + I-frame decode).
    pub sieve_fps: f64,
    /// Frames per second of full-decode + MSE.
    pub mse_fps: f64,
    /// Frames per second of full-decode + SIFT.
    pub sift_fps: f64,
}

/// Measures event-detection speed on the eval half of `prepared`.
///
/// `sift_probe` bounds how many frames the (slow) SIFT path is timed on;
/// its per-frame cost is extrapolated to the full stream.
pub fn speed_of_event_detection(
    prepared: &Prepared,
    tuned: EncoderConfig,
    sift_probe: usize,
) -> SpeedRow {
    let semantic = prepared.encode_eval(tuned);
    let n = semantic.frame_count();
    let bytes = semantic.to_bytes();

    // SiEVE: parse the index, decode every I-frame independently.
    let t0 = Instant::now();
    let index = VideoIndex::parse(&bytes).expect("valid container");
    let mut decoded = 0usize;
    for (_, meta) in index.i_frames() {
        let f = index.decode_iframe(&bytes, meta).expect("iframe decodes");
        std::hint::black_box(&f);
        decoded += 1;
    }
    let sieve_secs = t0.elapsed().as_secs_f64();
    assert!(decoded > 0, "semantic stream must contain I-frames");

    // Baselines: stream-decode every frame of the default encoding, then
    // compute the similarity metric per consecutive pair.
    let default_video = prepared.encode_eval(EncoderConfig::x264_default());
    let mut mse = MseDetector::new();
    let t0 = Instant::now();
    {
        let mut dec = Decoder::new(default_video.resolution(), default_video.quality());
        let mut prev: Option<Frame> = None;
        for ef in default_video.frames() {
            let f = dec.decode_frame(ef).expect("decodes");
            if let Some(p) = &prev {
                std::hint::black_box(mse.change_score(p, &f));
            }
            prev = Some(f);
        }
    }
    let mse_secs = t0.elapsed().as_secs_f64();

    let mut sift = SiftDetector::new();
    let probe = sift_probe.clamp(2, n);
    let t0 = Instant::now();
    {
        let mut dec = Decoder::new(default_video.resolution(), default_video.quality());
        let mut prev: Option<Frame> = None;
        for ef in default_video.frames().iter().take(probe) {
            let f = dec.decode_frame(ef).expect("decodes");
            if let Some(p) = &prev {
                std::hint::black_box(sift.change_score(p, &f));
            }
            prev = Some(f);
        }
    }
    let sift_secs = t0.elapsed().as_secs_f64() * (n as f64 / probe as f64);

    SpeedRow {
        dataset: prepared.spec.id.to_string(),
        resolution: semantic.resolution(),
        sieve_fps: n as f64 / sieve_secs,
        mse_fps: n as f64 / mse_secs,
        sift_fps: n as f64 / sift_secs,
    }
}

// ---------------------------------------------------------------------------
// Fig 4 / Fig 5: end-to-end throughput and data transfer.
// ---------------------------------------------------------------------------

/// Builds the per-video workloads for the end-to-end experiments.
///
/// Per-operation costs are *measured* on this machine at the dataset's
/// generated resolution, then each video is extrapolated to
/// `frames_per_video` (the paper uses 4 hours = 432 000 frames per video;
/// byte counts scale linearly with frame count at the measured per-frame
/// rates).
pub fn build_workloads(scale: DatasetScale, frames_per_video: usize) -> Vec<VideoWorkload> {
    DatasetId::ALL
        .iter()
        .map(|&id| build_workload(id, scale, frames_per_video))
        .collect()
}

/// Builds one dataset's workload (see [`build_workloads`]).
pub fn build_workload(
    id: DatasetId,
    scale: DatasetScale,
    frames_per_video: usize,
) -> VideoWorkload {
    let prepared = Prepared::new(id, scale);
    let video = &prepared.video;
    // Semantic parameters: tuned for labelled datasets; for the two
    // unlabelled feeds the paper fixes 1 I-frame per 5 seconds.
    let tuned = if prepared.spec.has_labels {
        prepared.tune_train(&ConfigGrid {
            gop_sizes: vec![300, 600],
            scenecuts: vec![100, 150, 200],
        })
    } else {
        EncoderConfig::new(5 * video.fps() as usize, 0)
    };
    let semantic = prepared.encode_eval(tuned);
    let default_video = prepared.encode_eval(EncoderConfig::x264_default());
    let n = semantic.frame_count();
    let sem_stats = BitstreamStats::from_video(&semantic);
    let def_stats = BitstreamStats::from_video(&default_video);

    // MSE selection count: the paper sets the MSE threshold to reach the
    // same quality target as the tuned semantic parameters (95% F1 on
    // training) and then deploys that threshold. We mirror the methodology
    // exactly through the unified layer: one batched calibration pass over
    // the training prefix sweeps every candidate budget
    // (`calibrate_fractions`), the smallest one reaching the target
    // accuracy fixes the *absolute* threshold, and a threshold-budget
    // selector streams the eval half once to count what it would ship.
    // Because raw pixel-difference thresholds are
    // noise-distribution-sensitive, they transfer poorly from train to
    // eval — MSE selects considerably more frames than SiEVE for the same
    // target, the asymmetry behind Fig 5. Unlabelled feeds use the paper's
    // 1-per-5-seconds rate.
    let mse_selected = if prepared.spec.has_labels {
        let half = prepared.split();
        let train_default = EncodedVideo::encode(
            video.resolution(),
            video.fps(),
            EncoderConfig::x264_default(),
            (0..half).map(|i| video.frame(i)),
        );
        let train_labels = &video.labels()[..half];
        let goal = 0.95;
        let targets = [0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.12, 0.2];
        let curve = MseSelector::mse(Budget::Threshold(0.0))
            .calibrate_fractions(&train_default, &targets)
            .expect("train stream decodes");
        let threshold = curve
            .points
            .iter()
            .find(|p| sieve_core::score_selection(train_labels, &p.selected).accuracy >= goal)
            .map(|p| p.threshold);
        match threshold {
            Some(t) => MseSelector::mse(Budget::Threshold(t))
                .select_indices(&default_video)
                .expect("eval stream decodes")
                .len(),
            None => (n / 5).max(1),
        }
    } else {
        n / (5 * video.fps() as usize)
    };

    // --- Cost calibration on real operations at this resolution. ---
    let bytes = semantic.to_bytes();
    let seek_per_frame = sieve_simnet::measure_secs(5, || {
        let idx = VideoIndex::parse(&bytes).expect("parses");
        std::hint::black_box(idx.frame_count());
    }) / n as f64;
    let first_i = semantic.i_frame_indices()[0];
    let iframe_decode = sieve_simnet::measure_secs(5, || {
        std::hint::black_box(semantic.decode_iframe_at(first_i).expect("decodes"));
    });
    // Full-decode cost: stream-decode a prefix.
    let probe = 40.min(n);
    let full_decode_per_frame = sieve_simnet::measure_secs(3, || {
        let mut dec = Decoder::new(default_video.resolution(), default_video.quality());
        for ef in default_video.frames().iter().take(probe) {
            std::hint::black_box(dec.decode_frame(ef).expect("decodes"));
        }
    }) / probe as f64;
    let fa = video.frame(0);
    let fb = video.frame(1.min(n - 1));
    let mse_per_pair = sieve_simnet::measure_secs(5, || {
        std::hint::black_box(sieve_filters::mse_luma(&fa, &fb));
    });
    let nn_res = Resolution::new(sieve_nn::CNN_INPUT_SIZE, sieve_nn::CNN_INPUT_SIZE);
    let resize_to_nn = sieve_simnet::measure_secs(5, || {
        std::hint::black_box(fa.resize(nn_res));
    });
    // What actually crosses the WAN per analysed frame: the decoded I-frame
    // resized to the NN's input resolution and re-compressed as a still
    // (the paper resizes to the 300x300 YOLO input; we use the same
    // fraction of the source resolution and measure the real encoded size).
    let ship_res = Resolution::new(
        (video.resolution().width() / 2).max(32) / 2 * 2,
        (video.resolution().height() / 2).max(32) / 2 * 2,
    );
    let shipped_still = {
        let resized = fa.resize(ship_res);
        let mut enc = sieve_video::Encoder::new(ship_res, EncoderConfig::new(1, 0));
        enc.encode_frame(&resized).data.len() as u64
    };
    let mut model = reference_model(1);
    let input = frame_to_tensor(&fa);
    let nn_inference = sieve_simnet::measure_secs(3, || {
        std::hint::black_box(model.forward(&input));
    });

    // --- Extrapolate to the requested video length. ---
    let scale_factor = frames_per_video as f64 / n as f64;
    VideoWorkload {
        name: prepared.spec.id.to_string(),
        frame_count: frames_per_video,
        semantic_i_frames: ((sem_stats.i_frames as f64) * scale_factor).round() as usize,
        mse_selected: ((mse_selected as f64) * scale_factor).round() as usize,
        semantic_stream_bytes: (sem_stats.total_bytes as f64 * scale_factor) as u64,
        default_stream_bytes: (def_stats.total_bytes as f64 * scale_factor) as u64,
        nn_input_bytes: shipped_still,
        label_bytes: 16,
        costs: WorkloadCosts {
            seek_per_frame,
            iframe_decode,
            full_decode_per_frame,
            mse_per_pair,
            resize_to_nn,
            nn_inference,
        },
    }
}

/// The paper's post-event topology: the semantically encoded videos are
/// pre-recorded on the edge server, so the camera→edge hop is an edge
/// storage read (fast), while edge→cloud remains the shaped 30 Mbps WAN.
pub fn post_event_topology() -> ThreeTier {
    let mut topo = ThreeTier::paper_default();
    topo.camera_edge = sieve_simnet::Link::new("edge-storage", 2.0e9, 0.0);
    topo
}

/// Runs Fig 4's x-axis: the five baselines over the first 1, 3 and 5
/// videos. Returns `(video_count, outcomes)` groups.
pub fn end_to_end_sweep(
    workloads: &[VideoWorkload],
    topology: &ThreeTier,
) -> Vec<(usize, Vec<BaselineOutcome>)> {
    [1usize, 3, 5]
        .iter()
        .filter(|&&k| k <= workloads.len())
        .map(|&k| (k, simulate_all(&workloads[..k], topology)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::Baseline;

    fn prepared() -> Prepared {
        Prepared::new(DatasetId::JacksonSquare, DatasetScale::Tiny)
    }

    #[test]
    fn prepared_split_halves() {
        let p = prepared();
        assert_eq!(p.split() * 2, p.video.frame_count());
        assert_eq!(p.eval_labels().len(), p.split());
    }

    #[test]
    fn accuracy_sweep_is_sorted_and_bounded() {
        let p = prepared();
        let points = accuracy_sweep(&p, 600, &[100, 200]);
        assert_eq!(points.len(), 2);
        assert!(points[0].sampling <= points[1].sampling);
        for pt in &points {
            for v in [pt.sieve, pt.mse, pt.sift, pt.sampling] {
                assert!((0.0..=1.0).contains(&v), "metric out of range: {pt:?}");
            }
        }
    }

    #[test]
    fn sieve_wins_accuracy_sweep_on_jackson() {
        let p = prepared();
        let points = accuracy_sweep(&p, 600, &[150]);
        let pt = points[0];
        assert!(
            pt.sieve >= pt.mse && pt.sieve >= pt.sift,
            "SiEVE should dominate at matched sampling: {pt:?}"
        );
    }

    #[test]
    fn semantic_beats_default_on_f1() {
        let p = prepared();
        let row = semantic_vs_default(
            &p,
            &ConfigGrid {
                gop_sizes: vec![300, 600],
                scenecuts: vec![100, 150, 200],
            },
        );
        assert!(
            row.semantic.f1 >= row.default.f1,
            "tuned parameters must not lose to defaults: {row:?}"
        );
    }

    #[test]
    fn speed_row_ordering() {
        let p = prepared();
        let row = speed_of_event_detection(&p, EncoderConfig::new(300, 150), 30);
        assert!(
            row.sieve_fps > row.mse_fps,
            "seeking must beat full decode: {row:?}"
        );
        assert!(row.mse_fps > row.sift_fps, "MSE must beat SIFT: {row:?}");
    }

    #[test]
    fn workload_builds_and_simulates() {
        let w = build_workload(DatasetId::JacksonSquare, DatasetScale::Tiny, 10_000);
        assert_eq!(w.frame_count, 10_000);
        assert!(w.semantic_i_frames > 0);
        assert!(w.mse_selected > 0);
        assert!(w.costs.full_decode_per_frame > w.costs.seek_per_frame);
        let outcomes = simulate_all(&[w], &ThreeTier::paper_default());
        assert_eq!(outcomes.len(), 5);
        let sieve = &outcomes[0];
        assert_eq!(sieve.baseline, Baseline::IFrameEdgeCloudNn);
        assert!(sieve.throughput_fps > 0.0);
    }
}
