//! The `BENCH_wan.json` schema: serialized types plus a stability
//! validator for the `fig4_fleet` hostile-WAN sweep.
//!
//! The artifact records the FEC-on/off × feedback-on/off A/B grid over an
//! ascending loss sweep. Beyond key-set stability, [`validate`] asserts
//! the properties the experiment exists to demonstrate, so a regression
//! in the transport (FEC that stops recovering, feedback that stops
//! converging) fails `cargo test` on the *committed* artifact before it
//! lands:
//!
//! * block conservation in every run (`sent == delivered + recovered +
//!   lost`), and `recovered == 0` whenever FEC is off;
//! * at the 5%-loss point, FEC-on recovers strictly more blocks than
//!   FEC-off in both feedback arms;
//! * at the 5%-loss point, feedback-on holds the achieved cloud-side
//!   sampling rate within ±20% of its (tightened) effective target while
//!   feedback-off misses by more.

use serde::Serialize;

/// Relative rate error bound the feedback loop must meet at the 5% point
/// (and the bound the feedback-off arm must *exceed* there).
pub const RATE_ERR_BOUND: f64 = 0.2;

/// Looser bound for the `--quick` CI smoke: its 120-frame sweep is
/// dominated by the AIMD ramp-down transient, so the achieved rate sits
/// near the strict bound and thread-scheduling noise can tip it over.
/// The committed artifact always validates against [`RATE_ERR_BOUND`].
pub const QUICK_RATE_ERR_BOUND: f64 = 0.3;

/// The loss point the headline inequalities are asserted at.
pub const HEADLINE_LOSS: f64 = 0.05;

/// One arm of the A/B grid at one loss point.
#[derive(Debug, Serialize)]
pub struct WanRun {
    /// Frames the fleet decided (all streams).
    pub frames_observed: u64,
    /// Frames kept — each kept frame ships as one block.
    pub frames_kept: u64,
    /// Blocks offered to the uplink.
    pub blocks_sent: u64,
    /// Blocks whose data fragments all arrived.
    pub blocks_delivered: u64,
    /// Blocks rebuilt from FEC parity.
    pub blocks_recovered: u64,
    /// Blocks beyond the parity budget.
    pub blocks_lost: u64,
    /// Fragments offered to the channel.
    pub packets_sent: u64,
    /// Fragments randomly lost in the channel.
    pub packets_lost: u64,
    /// Fragments tail-dropped by the bandwidth cap's queue.
    pub packets_congestion_dropped: u64,
    /// Fragments that arrived out of send order.
    pub packets_reordered: u64,
    /// Payload bytes that reached the cloud usable.
    pub delivered_bytes: u64,
    /// `delivered_bytes × 8 / stream-duration`.
    pub goodput_bps: f64,
    /// Usable blocks per observed frame — the sampling rate the cloud
    /// actually sees.
    pub achieved_cloud_rate: f64,
    /// The target this arm was steering toward: `target_rate ×
    /// mean_wan_factor` with feedback on, the raw target with it off.
    pub effective_target: f64,
    /// `|achieved_cloud_rate − effective_target| / effective_target`.
    pub rate_err: f64,
    /// Time-average of the WAN control factor over the run (1.0 with
    /// feedback off).
    pub mean_wan_factor: f64,
}

/// The four arms at one loss rate.
#[derive(Debug, Serialize)]
pub struct WanRuns {
    pub fec_on_feedback_on: WanRun,
    pub fec_on_feedback_off: WanRun,
    pub fec_off_feedback_on: WanRun,
    pub fec_off_feedback_off: WanRun,
}

/// One loss point of the sweep.
#[derive(Debug, Serialize)]
pub struct WanPoint {
    /// Nominal i.i.d. fragment loss rate of the channel.
    pub loss: f64,
    pub runs: WanRuns,
}

/// The whole artifact written to `BENCH_wan.json`.
#[derive(Debug, Serialize)]
pub struct WanArtifact {
    /// Always `"fig4_fleet"`.
    pub benchmark: String,
    /// Dataset scale the run used (`Tiny`/`Small`/`Full`).
    pub scale: String,
    /// Concurrent fleet streams sharing the uplink.
    pub streams: usize,
    /// Frames fed per stream.
    pub frames_per_stream: usize,
    /// Requested sampling rate of every stream's controller.
    pub target_rate: f64,
    /// On-wire packet budget, header included.
    pub mtu: usize,
    /// FEC group shape of the FEC-on arms.
    pub fec: WanFecShape,
    /// Bottleneck capacity of the channel, bits/second.
    pub bandwidth_bps: f64,
    /// The loss sweep, ascending from 0.
    pub points: Vec<WanPoint>,
}

/// The `K + R` group shape serialized into the artifact.
#[derive(Debug, Serialize)]
pub struct WanFecShape {
    pub group_data: usize,
    pub group_parity: usize,
}

const ARTIFACT_KEYS: &[&str] = &[
    "benchmark",
    "scale",
    "streams",
    "frames_per_stream",
    "target_rate",
    "mtu",
    "fec",
    "bandwidth_bps",
    "points",
];
const FEC_KEYS: &[&str] = &["group_data", "group_parity"];
const POINT_KEYS: &[&str] = &["loss", "runs"];
const RUNS_KEYS: &[&str] = &[
    "fec_on_feedback_on",
    "fec_on_feedback_off",
    "fec_off_feedback_on",
    "fec_off_feedback_off",
];
const RUN_KEYS: &[&str] = &[
    "frames_observed",
    "frames_kept",
    "blocks_sent",
    "blocks_delivered",
    "blocks_recovered",
    "blocks_lost",
    "packets_sent",
    "packets_lost",
    "packets_congestion_dropped",
    "packets_reordered",
    "delivered_bytes",
    "goodput_bps",
    "achieved_cloud_rate",
    "effective_target",
    "rate_err",
    "mean_wan_factor",
];

fn expect_keys(map: &serde::Map, keys: &[&str], what: &str) -> Result<(), String> {
    let have: Vec<&str> = map.iter().map(|(k, _)| k).collect();
    if have != keys {
        return Err(format!("{what}: keys {have:?}, expected exactly {keys:?}"));
    }
    Ok(())
}

fn number_of(map: &serde::Map, key: &str, what: &str) -> Result<f64, String> {
    match map.get(key) {
        Some(serde::Value::Number(n)) => Ok(n.as_f64()),
        Some(v) => Err(format!("{what}.{key}: expected a number, got {}", v.kind())),
        None => Err(format!("{what}.{key}: missing")),
    }
}

fn check_run(run: &serde::Map, fec_on: bool, what: &str) -> Result<(), String> {
    expect_keys(run, RUN_KEYS, what)?;
    let sent = number_of(run, "blocks_sent", what)?;
    let delivered = number_of(run, "blocks_delivered", what)?;
    let recovered = number_of(run, "blocks_recovered", what)?;
    let lost = number_of(run, "blocks_lost", what)?;
    if sent != delivered + recovered + lost {
        return Err(format!(
            "{what}: block conservation violated: {sent} sent != \
             {delivered} delivered + {recovered} recovered + {lost} lost"
        ));
    }
    let kept = number_of(run, "frames_kept", what)?;
    if sent != kept {
        return Err(format!(
            "{what}: every kept frame must ship exactly once: \
             {kept} kept but {sent} blocks sent"
        ));
    }
    if !fec_on && recovered != 0.0 {
        return Err(format!("{what}: {recovered} blocks recovered with FEC off"));
    }
    let psent = number_of(run, "packets_sent", what)?;
    let plost = number_of(run, "packets_lost", what)?;
    let pcong = number_of(run, "packets_congestion_dropped", what)?;
    if plost + pcong > psent {
        return Err(format!("{what}: more packets lost than sent"));
    }
    for key in ["achieved_cloud_rate", "effective_target", "mean_wan_factor"] {
        let v = number_of(run, key, what)?;
        if !(0.0..=1.0 + 1e-9).contains(&v) {
            return Err(format!("{what}.{key}: {v} outside [0, 1]"));
        }
    }
    let err = number_of(run, "rate_err", what)?;
    if !err.is_finite() || err < 0.0 {
        return Err(format!("{what}.rate_err: {err} not a finite rate"));
    }
    Ok(())
}

fn runs_of<'a>(point: &'a serde::Map, what: &str) -> Result<&'a serde::Map, String> {
    point
        .get("runs")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| format!("{what}.runs: expected an object"))
}

fn run_of<'a>(runs: &'a serde::Map, arm: &str, what: &str) -> Result<&'a serde::Map, String> {
    runs.get(arm)
        .and_then(serde::Value::as_object)
        .ok_or_else(|| format!("{what}.runs.{arm}: expected an object"))
}

/// Asserts schema stability *and* the headline experiment semantics; see
/// the module docs. `json` is the full text of `BENCH_wan.json`.
///
/// # Errors
///
/// A human-readable description of the first violated rule.
pub fn validate(json: &str) -> Result<(), String> {
    validate_with_rate_bound(json, RATE_ERR_BOUND)
}

/// [`validate`] with an explicit feedback-on rate-error bound — the
/// `--quick` smoke validates its transient-heavy sweep against
/// [`QUICK_RATE_ERR_BOUND`] instead of the committed-artifact bound.
pub fn validate_with_rate_bound(json: &str, rate_err_bound: f64) -> Result<(), String> {
    let root = serde_json::parse_value_str(json).map_err(|e| format!("unparseable JSON: {e}"))?;
    let root = root
        .as_object()
        .ok_or_else(|| "root: expected an object".to_string())?;
    expect_keys(root, ARTIFACT_KEYS, "root")?;
    if root.get("benchmark").and_then(serde::Value::as_str) != Some("fig4_fleet") {
        return Err("root.benchmark: expected \"fig4_fleet\"".to_string());
    }
    let fec = root
        .get("fec")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| "root.fec: expected an object".to_string())?;
    expect_keys(fec, FEC_KEYS, "root.fec")?;
    if number_of(fec, "group_parity", "root.fec")? < 1.0 {
        return Err("root.fec.group_parity: the FEC-on arms need parity".to_string());
    }

    let points = root
        .get("points")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| "root.points: expected an array".to_string())?;
    if points.is_empty() {
        return Err("root.points: must not be empty".to_string());
    }
    let mut prev_loss = -1.0;
    let mut headline: Option<&serde::Map> = None;
    for (i, point) in points.iter().enumerate() {
        let what = format!("points[{i}]");
        let point = point
            .as_object()
            .ok_or_else(|| format!("{what}: expected an object"))?;
        expect_keys(point, POINT_KEYS, &what)?;
        let loss = number_of(point, "loss", &what)?;
        if i == 0 && loss != 0.0 {
            return Err("points[0].loss: the sweep must start lossless".to_string());
        }
        if loss <= prev_loss {
            return Err(format!("{what}.loss: sweep must be ascending"));
        }
        prev_loss = loss;
        let runs = runs_of(point, &what)?;
        expect_keys(runs, RUNS_KEYS, &format!("{what}.runs"))?;
        for arm in RUNS_KEYS {
            let fec_on = arm.starts_with("fec_on");
            check_run(
                run_of(runs, arm, &what)?,
                fec_on,
                &format!("{what}.runs.{arm}"),
            )?;
        }
        if (loss - HEADLINE_LOSS).abs() < 1e-9 {
            headline = Some(runs);
        }
    }
    if prev_loss < 0.10 - 1e-9 {
        return Err(format!(
            "points: the sweep must reach 10% loss, stops at {prev_loss}"
        ));
    }

    // The headline inequalities at the 5% point.
    let runs = headline
        .ok_or_else(|| format!("points: the sweep must include the {HEADLINE_LOSS} loss point"))?;
    for (on_arm, off_arm) in [
        ("fec_on_feedback_on", "fec_off_feedback_on"),
        ("fec_on_feedback_off", "fec_off_feedback_off"),
    ] {
        let what = format!("points[loss={HEADLINE_LOSS}]");
        let on = number_of(run_of(runs, on_arm, &what)?, "blocks_recovered", on_arm)?;
        let off = number_of(run_of(runs, off_arm, &what)?, "blocks_recovered", off_arm)?;
        if on <= off {
            return Err(format!(
                "at {HEADLINE_LOSS} loss, {on_arm} must recover strictly more \
                 blocks than {off_arm}: {on} vs {off}"
            ));
        }
    }
    let what = format!("points[loss={HEADLINE_LOSS}]");
    let fb_on = number_of(
        run_of(runs, "fec_on_feedback_on", &what)?,
        "rate_err",
        "fec_on_feedback_on",
    )?;
    let fb_off = number_of(
        run_of(runs, "fec_on_feedback_off", &what)?,
        "rate_err",
        "fec_on_feedback_off",
    )?;
    if fb_on > rate_err_bound {
        return Err(format!(
            "at {HEADLINE_LOSS} loss, feedback-on must hold the achieved rate \
             within ±{rate_err_bound} of its effective target; rate_err = {fb_on}"
        ));
    }
    // The feedback-off arm must miss by more than the *strict* bound in
    // every mode — the demonstration floor does not loosen with the
    // feedback-on tolerance.
    if fb_off <= RATE_ERR_BOUND {
        return Err(format!(
            "at {HEADLINE_LOSS} loss, feedback-off should miss its target by \
             more than {RATE_ERR_BOUND} (else the loop proves nothing); \
             rate_err = {fb_off}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(recovered: u64, lost: u64, rate_err: f64, factor: f64) -> WanRun {
        let sent = 400u64;
        let delivered = sent - recovered - lost;
        WanRun {
            frames_observed: 1200,
            frames_kept: sent,
            blocks_sent: sent,
            blocks_delivered: delivered,
            blocks_recovered: recovered,
            blocks_lost: lost,
            packets_sent: 4000,
            packets_lost: 200,
            packets_congestion_dropped: 100,
            packets_reordered: 40,
            delivered_bytes: 2_000_000,
            goodput_bps: 3.2e6,
            achieved_cloud_rate: 0.3,
            effective_target: 0.3 * factor,
            rate_err,
            mean_wan_factor: factor,
        }
    }

    fn point(loss: f64) -> WanPoint {
        WanPoint {
            loss,
            runs: WanRuns {
                fec_on_feedback_on: run(30, 5, 0.1, 0.6),
                fec_on_feedback_off: run(25, 40, 0.5, 1.0),
                fec_off_feedback_on: run(0, 60, 0.15, 0.5),
                fec_off_feedback_off: run(0, 90, 0.6, 1.0),
            },
        }
    }

    fn sample() -> WanArtifact {
        WanArtifact {
            benchmark: "fig4_fleet".into(),
            scale: "Tiny".into(),
            streams: 8,
            frames_per_stream: 150,
            target_rate: 0.3,
            mtu: 1200,
            fec: WanFecShape {
                group_data: 8,
                group_parity: 2,
            },
            bandwidth_bps: 5e6,
            points: vec![point(0.0), point(0.025), point(0.05), point(0.10)],
        }
    }

    fn render(a: &WanArtifact) -> String {
        serde_json::to_string_pretty(a).expect("serializes")
    }

    #[test]
    fn valid_artifact_passes() {
        validate(&render(&sample())).expect("sample is valid");
    }

    #[test]
    fn conservation_violation_is_caught() {
        let mut a = sample();
        a.points[1].runs.fec_on_feedback_on.blocks_lost += 1;
        let err = validate(&render(&a)).expect_err("broken conservation");
        assert!(err.contains("conservation"), "{err}");
    }

    #[test]
    fn fec_off_recovery_is_rejected() {
        let mut a = sample();
        a.points[0].runs.fec_off_feedback_off.blocks_recovered = 3;
        a.points[0].runs.fec_off_feedback_off.blocks_delivered -= 3;
        let err = validate(&render(&a)).expect_err("phantom recovery");
        assert!(err.contains("FEC off"), "{err}");
    }

    #[test]
    fn headline_recovery_inequality_is_enforced() {
        let mut a = sample();
        a.points[2].runs.fec_on_feedback_on.blocks_recovered = 0;
        a.points[2].runs.fec_on_feedback_on.blocks_delivered = 395;
        let err = validate(&render(&a)).expect_err("FEC stopped recovering");
        assert!(err.contains("strictly more"), "{err}");
    }

    #[test]
    fn headline_rate_bound_is_enforced() {
        let mut a = sample();
        a.points[2].runs.fec_on_feedback_on.rate_err = 0.4;
        let err = validate(&render(&a)).expect_err("feedback stopped converging");
        assert!(err.contains("feedback-on"), "{err}");
    }

    #[test]
    fn quick_bound_is_looser_but_not_absent() {
        // A transient-heavy quick run may sit between the strict and the
        // quick bound — rejected for the committed artifact, accepted for
        // the CI smoke — but a genuinely broken loop fails both.
        let mut a = sample();
        a.points[2].runs.fec_on_feedback_on.rate_err = 0.25;
        let json = render(&a);
        validate(&json).expect_err("0.25 must fail the strict bound");
        validate_with_rate_bound(&json, QUICK_RATE_ERR_BOUND).expect("0.25 passes the quick bound");
        a.points[2].runs.fec_on_feedback_on.rate_err = 0.5;
        let err = validate_with_rate_bound(&render(&a), QUICK_RATE_ERR_BOUND)
            .expect_err("0.5 fails even the quick bound");
        assert!(err.contains("feedback-on"), "{err}");
    }

    #[test]
    fn sweep_must_start_at_zero_and_reach_ten_percent() {
        let mut a = sample();
        a.points.remove(0);
        assert!(validate(&render(&a)).is_err());
        let mut a = sample();
        a.points.pop();
        let err = validate(&render(&a)).expect_err("sweep too short");
        assert!(err.contains("10%"), "{err}");
    }

    #[test]
    fn missing_key_is_a_schema_error() {
        let json = render(&sample()).replace("\"mean_wan_factor\"", "\"renamed_factor\"");
        assert!(validate(&json).is_err());
    }

    /// The committed artifact at the repository root must always satisfy
    /// the schema *and* the headline inequalities — a transport
    /// regression that slips into a regenerated artifact fails here.
    #[test]
    fn committed_artifact_is_schema_stable() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_wan.json");
        let json = std::fs::read_to_string(path)
            .expect("BENCH_wan.json is committed at the repository root");
        validate(&json).expect("committed BENCH_wan.json satisfies its schema");
    }
}
