//! The `BENCH_codec.json` schema: serialized types plus a stability
//! validator.
//!
//! The codec artifact tracks the raw-speed trajectory of the codec hot
//! loops PR-over-PR: every point carries a scalar column (the kernel
//! dispatcher pinned to its portable tier) next to the SIMD column from
//! the same process, and the encode point additionally carries a
//! 1-thread-vs-N-thread column for the GOP-parallel pipeline. Since both
//! columns of each pair are measured back to back on the same machine,
//! the in-artifact ratios are meaningful even though absolute numbers are
//! machine-dependent. The encode point also pins a **seed baseline** — the
//! throughput of the growth-seed encoder measured once on the same scene
//! and machine — and quotes the headline `speedup_total` against it, so
//! the artifact tracks cumulative progress, not just the current build's
//! internal tier ratio. [`validate`] asserts the exact key sets and that
//! every ratio is a real positive number; the `codec_bench` binary
//! validates what it is about to write, and a unit test validates (and
//! pins the headline speedup of) the committed artifact at the repository
//! root, so a schema regression fails `cargo test` before it lands.

use serde::Serialize;

/// One micro-kernel's scalar-vs-SIMD timing pair.
#[derive(Debug, Serialize)]
pub struct KernelPoint {
    /// Kernel name (`sad16`, `dct8_forward`, ...).
    pub name: String,
    /// Timing samples per column.
    pub samples: usize,
    /// Median scalar iteration time, nanoseconds.
    pub scalar_median_ns: f64,
    /// Median absolute deviation of the scalar column, nanoseconds.
    pub scalar_mad_ns: f64,
    /// Median dispatched (SIMD) iteration time, nanoseconds.
    pub simd_median_ns: f64,
    /// Median absolute deviation of the SIMD column, nanoseconds.
    pub simd_mad_ns: f64,
    /// `scalar_median_ns / simd_median_ns`.
    pub speedup: f64,
}

/// The whole-pipeline encode point: scalar vs SIMD vs SIMD + GOP-parallel.
#[derive(Debug, Serialize)]
pub struct EncodePoint {
    /// Timing samples per column.
    pub samples: usize,
    /// Single-thread throughput of the growth-seed encoder (the commit
    /// this optimization PR started from) on the same scene, measured once
    /// on the machine that produced the first artifact and carried forward
    /// by `codec_bench` on regeneration. This is the fixed denominator of
    /// the headline speedup; pass `--seed-fps` to re-pin it after
    /// re-measuring the seed on a different machine.
    pub seed_1t_fps: f64,
    /// Scalar-tier single-thread throughput of the *current* encoder,
    /// frames/second (the dispatcher pinned to its portable tier).
    pub scalar_1t_fps: f64,
    /// SIMD single-thread throughput, frames/second.
    pub simd_1t_fps: f64,
    /// SIMD GOP-parallel throughput at `workers` threads, frames/second.
    pub simd_nt_fps: f64,
    /// Worker threads used for the N-thread column.
    pub workers: usize,
    /// `simd_1t_fps / scalar_1t_fps` — the vectorization win alone, with
    /// the structural optimizations held equal.
    pub speedup_simd: f64,
    /// `simd_nt_fps / seed_1t_fps` — the headline: SIMD, the structural
    /// hot-loop work, and GOP-parallelism over the seed encoder.
    pub speedup_total: f64,
}

/// The whole-pipeline decode point (the decoder has no parallel path; the
/// batch decoder is single-threaded by design).
#[derive(Debug, Serialize)]
pub struct DecodePoint {
    /// Timing samples per column.
    pub samples: usize,
    /// Scalar-tier throughput, frames/second.
    pub scalar_fps: f64,
    /// SIMD throughput, frames/second.
    pub simd_fps: f64,
    /// `simd_fps / scalar_fps`.
    pub speedup: f64,
}

/// The whole artifact written to `BENCH_codec.json`.
#[derive(Debug, Serialize)]
pub struct CodecArtifact {
    /// Always `"codec"`.
    pub benchmark: String,
    /// The dispatcher tier the SIMD columns ran at (`"sse2"`/`"avx2"`;
    /// `"scalar"` would mean the host has no usable SIMD and the ratios
    /// are all ~1).
    pub kernel_level: String,
    /// Test content width in luma samples.
    pub width: u32,
    /// Test content height in luma samples.
    pub height: u32,
    /// Frames in the encode/decode test sequence.
    pub frames: usize,
    /// Micro-kernel sweep.
    pub kernels: Vec<KernelPoint>,
    /// Whole-pipeline encode point.
    pub encode: EncodePoint,
    /// Whole-pipeline decode point.
    pub decode: DecodePoint,
}

const ARTIFACT_KEYS: &[&str] = &[
    "benchmark",
    "kernel_level",
    "width",
    "height",
    "frames",
    "kernels",
    "encode",
    "decode",
];
const KERNEL_KEYS: &[&str] = &[
    "name",
    "samples",
    "scalar_median_ns",
    "scalar_mad_ns",
    "simd_median_ns",
    "simd_mad_ns",
    "speedup",
];
const ENCODE_KEYS: &[&str] = &[
    "samples",
    "seed_1t_fps",
    "scalar_1t_fps",
    "simd_1t_fps",
    "simd_nt_fps",
    "workers",
    "speedup_simd",
    "speedup_total",
];
const DECODE_KEYS: &[&str] = &["samples", "scalar_fps", "simd_fps", "speedup"];

/// Kernels every artifact must sweep, in this order (the five hot loops:
/// SAD, forward/inverse DCT, quantize, SSE for MSE, and the 2x2 box
/// average behind both the lookahead and SIFT downsampling).
pub const REQUIRED_KERNELS: &[&str] = &[
    "sad16",
    "dct8_forward",
    "dct8_inverse",
    "quantize64",
    "sse_u8",
    "avg2x2_f32",
];

fn expect_keys(map: &serde::Map, keys: &[&str], what: &str) -> Result<(), String> {
    let have: Vec<&str> = map.iter().map(|(k, _)| k).collect();
    if have != keys {
        return Err(format!("{what}: keys {have:?}, expected exactly {keys:?}"));
    }
    Ok(())
}

fn number_of(map: &serde::Map, key: &str, what: &str) -> Result<f64, String> {
    match map.get(key) {
        Some(serde::Value::Number(n)) => Ok(n.as_f64()),
        Some(v) => Err(format!("{what}.{key}: expected a number, got {}", v.kind())),
        None => Err(format!("{what}.{key}: missing")),
    }
}

fn positive_of(map: &serde::Map, key: &str, what: &str) -> Result<f64, String> {
    let v = number_of(map, key, what)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{what}.{key}: {v} not a positive finite number"));
    }
    Ok(v)
}

/// Extracts the pinned seed baseline from an existing artifact, if `json`
/// parses as one — how `codec_bench` carries the denominator forward when
/// regenerating `BENCH_codec.json` on the same machine.
pub fn seed_baseline_fps(json: &str) -> Option<f64> {
    validate(json).ok()?;
    let root = serde_json::parse_value_str(json).ok()?;
    match root
        .as_object()?
        .get("encode")?
        .as_object()?
        .get("seed_1t_fps")
    {
        Some(serde::Value::Number(n)) => Some(n.as_f64()),
        _ => None,
    }
}

/// Asserts the artifact's schema stability; see the module docs. `json`
/// is the full text of `BENCH_codec.json`.
///
/// # Errors
///
/// A human-readable description of the first violated schema rule.
pub fn validate(json: &str) -> Result<(), String> {
    let root = serde_json::parse_value_str(json).map_err(|e| format!("unparseable JSON: {e}"))?;
    let root = root
        .as_object()
        .ok_or_else(|| "root: expected an object".to_string())?;
    expect_keys(root, ARTIFACT_KEYS, "root")?;
    if root.get("benchmark").and_then(serde::Value::as_str) != Some("codec") {
        return Err("root.benchmark: expected \"codec\"".to_string());
    }
    match root.get("kernel_level").and_then(serde::Value::as_str) {
        Some("scalar" | "sse2" | "avx2") => {}
        other => return Err(format!("root.kernel_level: unknown tier {other:?}")),
    }
    positive_of(root, "width", "root")?;
    positive_of(root, "height", "root")?;
    positive_of(root, "frames", "root")?;
    let kernels = root
        .get("kernels")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| "root.kernels: expected an array".to_string())?;
    let mut names = Vec::new();
    for (i, point) in kernels.iter().enumerate() {
        let what = format!("kernels[{i}]");
        let point = point
            .as_object()
            .ok_or_else(|| format!("{what}: expected an object"))?;
        expect_keys(point, KERNEL_KEYS, &what)?;
        let name = point
            .get("name")
            .and_then(serde::Value::as_str)
            .ok_or_else(|| format!("{what}.name: expected a string"))?;
        names.push(name.to_string());
        positive_of(point, "samples", &what)?;
        positive_of(point, "scalar_median_ns", &what)?;
        number_of(point, "scalar_mad_ns", &what)?;
        positive_of(point, "simd_median_ns", &what)?;
        number_of(point, "simd_mad_ns", &what)?;
        positive_of(point, "speedup", &what)?;
    }
    for required in REQUIRED_KERNELS {
        if !names.iter().any(|n| n == required) {
            return Err(format!("kernels: required kernel {required:?} missing"));
        }
    }
    let encode = root
        .get("encode")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| "root.encode: expected an object".to_string())?;
    expect_keys(encode, ENCODE_KEYS, "encode")?;
    positive_of(encode, "samples", "encode")?;
    positive_of(encode, "seed_1t_fps", "encode")?;
    positive_of(encode, "scalar_1t_fps", "encode")?;
    positive_of(encode, "simd_1t_fps", "encode")?;
    positive_of(encode, "simd_nt_fps", "encode")?;
    positive_of(encode, "workers", "encode")?;
    positive_of(encode, "speedup_simd", "encode")?;
    positive_of(encode, "speedup_total", "encode")?;
    let decode = root
        .get("decode")
        .and_then(serde::Value::as_object)
        .ok_or_else(|| "root.decode: expected an object".to_string())?;
    expect_keys(decode, DECODE_KEYS, "decode")?;
    positive_of(decode, "samples", "decode")?;
    positive_of(decode, "scalar_fps", "decode")?;
    positive_of(decode, "simd_fps", "decode")?;
    positive_of(decode, "speedup", "decode")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CodecArtifact {
        CodecArtifact {
            benchmark: "codec".into(),
            kernel_level: "avx2".into(),
            width: 128,
            height: 96,
            frames: 48,
            kernels: REQUIRED_KERNELS
                .iter()
                .map(|&name| KernelPoint {
                    name: name.into(),
                    samples: 9,
                    scalar_median_ns: 400.0,
                    scalar_mad_ns: 4.0,
                    simd_median_ns: 50.0,
                    simd_mad_ns: 1.0,
                    speedup: 8.0,
                })
                .collect(),
            encode: EncodePoint {
                samples: 5,
                seed_1t_fps: 100.0,
                scalar_1t_fps: 260.0,
                simd_1t_fps: 450.0,
                simd_nt_fps: 470.0,
                workers: 2,
                speedup_simd: 450.0 / 260.0,
                speedup_total: 4.7,
            },
            decode: DecodePoint {
                samples: 5,
                scalar_fps: 500.0,
                simd_fps: 1200.0,
                speedup: 2.4,
            },
        }
    }

    fn to_json(a: &CodecArtifact) -> String {
        serde_json::to_string_pretty(a).expect("serializes")
    }

    #[test]
    fn generated_artifact_validates() {
        validate(&to_json(&sample())).expect("sample artifact must validate");
    }

    #[test]
    fn rejects_wrong_benchmark_name() {
        let mut a = sample();
        a.benchmark = "fleet_scale".into();
        assert!(validate(&to_json(&a)).is_err());
    }

    #[test]
    fn rejects_unknown_kernel_level() {
        let mut a = sample();
        a.kernel_level = "neon".into();
        assert!(validate(&to_json(&a)).is_err());
    }

    #[test]
    fn rejects_missing_required_kernel() {
        let mut a = sample();
        a.kernels.retain(|k| k.name != "sad16");
        assert!(validate(&to_json(&a)).is_err());
    }

    #[test]
    fn rejects_non_positive_speedup() {
        let mut a = sample();
        a.encode.speedup_total = 0.0;
        assert!(validate(&to_json(&a)).is_err());
        a.encode.speedup_total = f64::NAN;
        assert!(validate(&to_json(&a)).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(validate("not json").is_err());
        assert!(validate("[]").is_err());
        assert!(validate("{}").is_err());
    }

    /// The committed artifact at the repository root must match the schema
    /// this session of the code writes, and must record the PR's headline:
    /// SIMD + GOP-parallel encode at least 4x over the seed scalar
    /// single-thread configuration (measured on the machine that produced
    /// the artifact; both columns come from the same process).
    #[test]
    fn committed_artifact_is_schema_stable() {
        let json = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_codec.json"
        ))
        .expect("BENCH_codec.json missing at the repository root");
        validate(&json).expect("committed artifact must validate");
        let root = serde_json::parse_value_str(&json).expect("parses");
        let encode = root
            .as_object()
            .and_then(|r| r.get("encode"))
            .and_then(serde::Value::as_object)
            .expect("encode object");
        let total = match encode.get("speedup_total") {
            Some(serde::Value::Number(n)) => n.as_f64(),
            _ => panic!("encode.speedup_total must be a number"),
        };
        assert!(
            total >= 4.0,
            "committed artifact must record >= 4x encode speedup, got {total}"
        );
    }
}
