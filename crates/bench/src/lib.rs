//! # sieve-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section V), all
//! built on the shared [`harness`] module:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — the dataset registry |
//! | `fig3` | Fig 3 — accuracy vs % sampled frames (SiEVE / SIFT / MSE) |
//! | `table2` | Table II — semantic vs default encoder parameters |
//! | `table3` | Table III — event-detection speed (fps) |
//! | `fig4` | Fig 4 — end-to-end throughput of five baselines |
//! | `fig5` | Fig 5 — camera→edge and edge→cloud data transfer |
//! | `ablations` | scenecut/GOP sweeps, object-size↔scenecut, NN split |
//! | `fleet_scale` | beyond the paper: aggregate edge throughput vs. concurrent stream count on a fixed `sieve-fleet` worker pool |
//! | `codec_bench` | beyond the paper: raw codec speed — SIMD kernel tier and GOP-parallel encode vs the scalar tier, tracked in `BENCH_codec.json` |
//! | `fig4_fleet` | beyond the paper: the fleet's kept frames over a bandwidth-capped lossy WAN — FEC × feedback A/B over a loss sweep, tracked in `BENCH_wan.json` |
//!
//! Run any of them with `cargo run --release -p sieve-bench --bin <name>`.
//! Pass `--scale small` (default `tiny`) for longer, higher-resolution runs.
//! Criterion micro-benchmarks live under `benches/`.

pub mod codec_artifact;
pub mod fleet_artifact;
pub mod harness;
pub mod report;
pub mod stats_artifact;
pub mod wan_artifact;

use sieve_datasets::DatasetScale;

/// Parses the common `--scale tiny|small|full` CLI argument.
pub fn scale_from_args() -> DatasetScale {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
    {
        Some("small") => DatasetScale::Small,
        Some("full") => DatasetScale::Full,
        _ => DatasetScale::Tiny,
    }
}
