//! The `stats.json` schema: a stability validator for the observability
//! plane's serialized time series.
//!
//! `sieve_stats::Collector::export` writes a [`SeriesExport`]: a cumulative
//! time series sampled from a [`Registry`], one point per tick. The
//! committed sample at the repository root is produced by the `fleet_top`
//! example (`--once --export stats.json`) and is what downstream tooling
//! diffs, so its *shape* is a contract: [`validate`] asserts the exact key
//! sets at every level (artifact, point, histogram summary), that `seq` is
//! strictly ascending and `elapsed_ms` non-decreasing, and that every
//! counter named in consecutive points is monotone — counters are
//! cumulative by construction, so a decrease means an instrument was
//! silently replaced mid-run. The `fleet_top` export and a unit test over
//! the committed sample both go through this module, so a schema
//! regression fails `cargo test` before it lands.
//!
//! [`SeriesExport`]: sieve_stats::SeriesExport
//! [`Registry`]: sieve_stats::Registry

const ARTIFACT_KEYS: &[&str] = &["artifact", "points"];
const POINT_KEYS: &[&str] = &["seq", "elapsed_ms", "counters", "gauges", "histograms"];
const SUMMARY_KEYS: &[&str] = &["count", "p50", "p90", "p99", "max"];

fn expect_keys(map: &serde::Map, keys: &[&str], what: &str) -> Result<(), String> {
    let have: Vec<&str> = map.iter().map(|(k, _)| k).collect();
    if have != keys {
        return Err(format!("{what}: keys {have:?}, expected exactly {keys:?}"));
    }
    Ok(())
}

fn u64_of(map: &serde::Map, key: &str, what: &str) -> Result<u64, String> {
    match map.get(key) {
        Some(serde::Value::Number(n)) => n
            .as_u64()
            .ok_or_else(|| format!("{what}.{key}: expected a non-negative integer")),
        Some(v) => Err(format!("{what}.{key}: expected a number, got {}", v.kind())),
        None => Err(format!("{what}.{key}: missing")),
    }
}

/// Every value of `map` must be a non-negative integer; returns the
/// `name -> value` pairs for cross-point monotonicity checks.
fn u64_map_of<'a>(
    map: &'a serde::Map,
    key: &str,
    what: &str,
) -> Result<Vec<(&'a str, u64)>, String> {
    let inner = map
        .get(key)
        .and_then(serde::Value::as_object)
        .ok_or_else(|| format!("{what}.{key}: expected an object"))?;
    inner
        .iter()
        .map(|(name, v)| match v {
            serde::Value::Number(n) => n
                .as_u64()
                .map(|v| (name, v))
                .ok_or_else(|| format!("{what}.{key}.{name}: expected a non-negative integer")),
            other => Err(format!(
                "{what}.{key}.{name}: expected a number, got {}",
                other.kind()
            )),
        })
        .collect()
}

/// Asserts the series export's schema stability; see the module docs.
/// `json` is the full text of a `stats.json` file.
///
/// # Errors
///
/// A human-readable description of the first violated schema rule.
pub fn validate(json: &str) -> Result<(), String> {
    let root = serde_json::parse_value_str(json).map_err(|e| format!("unparseable JSON: {e}"))?;
    let root = root
        .as_object()
        .ok_or_else(|| "root: expected an object".to_string())?;
    expect_keys(root, ARTIFACT_KEYS, "root")?;
    if root.get("artifact").and_then(serde::Value::as_str) != Some("sieve_stats") {
        return Err("root.artifact: expected \"sieve_stats\"".to_string());
    }
    let points = root
        .get("points")
        .and_then(serde::Value::as_array)
        .ok_or_else(|| "root.points: expected an array".to_string())?;
    if points.is_empty() {
        return Err("root.points: must not be empty".to_string());
    }
    let mut prev_seq: Option<u64> = None;
    let mut prev_elapsed: u64 = 0;
    let mut prev_counters: Vec<(String, u64)> = Vec::new();
    for (i, point) in points.iter().enumerate() {
        let what = format!("points[{i}]");
        let point = point
            .as_object()
            .ok_or_else(|| format!("{what}: expected an object"))?;
        expect_keys(point, POINT_KEYS, &what)?;
        let seq = u64_of(point, "seq", &what)?;
        if prev_seq.is_some_and(|p| seq <= p) {
            return Err(format!("{what}.seq: {seq} not strictly ascending"));
        }
        prev_seq = Some(seq);
        let elapsed = u64_of(point, "elapsed_ms", &what)?;
        if elapsed < prev_elapsed {
            return Err(format!(
                "{what}.elapsed_ms: {elapsed} decreased from {prev_elapsed}"
            ));
        }
        prev_elapsed = elapsed;
        let counters = u64_map_of(point, "counters", &what)?;
        // Counters are cumulative: any name present in two consecutive
        // points must not have gone backwards.
        for (name, value) in &counters {
            if let Some((_, prev)) = prev_counters.iter().find(|(n, _)| n == name) {
                if value < prev {
                    return Err(format!(
                        "{what}.counters.{name}: {value} decreased from {prev} (counters are cumulative)"
                    ));
                }
            }
        }
        prev_counters = counters
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect();
        u64_map_of(point, "gauges", &what)?;
        let histograms = point
            .get("histograms")
            .and_then(serde::Value::as_object)
            .ok_or_else(|| format!("{what}.histograms: expected an object"))?;
        for (name, summary) in histograms.iter() {
            let where_ = format!("{what}.histograms.{name}");
            let summary = summary
                .as_object()
                .ok_or_else(|| format!("{where_}: expected an object"))?;
            expect_keys(summary, SUMMARY_KEYS, &where_)?;
            let count = u64_of(summary, "count", &where_)?;
            let p50 = u64_of(summary, "p50", &where_)?;
            let p90 = u64_of(summary, "p90", &where_)?;
            let p99 = u64_of(summary, "p99", &where_)?;
            u64_of(summary, "max", &where_)?;
            if count == 0 {
                return Err(format!("{where_}.count: empty histograms are not exported"));
            }
            if !(p50 <= p90 && p90 <= p99) {
                return Err(format!(
                    "{where_}: quantiles not monotone (p50 {p50}, p90 {p90}, p99 {p99})"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_stats::{Collector, Registry};
    use std::sync::Arc;

    fn sample_json() -> String {
        let registry = Arc::new(Registry::new());
        let stage = registry.stage("t");
        let kept = stage.counter("kept");
        let lat = stage.histogram("lat_us");
        let collector = Collector::new(registry);
        for tick in 1..=3u64 {
            kept.add(10);
            lat.record(100 * tick);
            collector.tick_at(tick * 250);
        }
        serde_json::to_string_pretty(&collector.export()).expect("serializes")
    }

    #[test]
    fn generated_export_validates() {
        validate(&sample_json()).expect("schema-clean");
    }

    #[test]
    fn missing_and_extra_keys_are_rejected() {
        let json = sample_json().replace("\"p90\"", "\"p95\"");
        assert!(validate(&json).is_err(), "renamed summary key must fail");
        let json = sample_json().replace("sieve_stats", "sieve_stats_v2");
        assert!(validate(&json).is_err(), "artifact name is pinned");
    }

    #[test]
    fn regressing_counters_are_rejected() {
        // Third tick's cumulative count (30) rewritten below the second's.
        let json = sample_json().replace("\"t.kept\": 30", "\"t.kept\": 5");
        let err = validate(&json).expect_err("regression must fail");
        assert!(err.contains("cumulative"), "{err}");
    }

    #[test]
    fn committed_artifact_is_schema_stable() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../stats.json");
        let json = std::fs::read_to_string(path).expect("committed stats.json exists");
        validate(&json).unwrap_or_else(|e| panic!("committed stats.json violates schema: {e}"));
    }
}
