//! Criterion benchmarks of the end-to-end machinery: the tandem-queue
//! simulator's cost per frame (it must stay cheap enough to replay millions
//! of frames) and label propagation/scoring.

use criterion::{criterion_group, criterion_main, Criterion};
use sieve_core::{score_selection, simulate_baseline, Baseline, VideoWorkload, WorkloadCosts};
use sieve_datasets::LabelSet;
use sieve_simnet::ThreeTier;

fn workload(frames: usize) -> VideoWorkload {
    VideoWorkload {
        name: "bench".into(),
        frame_count: frames,
        semantic_i_frames: frames / 50,
        mse_selected: frames / 20,
        semantic_stream_bytes: frames as u64 * 1000,
        default_stream_bytes: frames as u64 * 900,
        nn_input_bytes: 1536,
        label_bytes: 16,
        costs: WorkloadCosts {
            seek_per_frame: 5e-7,
            iframe_decode: 2e-3,
            full_decode_per_frame: 8e-3,
            mse_per_pair: 4e-3,
            resize_to_nn: 5e-4,
            nn_inference: 1e-2,
        },
    }
}

fn bench_pipeline(c: &mut Criterion) {
    c.bench_function("simulate_100k_frames_sieve", |b| {
        let w = workload(100_000);
        let topo = ThreeTier::paper_default();
        b.iter(|| simulate_baseline(Baseline::IFrameEdgeCloudNn, std::slice::from_ref(&w), &topo))
    });

    c.bench_function("score_selection_10k_frames", |b| {
        let labels: Vec<LabelSet> = (0..10_000)
            .map(|i| LabelSet::from_bits((i / 500 % 3) as u8))
            .collect();
        let selected: Vec<usize> = (0..10_000).step_by(97).collect();
        b.iter(|| score_selection(&labels, &selected))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pipeline
}
criterion_main!(benches);
