//! Criterion micro-benchmarks of the codec substrate: the cost asymmetry
//! (index seek vs I-frame decode vs full decode) that Table III aggregates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_video::{Decoder, EncodedVideo, Encoder, EncoderConfig, VideoIndex};

fn setup() -> (EncodedVideo, Vec<u8>) {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let encoded = EncodedVideo::encode(
        video.resolution(),
        video.fps(),
        EncoderConfig::new(100, 150),
        video.frames().take(120),
    );
    let bytes = encoded.to_bytes();
    (encoded, bytes)
}

fn bench_codec(c: &mut Criterion) {
    let (encoded, bytes) = setup();
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let frame = video.frame(0);
    let res = video.resolution();

    c.bench_function("encode_one_frame", |b| {
        b.iter_batched(
            || Encoder::new(res, EncoderConfig::new(100, 150)),
            |mut enc| enc.encode_frame(&frame),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("index_scan_120_frames", |b| {
        b.iter(|| VideoIndex::parse(&bytes).expect("parses"))
    });

    let first_i = encoded.i_frame_indices()[0];
    c.bench_function("iframe_independent_decode", |b| {
        b.iter(|| encoded.decode_iframe_at(first_i).expect("decodes"))
    });

    c.bench_function("full_decode_120_frames", |b| {
        b.iter(|| {
            let mut dec = Decoder::new(res, encoded.quality());
            for ef in encoded.frames() {
                std::hint::black_box(dec.decode_frame(ef).expect("decodes"));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec
}
criterion_main!(benches);
