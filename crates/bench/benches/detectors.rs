//! Criterion benchmarks of the event detectors' per-frame costs: the
//! micro-level version of Table III (MSE pair vs SIFT pair vs NN
//! inference).

use criterion::{criterion_group, criterion_main, Criterion};
use sieve_datasets::{DatasetId, DatasetScale, DatasetSpec};
use sieve_filters::{ChangeDetector, MseDetector, SiftDetector};
use sieve_nn::{frame_to_tensor, reference_model};

fn bench_detectors(c: &mut Criterion) {
    let video = DatasetSpec::of(DatasetId::JacksonSquare).generate(DatasetScale::Tiny);
    let a = video.frame(0);
    let b = video.frame(1);

    c.bench_function("mse_pair", |bch| {
        let mut det = MseDetector::new();
        bch.iter(|| det.change_score(&a, &b))
    });

    c.bench_function("sift_pair", |bch| {
        let mut det = SiftDetector::new();
        bch.iter(|| {
            det.reset(); // force full recomputation, as a cold pair costs
            det.change_score(&a, &b)
        })
    });

    c.bench_function("nn_inference", |bch| {
        let mut model = reference_model(1);
        let input = frame_to_tensor(&a);
        bch.iter(|| model.forward(&input))
    });

    c.bench_function("frame_to_tensor_resize", |bch| {
        bch.iter(|| frame_to_tensor(&a))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_detectors
}
criterion_main!(benches);
