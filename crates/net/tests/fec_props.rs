//! Property tests for FEC reassembly at the packet layer.
//!
//! The erasure-coding contract, exercised end to end through
//! [`Packetizer`]/[`Depacketizer`] rather than on raw groups:
//!
//! 1. **Any ≤R losses per group recover the original bytes.** Random
//!    block sizes and group shapes, random loss patterns capped at the
//!    parity budget in every group — the reassembled payload must be
//!    bit-identical to what was packetized.
//! 2. **Beyond the budget the block is `Lost`, never corrupt.** When a
//!    group loses more data fragments than it has surviving parity, the
//!    receiver must say so — it must never hand back wrong bytes.
//!
//! An exhaustive sweep over every loss pattern of a small block backs the
//! sampled cases.

use proptest::prelude::*;
use sieve_net::{BlockOutcome, Depacketizer, FecConfig, Packet, Packetizer};

const MTU: usize = 140; // small on purpose: many fragments per block

fn pair(k: usize, r: usize) -> (Packetizer, Depacketizer) {
    let fec = FecConfig::new(k, r).expect("valid shape");
    (
        Packetizer::new(MTU, fec, 0).expect("packetizer"),
        Depacketizer::new(MTU, fec).expect("depacketizer"),
    )
}

fn payload(len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) >> 3) as u8)
        .collect()
}

/// Splits a packetized block into per-group position lists
/// `(group, wire-index)` so loss patterns can be chosen per group.
fn group_of(packet: &Packet, k: usize, r: usize) -> usize {
    let h = packet.header;
    let data_frags = h.data_frags as usize;
    let idx = h.frag_index as usize;
    if idx < data_frags {
        idx / k
    } else {
        (idx - data_frags) / r.max(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Drop a random ≤R subset in every group; the block must come back
    /// bit-exact (Delivered when nothing was dropped, Recovered otherwise).
    #[test]
    fn any_loss_within_budget_recovers_the_original_bytes(
        k in 2usize..6,
        r in 1usize..3,
        len in 1usize..4000,
        salt in 0u64..1_000_000,
        pattern in 0u64..(1u64 << 32),
    ) {
        let (mut tx, mut rx) = pair(k, r);
        let block = payload(len, salt);
        let (id, pkts) = tx.packetize(&block);

        // Pick up to `r` victims per group, driven by the pattern bits.
        let groups = pkts.iter().map(|p| group_of(p, k, r)).max().unwrap_or(0) + 1;
        let mut dropped_per_group = vec![0usize; groups];
        let mut bits = pattern;
        let mut dropped_any = false;
        let kept: Vec<Packet> = pkts
            .into_iter()
            .filter(|p| {
                let g = group_of(p, k, r);
                let drop = (bits & 1) == 1 && dropped_per_group[g] < r;
                bits >>= 1;
                if drop {
                    dropped_per_group[g] += 1;
                    dropped_any = true;
                }
                !drop
            })
            .collect();

        let mut reports = Vec::new();
        for p in kept {
            reports.extend(rx.push(p));
        }
        reports.extend(rx.finish());
        prop_assert_eq!(reports.len(), 1);
        prop_assert_eq!(reports[0].block_id, id);
        match &reports[0].outcome {
            BlockOutcome::Delivered(bytes) => {
                prop_assert!(!dropped_any, "losses must not report as Delivered");
                prop_assert_eq!(bytes, &block);
            }
            BlockOutcome::Recovered(bytes) => {
                prop_assert!(dropped_any, "lossless must not report as Recovered");
                prop_assert_eq!(bytes, &block);
            }
            BlockOutcome::Lost => prop_assert!(
                false,
                "≤{r} losses per group must recover (pattern {pattern:#x})"
            ),
        }
    }

    /// Drop R+1 data fragments from the first group while keeping all its
    /// parity: recovery is impossible and the verdict must be Lost.
    #[test]
    fn beyond_budget_is_lost_never_corrupt(
        r in 0usize..3,
        extra in 0usize..3,
        len_factor in 2usize..5,
        salt in 0u64..1_000_000,
    ) {
        let k = r + 2 + extra; // first group holds at least r+2 data frags
        let (mut tx, mut rx) = pair(k, r);
        let block = payload((MTU - sieve_net::packet::HEADER_BYTES) * k * len_factor / 2, salt);
        let (id, pkts) = tx.packetize(&block);
        let kept: Vec<Packet> = pkts
            .into_iter()
            .filter(|p| p.header.frag_index as usize > r) // drop data frags 0..=r
            .collect();
        let mut reports = Vec::new();
        for p in kept {
            reports.extend(rx.push(p));
        }
        reports.extend(rx.finish());
        prop_assert_eq!(reports.len(), 1);
        prop_assert_eq!(reports[0].block_id, id);
        prop_assert_eq!(&reports[0].outcome, &BlockOutcome::Lost);
    }
}

/// Exhaustive check on one 4+2 block: *every* loss subset of size ≤ 2
/// recovers, and every 3-data-loss subset within the group is Lost.
#[test]
fn exhaustive_single_group_patterns() {
    let k = 4;
    let r = 2;
    let fec = FecConfig::new(k, r).expect("fec");
    let block = payload(4 * (MTU - sieve_net::packet::HEADER_BYTES) - 17, 99);
    let (_, pkts) = {
        let mut tx = Packetizer::new(MTU, fec, 0).expect("packetizer");
        tx.packetize(&block)
    };
    let n = pkts.len();
    assert_eq!(n, k + r, "one full group expected");

    for mask in 0u32..(1 << n) {
        let dropped = mask.count_ones() as usize;
        if dropped > r + 1 {
            continue;
        }
        let data_dropped = (0..k).filter(|i| mask & (1 << i) != 0).count();
        let parity_left = r - (k..n).filter(|i| mask & (1 << i) != 0).count();
        let mut rx = Depacketizer::new(MTU, fec).expect("depacketizer");
        let mut reports = Vec::new();
        for (i, p) in pkts.iter().enumerate() {
            if mask & (1 << i) == 0 {
                reports.extend(rx.push(p.clone()));
            }
        }
        reports.extend(rx.finish());
        assert_eq!(reports.len(), 1, "mask {mask:#b}");
        let recoverable = data_dropped <= parity_left;
        match &reports[0].outcome {
            BlockOutcome::Delivered(b) | BlockOutcome::Recovered(b) => {
                assert!(recoverable, "mask {mask:#b} should have been Lost");
                assert_eq!(b, &block, "mask {mask:#b} corrupted the payload");
            }
            BlockOutcome::Lost => {
                assert!(!recoverable, "mask {mask:#b} should have recovered");
            }
        }
    }
}
