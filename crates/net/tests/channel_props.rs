//! Property tests for the deterministic WAN channel.
//!
//! 1. **Bit-reproducibility.** A [`WanChannel`] is a pure function of its
//!    seed and the send schedule: two runs with identical configs must
//!    produce the identical delivery trace (same packets, same order) and
//!    identical counts — across i.i.d. loss, Gilbert–Elliott bursts,
//!    jitter, reordering and congestion alike.
//! 2. **Conservation.** Every offered packet ends in exactly one bin:
//!    delivered, randomly lost, or congestion-dropped.
//! 3. **Loss calibration.** Observed i.i.d. loss lands near the nominal
//!    rate over a long run.

use proptest::prelude::*;
use sieve_net::packet::{Packet, PacketHeader};
use sieve_net::{LossModel, WanChannel, WanConfig};
use sieve_simnet::SimTime;

fn pkt(seq: u64, len: usize) -> Packet {
    Packet {
        header: PacketHeader {
            stream: 0,
            block_id: seq,
            seq,
            frag_index: 0,
            data_frags: 1,
            block_len: len as u32,
        },
        payload: vec![0u8; len],
    }
}

/// Runs `n` sends through a fresh channel built from `cfg` and returns
/// the delivered sequence trace plus the final counts.
fn trace(cfg: WanConfig, n: u64) -> (Vec<u64>, sieve_net::channel::ChannelCounts) {
    let mut ch = WanChannel::new(cfg).expect("config validated by the strategy");
    for i in 0..n {
        // Vary packet sizes so serialization times differ per packet.
        let len = 200 + ((i * 97) % 1000) as usize;
        ch.send(SimTime::from_secs_f64(i as f64 * 0.002), pkt(i, len));
    }
    let seqs = ch.drain().into_iter().map(|p| p.header.seq).collect();
    (seqs, ch.counts())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same seed, same config → identical delivery trace and counts,
    /// whatever the loss/reorder/jitter mixture.
    #[test]
    fn iid_channel_is_bit_reproducible(
        seed in 0u64..(1 << 48),
        loss in 0.0f64..0.4,
        reorder in 0.0f64..0.3,
        jitter in 0.0f64..0.02,
        bandwidth in 1e6f64..1e8,
    ) {
        let cfg = WanConfig {
            seed,
            loss: LossModel::Iid { loss },
            reorder,
            reorder_delay_secs: 0.05,
            jitter_secs: jitter,
            latency_secs: 0.02,
            bandwidth_bps: bandwidth,
            queue_bytes: 64 * 1024,
        };
        let a = trace(cfg.clone(), 400);
        let b = trace(cfg, 400);
        prop_assert_eq!(a.0, b.0, "delivery traces diverged for seed {}", seed);
        prop_assert_eq!(a.1, b.1, "counts diverged for seed {}", seed);
    }

    /// The Gilbert–Elliott burst process is seeded too: same seed, same
    /// burst pattern, same trace.
    #[test]
    fn gilbert_elliott_channel_is_bit_reproducible(
        seed in 0u64..(1 << 48),
        to_bad in 0.0f64..0.2,
        to_good in 0.05f64..0.5,
        loss_bad in 0.1f64..0.9,
    ) {
        let cfg = WanConfig {
            seed,
            loss: LossModel::GilbertElliott {
                to_bad,
                to_good,
                loss_good: 0.001,
                loss_bad,
            },
            reorder: 0.05,
            reorder_delay_secs: 0.04,
            jitter_secs: 0.01,
            latency_secs: 0.02,
            bandwidth_bps: 3e7,
            queue_bytes: 128 * 1024,
        };
        let a = trace(cfg.clone(), 400);
        let b = trace(cfg, 400);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.1, b.1);
    }

    /// sent == delivered + lost + congestion_dropped, always.
    #[test]
    fn every_packet_lands_in_exactly_one_bin(
        seed in 0u64..(1 << 48),
        loss in 0.0f64..0.5,
        bandwidth in 5e5f64..5e7,
        queue_kib in 2usize..64,
    ) {
        let cfg = WanConfig {
            seed,
            loss: LossModel::Iid { loss },
            reorder: 0.1,
            reorder_delay_secs: 0.05,
            jitter_secs: 0.01,
            latency_secs: 0.02,
            bandwidth_bps: bandwidth,
            queue_bytes: queue_kib * 1024,
        };
        let (seqs, c) = trace(cfg, 600);
        prop_assert_eq!(c.sent, 600);
        prop_assert_eq!(
            c.sent,
            c.delivered + c.lost + c.congestion_dropped,
            "conservation violated: {:?}",
            c
        );
        prop_assert_eq!(seqs.len() as u64, c.delivered);
        // No duplication either: every delivered seq is unique.
        let mut sorted = seqs;
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len() as u64, c.delivered);
    }

    /// Observed i.i.d. loss tracks the nominal rate (wide capacity, so
    /// random loss is the only sink).
    #[test]
    fn observed_loss_tracks_nominal(seed in 0u64..(1 << 48), loss in 0.05f64..0.3) {
        let mut cfg = WanConfig::clean(seed);
        cfg.loss = LossModel::Iid { loss };
        let (_, c) = trace(cfg, 4000);
        prop_assert_eq!(c.congestion_dropped, 0, "clean preset must not congest");
        let observed = c.lost as f64 / c.sent as f64;
        prop_assert!(
            (observed - loss).abs() < 0.035,
            "observed loss {observed:.3} too far from nominal {loss:.3}"
        );
    }
}
