//! The uplink as a `run_live_in` stage: the hostile WAN drops into an
//! existing live pipeline, and the `wan.*` registry series stay
//! consistent with what the pipeline reports.

use std::sync::Arc;

use sieve_core::adapt::WanSignal;
use sieve_net::{SharedUplink, Uplink, UplinkConfig, WanConfig};
use sieve_simnet::{run_live_in, LiveItem, LiveStage, StageResult, WAN_STAGE};
use sieve_stats::Registry;

fn items(n: u64, bytes: usize) -> Vec<LiveItem> {
    (0..n)
        .map(|id| LiveItem {
            id,
            payload: (0..bytes).map(|i| (i as u64 ^ id) as u8).collect(),
            tag: id,
        })
        .collect()
}

#[test]
fn wan_stage_in_a_live_pipeline_conserves_items() {
    let registry = Arc::new(Registry::new());
    let uplink = Uplink::with_registry(
        UplinkConfig::over(WanConfig::paper_wan(21, 0.05)),
        &registry,
    )
    .expect("uplink")
    .with_signal(Arc::new(WanSignal::new()));
    let shared = SharedUplink::new(uplink);

    let n = 150u64;
    let bytes = 3000usize;
    let stages = vec![
        LiveStage::compute("edge", StageResult::Emit),
        shared.live_stage(30.0),
    ];
    let report = run_live_in(&registry, stages, items(n, bytes), 8);

    // Every item either crossed the WAN or was reported lost — none vanish.
    assert_eq!(report.delivered + report.failed, n);
    assert_eq!(report.dropped, 0, "the WAN stage never drops by policy");
    assert!(
        report.delivered > n / 2,
        "5% loss with 8+2 FEC must deliver most blocks, got {}/{n}",
        report.delivered
    );
    // Reassembled payloads are the original bytes, so the byte ledger
    // matches item-count × item-size exactly.
    assert_eq!(report.delivered_bytes, report.delivered * bytes as u64);

    // The `wan.*` series agree with the pipeline's own report.
    let c = shared.counts();
    assert_eq!(c.blocks_sent, n);
    assert_eq!(
        c.blocks_sent,
        c.blocks_delivered + c.blocks_recovered + c.blocks_lost,
        "block conservation through the live stage"
    );
    assert_eq!(c.blocks_usable(), report.delivered);
    assert_eq!(c.blocks_lost, report.failed);

    let sample = registry.sample();
    let wan = |name: &str| {
        sample
            .counters
            .get(&format!("{WAN_STAGE}.{name}"))
            .copied()
            .unwrap_or_else(|| panic!("{WAN_STAGE}.{name} missing from the registry"))
    };
    assert_eq!(wan("blocks_sent"), n);
    assert_eq!(
        wan("blocks_sent"),
        wan("blocks_delivered") + wan("blocks_recovered") + wan("blocks_lost")
    );
    assert!(wan("packets_sent") > 0);
    assert_eq!(wan("delivered_bytes"), report.delivered * bytes as u64);
}

#[test]
fn recovered_blocks_appear_under_loss_but_not_on_a_clean_channel() {
    for (loss, seed) in [(0.0, 1u64), (0.06, 2u64)] {
        let registry = Arc::new(Registry::new());
        let uplink = Uplink::with_registry(
            UplinkConfig::over(WanConfig::paper_wan(seed, loss)),
            &registry,
        )
        .expect("uplink")
        .with_signal(Arc::new(WanSignal::new()));
        let shared = SharedUplink::new(uplink);
        let report = run_live_in(
            &registry,
            vec![shared.live_stage(30.0)],
            items(120, 4000),
            8,
        );
        let c = shared.counts();
        assert_eq!(report.delivered + report.failed, 120);
        if loss == 0.0 {
            assert_eq!(
                c.blocks_recovered, 0,
                "no recovery needed on a clean channel"
            );
            assert_eq!(c.blocks_lost, 0);
        } else {
            assert!(
                c.blocks_recovered > 0,
                "6% loss with 8+2 FEC must exercise recovery, got {c:?}"
            );
        }
    }
}
