//! End-to-end behaviour of the feedback-driven rate control loop:
//! WAN feedback quanta → [`WanSignal`] → [`RateController`] keep rate.
//!
//! Three regimes, in sequence on one controller:
//!
//! 1. **Lossless** — the controller converges on the requested target;
//! 2. **Sustained loss** — quanta carrying unrecoverable blocks tighten
//!    the effective target multiplicatively, and the smoothed achieved
//!    rate settles clearly below the lossless target;
//! 3. **Recovery** — clean quanta ease the factor back to 1.0, and the
//!    achieved rate returns to within ±20% of the requested target.

use std::sync::Arc;

use rand::{rngs::StdRng, Rng, SeedableRng};
use sieve_core::adapt::{RateController, WanFeedback, WanSignal, MIN_WAN_FACTOR};

const TARGET: f64 = 0.5;

/// Runs `n` uniform-score observations and returns the fraction kept.
fn window_rate(ctrl: &mut RateController, rng: &mut StdRng, n: usize) -> f64 {
    let mut kept = 0usize;
    for _ in 0..n {
        if ctrl.observe(rng.gen::<f64>()) {
            kept += 1;
        }
    }
    kept as f64 / n as f64
}

fn lossy_quantum() -> WanFeedback {
    WanFeedback {
        lost: 40,
        congestion_dropped: 12,
        marked: 25,
        reordered: 3,
        recovered: 6,
        unrecoverable: 2,
        delivered_bytes: 500_000,
    }
}

fn clean_quantum() -> WanFeedback {
    WanFeedback {
        delivered_bytes: 800_000,
        ..WanFeedback::default()
    }
}

#[test]
fn controller_tracks_wan_feedback_through_loss_and_recovery() {
    let signal = Arc::new(WanSignal::new());
    let mut ctrl = RateController::with_wan_signal(TARGET, signal.clone()).expect("valid target");
    let mut rng = StdRng::seed_from_u64(0xfeedbac);

    // Regime 1: healthy WAN. Converge, then measure.
    window_rate(&mut ctrl, &mut rng, 3000);
    let lossless = window_rate(&mut ctrl, &mut rng, 2000);
    assert!(
        (lossless - TARGET).abs() <= 0.2 * TARGET,
        "lossless rate {lossless:.3} outside ±20% of target {TARGET}"
    );
    assert!((ctrl.effective_target() - TARGET).abs() < 1e-9);

    // Regime 2: sustained loss. Quanta with unrecoverable blocks
    // multiply the factor down (one decrease per hold-off window);
    // interleave quanta with observations the way the uplink would.
    for _ in 0..100 {
        ctrl.apply_wan_feedback(&lossy_quantum());
        window_rate(&mut ctrl, &mut rng, 100);
    }
    assert!(
        (signal.factor() - MIN_WAN_FACTOR).abs() < 0.05,
        "sustained unrecoverable loss should pin the factor near its floor, got {}",
        signal.factor()
    );
    // Let the controller settle at the tightened target, then measure.
    window_rate(&mut ctrl, &mut rng, 4000);
    let throttled = window_rate(&mut ctrl, &mut rng, 2000);
    assert!(
        throttled < 0.6 * lossless,
        "under sustained loss the achieved rate must settle clearly below the \
         lossless target: throttled {throttled:.3} vs lossless {lossless:.3}"
    );

    // Regime 3: the WAN heals. Clean quanta ease the factor back up.
    for _ in 0..60 {
        ctrl.apply_wan_feedback(&clean_quantum());
        window_rate(&mut ctrl, &mut rng, 100);
    }
    assert!(
        (signal.factor() - 1.0).abs() < 1e-9,
        "clean quanta must restore the factor to 1.0, got {}",
        signal.factor()
    );
    window_rate(&mut ctrl, &mut rng, 6000);
    let recovered = window_rate(&mut ctrl, &mut rng, 2000);
    assert!(
        (recovered - TARGET).abs() <= 0.2 * TARGET,
        "after recovery the rate must return to within ±20% of target: \
         got {recovered:.3}, target {TARGET}"
    );
}

#[test]
fn two_controllers_sharing_a_signal_throttle_together() {
    let signal = Arc::new(WanSignal::new());
    let mut a = RateController::with_wan_signal(0.4, signal.clone()).expect("valid target");
    let b = RateController::with_wan_signal(0.8, signal.clone()).expect("valid target");
    for _ in 0..10 {
        a.apply_wan_feedback(&lossy_quantum());
    }
    let factor = signal.factor();
    assert!(factor < 1.0);
    // Feedback applied through either controller tightens both: the
    // signal is the shared uplink's state, not per-stream.
    assert!((a.effective_target() - 0.4 * factor).abs() < 1e-9);
    assert!((b.effective_target() - 0.8 * factor).abs() < 1e-9);
}

#[test]
fn isolated_signals_do_not_leak_across_controllers() {
    let mut a =
        RateController::with_wan_signal(0.5, Arc::new(WanSignal::new())).expect("valid target");
    let b = RateController::with_wan_signal(0.5, Arc::new(WanSignal::new())).expect("valid target");
    for _ in 0..10 {
        a.apply_wan_feedback(&lossy_quantum());
    }
    assert!(a.effective_target() < 0.5);
    assert!(
        (b.effective_target() - 0.5).abs() < 1e-9,
        "b's signal must be untouched"
    );
}
